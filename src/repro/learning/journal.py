"""Incremental outcome journal: checkpoint/resume for learning runs.

The :class:`repro.learning.cache.VerificationCache` persists verdicts
*between* runs, but it is only saved when a run completes — a learning
run killed halfway (OOM killer, preempted job, Ctrl-C) loses every
verdict it paid for.  The journal closes that gap: every resolved
candidate outcome is appended to a JSON-lines file and fsynced the
moment it settles, so a re-run of the same corpus replays settled
verdicts instead of re-verifying them.

Design points:

* **Same codec as the cache.**  Records reuse
  :func:`repro.learning.cache.encode_outcome`, and carry the candidate
  digest (the canonical key of :mod:`repro.learning.canon`), so a
  journal entry is exactly as trustworthy as a cache entry and is
  versioned by the same ``SEMANTICS_VERSION`` discipline.

* **Torn tails are expected.**  A crash can land mid-append; on load,
  unparseable trailing lines are skipped (counted in ``skipped``), not
  treated as corruption.  A header mismatch (foreign file, stale
  semantics) discards the whole journal instead.

* **Resume must be invisible in the accounting.**  Replayed outcomes
  keep their original ``calls`` counts and are counted by the pipeline
  exactly like live resolutions, so a resumed run's
  ``LearningReport.count_signature()`` equals the uninterrupted run's.

* **Cleared on success.**  Once a run completes and the verification
  cache absorbs every verdict, the journal is obsolete;
  :meth:`OutcomeJournal.clear` removes it so the next run starts clean.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.learning.cache import (
    SEMANTICS_VERSION,
    decode_outcome,
    encode_outcome,
)
from repro.learning.canon import CandidateOutcome

JOURNAL_FORMAT = "repro-dbt-outcome-journal"
JOURNAL_FILE_VERSION = 1
DEFAULT_JOURNAL_NAME = "learning-journal.jsonl"


class OutcomeJournal:
    """Append-only digest -> outcome journal (crash-safe checkpoint).

    ``recovered`` counts entries loaded from a previous interrupted
    run; ``skipped`` counts unparseable lines dropped from a torn tail.
    """

    def __init__(self, path: str | os.PathLike,
                 semantics_version: int = SEMANTICS_VERSION) -> None:
        self.path = Path(path)
        self.semantics_version = semantics_version
        self.recovered = 0
        self.skipped = 0
        self._entries: dict[str, CandidateOutcome] = {}
        self._fp = None
        if self.path.exists():
            self._load()

    @classmethod
    def at_dir(cls, journal_dir: str | os.PathLike,
               name: str = DEFAULT_JOURNAL_NAME) -> "OutcomeJournal":
        """The conventional journal file inside ``journal_dir``."""
        directory = Path(journal_dir)
        directory.mkdir(parents=True, exist_ok=True)
        return cls(directory / name)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def get(self, digest: str) -> CandidateOutcome | None:
        return self._entries.get(digest)

    def record(self, digest: str, outcome: CandidateOutcome) -> None:
        """Durably append one settled verdict (flush + fsync: the entry
        survives any crash after this returns)."""
        if digest in self._entries:
            return
        self._entries[digest] = outcome
        fp = self._open()
        fp.write(json.dumps(
            {"digest": digest, "outcome": encode_outcome(outcome)}
        ) + "\n")
        fp.flush()
        os.fsync(fp.fileno())

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def clear(self) -> None:
        """Remove the journal (run completed; the cache now owns every
        verdict)."""
        self.close()
        self._entries.clear()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    # -- persistence ---------------------------------------------------------

    def _open(self):
        if self._fp is None:
            if not self.path.exists():
                with open(self.path, "w") as fp:
                    fp.write(json.dumps(self._header()) + "\n")
                    fp.flush()
                    os.fsync(fp.fileno())
            self._fp = open(self.path, "a")
        return self._fp

    def _header(self) -> dict:
        return {
            "format": JOURNAL_FORMAT,
            "version": JOURNAL_FILE_VERSION,
            "semantics": self.semantics_version,
        }

    def _load(self) -> None:
        try:
            with open(self.path) as fp:
                lines = fp.readlines()
        except OSError:
            return
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if header != self._header():
            # Foreign or stale journal: discard rather than replay
            # verdicts produced under different semantics.
            try:
                os.unlink(self.path)
            except OSError:
                pass
            return
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                digest = entry["digest"]
                outcome = decode_outcome(entry["outcome"])
            except (json.JSONDecodeError, KeyError, TypeError):
                # Torn tail from a crash mid-append.
                self.skipped += 1
                continue
            self._entries[digest] = outcome
        self.recovered = len(self._entries)
