"""Verification of semantic equivalence via symbolic execution
(paper Section 3.3).

Two symbolic runs per candidate:

1. a *preliminary* run of the original snippets under the initial
   mapping (concrete immediates) to derive the final defined-register
   mapping and detect conflicts with the initial mapping,
2. a *template* run where every parameterized immediate is a fresh
   symbol, proving the rule for all operand values.  Registers, memory
   (at the addresses recorded when accessed), and branch conditions are
   checked; the condition-code compatibility of the rule (which guest
   flags the host instructions emulate, directly or inverted) is
   recorded for the translation-time analysis of Section 5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro import ir
from repro.faults import deadline as _deadline
from repro.ir.expr import Expr
from repro.ir.simplify import simplify
from repro.learning.extract import SnippetPair
from repro.learning.paramize import InitialMapping, ParamContext
from repro.learning.rule import Rule
from repro.learning.template import TemplateError, Templates, build_templates
from repro.solver import Verdict, check_equal
from repro.symexec import (
    SharedSymbolicMemory,
    SymbolicExecutionError,
    SymbolicState,
    run_snippet,
)

_BDD_BUDGET = 120_000


class VerifyFailure(enum.Enum):
    """Verification-step rejection causes (Table 1 columns).

    ``TIMEOUT`` and ``ENGINE_CRASH`` extend the paper's taxonomy with
    the failure-dominated outcomes its Table 1 attributes to solver
    timeouts and symbolic-execution engine crashes: a candidate whose
    verification deadline fired, and a candidate whose resolving worker
    process died (quarantined by the parallel scheduler's bisection).
    """

    REGISTERS = "Rg"
    MEMORY = "Mm"
    BRANCH = "Br"
    OTHER = "Other"
    TIMEOUT = "TO"
    ENGINE_CRASH = "EC"


@dataclass
class VerifyResult:
    rule: Rule | None = None
    failure: VerifyFailure | None = None
    detail: str = ""


def _exprs_equal(a: Expr, b: Expr) -> bool:
    # One deterministic deadline step per solver-backed query: the unit
    # the TO budget counts (see repro.faults.deadline).
    _deadline.tick()
    if a.width != b.width:
        return False  # e.g. a byte store paired against a word store
    if simplify(a) == simplify(b):
        return True
    result = check_equal(a, b, bdd_budget=_BDD_BUDGET)
    return result.verdict is Verdict.EQUAL


def verify_candidate(
    context: ParamContext, mapping: InitialMapping, origin: str = ""
) -> VerifyResult:
    """Verify one initial mapping; return a Rule or a failure."""
    pair = context.pair
    try:
        final_pairs, temps, written = _preliminary_run(
            pair, mapping, context.direction
        )
    except SymbolicExecutionError as exc:
        return VerifyResult(failure=VerifyFailure.OTHER, detail=str(exc))
    except _RegisterMismatch as exc:
        return VerifyResult(failure=VerifyFailure.REGISTERS, detail=str(exc))

    try:
        templates = build_templates(context, mapping, final_pairs, temps,
                                    written)
    except TemplateError as exc:
        return VerifyResult(failure=VerifyFailure.REGISTERS, detail=str(exc))

    return _template_run(templates, pair, origin, context.direction)


class _RegisterMismatch(Exception):
    pass


def _preliminary_run(pair: SnippetPair, mapping: InitialMapping,
                     direction):
    """Run the original snippets; derive the final register mapping."""
    memory = SharedSymbolicMemory()
    shared = {
        guest_reg: ir.sym(32, f"P_{guest_reg}")
        for guest_reg in mapping.reg_map
    }
    guest_state = SymbolicState("g", dict(shared), memory)
    host_state = SymbolicState(
        "h",
        {host: shared[guest] for guest, host in mapping.reg_map.items()},
        memory,
    )
    run_snippet(pair.guest, direction.guest_execute, guest_state)
    run_snippet(pair.host, direction.host_execute, host_state)

    guest_written = [r for r in guest_state.written_regs if r != "pc"]
    host_written = [r for r in host_state.written_regs if r != "pc"]
    final_pairs: dict[str, str] = {}
    remaining_hosts = list(host_written)
    for guest_reg in guest_written:
        guest_value = guest_state.reg_value(guest_reg)
        required = mapping.reg_map.get(guest_reg)
        partner = None
        if required is not None:
            # Live-in guest regs that are redefined must match their
            # initially-mapped host register (no conflicts allowed).
            if required in remaining_hosts and _exprs_equal(
                guest_value, host_state.reg_value(required)
            ):
                partner = required
        else:
            for host_reg in remaining_hosts:
                if mapping.reg_map.get(guest_reg) not in (None, host_reg):
                    continue
                if _exprs_equal(guest_value, host_state.reg_value(host_reg)):
                    partner = host_reg
                    break
        if partner is None:
            raise _RegisterMismatch(
                f"no host partner for defined guest register {guest_reg}"
            )
        final_pairs[guest_reg] = partner
        remaining_hosts.remove(partner)
    return final_pairs, tuple(remaining_hosts), tuple(guest_written)


def _template_run(templates: Templates, pair: SnippetPair,
                  origin: str, direction) -> VerifyResult:
    memory = SharedSymbolicMemory()
    shared = {param: ir.sym(32, f"P_{param}") for param in templates.params}
    guest_state = SymbolicState("g", dict(shared), memory)
    host_state = SymbolicState("h", dict(shared), memory)
    try:
        guest_result = run_snippet(
            templates.guest, direction.guest_execute, guest_state
        )
        host_result = run_snippet(
            templates.host, direction.host_execute, host_state
        )
    except SymbolicExecutionError as exc:
        return VerifyResult(failure=VerifyFailure.OTHER, detail=str(exc))

    # Registers: every written shared param must agree.
    for param in templates.written_params:
        try:
            host_value = host_state.reg_value(param)
        except KeyError:
            return VerifyResult(
                failure=VerifyFailure.REGISTERS,
                detail=f"host never writes {param}",
            )
        if not _exprs_equal(guest_state.reg_value(param), host_value):
            return VerifyResult(
                failure=VerifyFailure.REGISTERS,
                detail=f"values differ for {param}",
            )

    # Memory: identical locations, equivalent stored values.
    guest_stores = guest_state.final_stores()
    host_stores = host_state.final_stores()
    if set(guest_stores) != set(host_stores):
        return VerifyResult(
            failure=VerifyFailure.MEMORY,
            detail="different store locations",
        )
    for key, guest_value in guest_stores.items():
        if not _exprs_equal(guest_value, host_stores[key]):
            return VerifyResult(
                failure=VerifyFailure.MEMORY,
                detail=f"stored values differ at {key[0]}",
            )

    # Branch conditions (paper: targets assumed identical).
    guest_cond = guest_result.branch_cond
    host_cond = host_result.branch_cond
    if (guest_cond is None) != (host_cond is None):
        return VerifyResult(
            failure=VerifyFailure.BRANCH, detail="branch presence differs"
        )
    if guest_cond is not None and not _exprs_equal(guest_cond, host_cond):
        return VerifyResult(
            failure=VerifyFailure.BRANCH, detail="branch conditions differ"
        )

    cc_info = _flag_compatibility(guest_state, host_state,
                                  direction.flag_partners)
    rule = Rule(
        guest=templates.guest,
        host=templates.host,
        params=templates.params,
        written_params=templates.written_params,
        temps=templates.temps,
        guest_flags_written=tuple(
            f for f in guest_state.written_flags
            if f in direction.flag_partners
        ),
        cc_info=cc_info,
        has_branch=guest_cond is not None,
        origin=origin,
        line=pair.line,
        direction=direction.name,
    )
    return VerifyResult(rule=rule)


def _flag_compatibility(guest_state: SymbolicState,
                        host_state: SymbolicState,
                        flag_partners: dict) -> dict[str, str]:
    """Which guest flags do the host instructions emulate, and how?

    Returns {guest_flag: "direct" | "inverted"} for each guest flag
    written by the snippet whose x86 partner flag holds an equivalent
    (or complemented — ARM and x86 disagree on the carry/borrow polarity
    of subtraction) value.  Missing entries are flags the rule does NOT
    emulate; the DBT's translation-time liveness analysis (Section 5)
    must prove them dead before applying the rule.
    """
    compat: dict[str, str] = {}
    for guest_flag, host_flag in flag_partners.items():
        if guest_flag not in guest_state.written_flags:
            continue
        if host_flag not in host_state.written_flags:
            continue
        guest_value = guest_state.flag_value(guest_flag)
        host_value = host_state.flag_value(host_flag)
        if _exprs_equal(guest_value, host_value):
            compat[guest_flag] = "direct"
        elif _exprs_equal(guest_value, ir.xor(host_value, ir.bv(1, 1))):
            compat[guest_flag] = "inverted"
    return compat
