"""``repro-learn``: learn translation rules from a MiniC source file.

Usage::

    repro-learn program.c -o rules.json --opt-level 2 --style llvm
    repro-learn program.c --print        # dump rules to stdout
    repro-learn program.c --jobs 8       # parallel verification
    repro-learn program.c --no-cache     # skip the persistent cache
    repro-learn program.c --trace t.jsonl --metrics
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys

from repro.faults.deadline import DeadlineBudget
from repro.learning.cache import VerificationCache
from repro.learning.journal import OutcomeJournal
from repro.learning.parallel import learn_corpus_parallel
from repro.learning.pipeline import learn_rules
from repro.learning.serialize import dump_rules
from repro.minic import compile_source
from repro.obs.metrics import format_metrics, get_metrics, set_metrics
from repro.obs.profiler import (
    DEFAULT_HZ,
    SamplingProfiler,
    get_profiler,
    profile_report,
    set_profiler,
)
from repro.obs.trace import tracing

DEFAULT_CACHE_DIR = ".repro-cache"

#: Metric-name prefixes of the verification-economy counters every CLI
#: prints through the one shared formatter.
ECONOMY_PREFIXES = (
    "learning.verify.", "learning.cache.",
    "learning.worker.", "learning.pool.",
)


def record_cache_metrics(cache: VerificationCache | None) -> None:
    """Route the persistent-cache summary into the metrics registry
    (hit/miss counters are already recorded by the pipeline)."""
    if cache is None:
        return
    metrics = get_metrics()
    metrics.inc("learning.cache.stale", cache.stats.stale)
    metrics.inc("learning.cache.entries", len(cache))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Learn verified ARM->x86 translation rules from a "
                    "MiniC source file (dual compilation + symbolic "
                    "verification).",
    )
    parser.add_argument("source", help="MiniC source file")
    parser.add_argument("-o", "--output", help="write rules as JSON here")
    parser.add_argument("--opt-level", type=int, default=2,
                        choices=(0, 1, 2, 3))
    parser.add_argument("--style", default="llvm", choices=("llvm", "gcc"))
    parser.add_argument("--print", dest="print_rules", action="store_true",
                        help="print each learned rule")
    parser.add_argument("--reformat", action="store_true",
                        help="reformat to one statement per line before "
                             "compiling (the paper's clang-format step)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for candidate verification "
                             "(default: all CPUs; 1 = sequential)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="persistent verification-cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="learn without the persistent verification "
                             "cache")
    parser.add_argument("--deadline", type=int, default=None,
                        metavar="STEPS",
                        help="per-candidate verification budget in "
                             "deterministic solver steps; exhaustion "
                             "classifies the candidate as TO (timeout)")
    parser.add_argument("--deadline-seconds", type=float, default=None,
                        metavar="SECONDS",
                        help="per-candidate wall-clock ceiling backing up "
                             "--deadline (converts true hangs into TO)")
    parser.add_argument("--resume", action="store_true",
                        help="journal every settled verdict to the cache "
                             "directory so a killed run resumes without "
                             "re-verifying (journal cleared on success)")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a structured JSON-lines trace here "
                             "(inspect with `python -m repro.obs.report`)")
    parser.add_argument("--metrics", action="store_true",
                        help="dump every metrics counter/histogram to "
                             "stderr when done")
    parser.add_argument("--profile", metavar="PATH",
                        help="run the sampling profiler and write the "
                             "merged phase profile (parent + workers) "
                             "as JSON here; '-' prints a text report "
                             "to stderr instead")
    parser.add_argument("--profile-hz", type=int, default=DEFAULT_HZ,
                        metavar="HZ",
                        help="profiler sampling rate (default: "
                             f"{DEFAULT_HZ})")
    args = parser.parse_args(argv)

    set_metrics(None)  # a fresh registry per invocation
    profiler = None
    if args.profile:
        profiler = SamplingProfiler(hz=args.profile_hz)
        set_profiler(profiler)  # workers' profiles merge into this one
        profiler.start()
    with open(args.source) as fp:
        source = fp.read()
    if args.reformat:
        from repro.minic.format import format_source

        source = format_source(source)

    trace_scope = tracing(args.trace) if args.trace \
        else contextlib.nullcontext()
    with trace_scope:
        guest = compile_source(source, "arm", args.opt_level, args.style)
        host = compile_source(source, "x86", args.opt_level, args.style)

        cache = None if args.no_cache else \
            VerificationCache.at_dir(args.cache_dir)
        budget = None
        if args.deadline is not None or args.deadline_seconds is not None:
            budget = DeadlineBudget(max_steps=args.deadline,
                                    max_seconds=args.deadline_seconds)
        journal = OutcomeJournal.at_dir(args.cache_dir) if args.resume \
            else None
        if journal is not None and journal.recovered:
            print(
                f"resuming: {journal.recovered} journaled verdict(s) "
                f"replayed ({journal.skipped} torn line(s) skipped)",
                file=sys.stderr,
            )
        jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
        if jobs > 1:
            outcomes = learn_corpus_parallel(
                {args.source: (guest, host)}, jobs=jobs, cache=cache,
                budget=budget, journal=journal,
                profile_hz=args.profile_hz if args.profile else 0,
            )
            outcome = outcomes[args.source]
        else:
            outcome = learn_rules(guest, host, benchmark=args.source,
                                  cache=cache, budget=budget,
                                  journal=journal)
            if cache is not None:
                cache.save()
        if journal is not None:
            # The run completed; the cache owns every verdict now.
            journal.clear()

    if profiler is not None:
        profiler.stop()
        snapshot = get_profiler().snapshot()
        if args.profile == "-":
            print("\n".join(profile_report(snapshot)), file=sys.stderr)
        else:
            with open(args.profile, "w") as fp:
                json.dump(snapshot, fp, sort_keys=True)
            print(f"wrote profile to {args.profile}", file=sys.stderr)

    record_cache_metrics(cache)
    report = outcome.report
    print(
        f"{report.total_sequences} snippet pairs -> {report.rules} rules "
        f"(yield {report.yield_fraction:.0%}) in {report.learn_seconds:.2f}s",
        file=sys.stderr,
    )
    print(
        f"stages: extract {report.extract_seconds:.2f}s, "
        f"paramize {report.paramize_seconds:.2f}s, "
        f"verify {report.verify_seconds:.2f}s",
        file=sys.stderr,
    )
    print(
        f"failures: CI={report.prep_ci} PI={report.prep_pi} "
        f"MB={report.prep_mb} Num={report.param_num} "
        f"Name={report.param_name} FailG={report.param_failg} "
        f"Rg={report.verify_rg} Mm={report.verify_mm} "
        f"Br={report.verify_br} Other={report.verify_other} "
        f"TO={report.verify_to} EC={report.verify_ec}",
        file=sys.stderr,
    )
    print(
        format_metrics(get_metrics(), title="verification economy",
                       prefix=ECONOMY_PREFIXES),
        file=sys.stderr,
    )
    if args.metrics:
        print(format_metrics(get_metrics()), file=sys.stderr)
    if args.trace:
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if args.print_rules:
        for rule in outcome.rules:
            print(rule)
    if args.output:
        with open(args.output, "w") as fp:
            dump_rules(outcome.rules, fp)
        print(f"wrote {len(outcome.rules)} rules to {args.output}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
