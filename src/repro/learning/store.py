"""The rule store: indexed rule lookup over installed translation rules.

Two matcher modes share one store:

* ``"hash"`` — the paper's Section 4 scheme taken literally: a hash
  table keyed by the arithmetic mean of the rule's guest opcode ids,
  scanned longest-first with per-length backoff.  Kept for the
  ablation benchmarks that reproduce the paper's numbers.
* ``"indexed"`` (default) — a first-mnemonic index over a mnemonic
  trie built incrementally at :meth:`insert`/:meth:`install` time.
  ``match_at`` walks the guest block once, descending the trie one
  mnemonic per step, so *all* candidate rules at a position are
  enumerated in O(match length) — no per-candidate-length hash probes,
  and every candidate already agrees with the block on its whole
  mnemonic window before ``match_rule`` runs.

Both matchers are exact: they return the same longest match (and the
same full hit set via :meth:`matches_at`) for any store contents —
property-tested in ``tests/learning/test_store_index.py``.

Buckets are kept sorted by rule length descending (stable within one
length), so the legacy matcher's longest-first backoff scans only the
equal-length segment of a bucket instead of re-filtering the whole
bucket per candidate length, and match results are independent of
insertion order.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.learning.rule import Binding, Rule, dedup_rules, match_rule

#: Matcher modes (``RuleStore(matcher=...)``).
MATCHER_MODES = ("indexed", "hash")


@dataclass
class RuleMatch:
    rule: Rule
    binding: Binding
    length: int


class _TrieNode:
    """One mnemonic-trie node: rules whose guest mnemonics equal the
    path from the root, plus children keyed by the next mnemonic."""

    __slots__ = ("children", "rules")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.rules: list[Rule] = []


@dataclass
class RuleStore:
    """Installed translation rules, ready for lookup.

    A store is direction-homogeneous: the first inserted rule fixes the
    guest ISA whose opcode ids key the hash table.
    """

    matcher: str = "indexed"
    _buckets: dict[int, list[Rule]] = field(default_factory=dict)
    _index: dict[str, _TrieNode] = field(default_factory=dict)
    _max_length: int = 0
    _count: int = 0
    _direction: str | None = None

    def __post_init__(self) -> None:
        if self.matcher not in MATCHER_MODES:
            raise ValueError(
                f"unknown matcher {self.matcher!r}; "
                f"expected one of {MATCHER_MODES}"
            )

    @classmethod
    def from_rules(cls, rules: list[Rule],
                   matcher: str = "indexed") -> "RuleStore":
        store = cls(matcher=matcher)
        for rule in dedup_rules(rules):
            store.insert(rule)
        return store

    @property
    def direction(self) -> str | None:
        """Direction of the installed rules (None while empty)."""
        return self._direction

    def insert(self, rule: Rule) -> bool:
        """Install one rule; returns False for an exact duplicate.

        The duplicate guard makes repeated installs idempotent: a rule
        equal to one already in its bucket (rule equality ignores
        origin/line provenance) is silently skipped, so hot-installing
        the same bundle twice can neither bloat buckets nor skew
        static-coverage statistics.

        Both lookup structures update incrementally — the mean-hash
        bucket (sorted by length descending, insertion-stable within a
        length) and the mnemonic trie — so a mid-run ``hot_install``
        never rebuilds the index or touches unrelated entries.
        """
        if self._direction is None:
            self._direction = rule.direction
        elif rule.direction != self._direction:
            raise ValueError(
                f"rule store is {self._direction}; cannot insert a "
                f"{rule.direction} rule"
            )
        bucket = self._buckets.setdefault(rule.hash_key(), [])
        if rule in bucket:
            return False
        # Keep the bucket sorted by length descending; insert at the
        # end of the equal-length segment so relative order within one
        # length stays insertion order (deterministic tie-break shared
        # with the trie matcher).
        keys = [-r.length for r in bucket]
        bucket.insert(bisect_right(keys, -rule.length), rule)
        node = self._trie_insert(rule)
        node.rules.append(rule)
        self._max_length = max(self._max_length, rule.length)
        self._count += 1
        self._precompile(rule)
        return True

    def _trie_insert(self, rule: Rule) -> _TrieNode:
        mnemonics = [instr.mnemonic for instr in rule.guest]
        node = self._index.get(mnemonics[0])
        if node is None:
            node = self._index[mnemonics[0]] = _TrieNode()
        for mnemonic in mnemonics[1:]:
            child = node.children.get(mnemonic)
            if child is None:
                child = node.children[mnemonic] = _TrieNode()
            node = child
        return node

    def _precompile(self, rule: Rule) -> None:
        """Warm the bound-emitter cache at install time (arm-x86 only:
        that is the direction the DBT engine executes)."""
        if rule.direction != "arm-x86":
            return
        from repro.dbt.emitter import get_emitter

        get_emitter(rule)

    def install(self, rules) -> list[Rule]:
        """Idempotently insert ``rules``; returns those actually new.

        The hot-install entry point: exact duplicates (e.g. a re-synced
        bundle) are skipped via the :meth:`insert` guard.
        """
        return [rule for rule in rules if self.insert(rule)]

    def remove(self, rule: Rule) -> bool:
        """Uninstall one rule (the engine's quarantine path).

        Returns False when the rule is not installed.  ``_max_length``
        is left as a (still sound) upper bound for ``match_at``.
        """
        bucket = self._buckets.get(rule.hash_key())
        if not bucket:
            return False
        try:
            bucket.remove(rule)
        except ValueError:
            return False
        if not bucket:
            del self._buckets[rule.hash_key()]
        node = self._index.get(rule.guest[0].mnemonic)
        for instr in rule.guest[1:]:
            if node is None:
                break
            node = node.children.get(instr.mnemonic)
        if node is not None and rule in node.rules:
            node.rules.remove(rule)
        self._count -= 1
        return True

    def __len__(self) -> int:
        return self._count

    def all_rules(self) -> list[Rule]:
        return [rule for bucket in self._buckets.values() for rule in bucket]

    # -- matching --------------------------------------------------------------

    def _compare(self, rule: Rule, instrs: list[Instruction], start: int,
                 length: int) -> Binding | None:
        """One rule-sequence comparison (the cost the index bounds).

        Both matchers funnel through this hook so the ablation
        benchmarks can count comparisons per indexing scheme.
        """
        return match_rule(rule, instrs[start : start + length])

    def match_at(self, instrs: list[Instruction], start: int,
                 limit: int | None = None) -> RuleMatch | None:
        """Longest-first match at ``instrs[start:]`` (Section 4).

        ``limit`` bounds the sequence length (block length by default).
        """
        max_len = len(instrs) - start
        if limit is not None:
            max_len = min(max_len, limit)
        max_len = min(max_len, self._max_length)
        if max_len <= 0:
            return None
        if self.matcher == "indexed":
            return self._match_indexed(instrs, start, max_len)
        return self._match_hash(instrs, start, max_len)

    def matches_at(self, instrs: list[Instruction], start: int,
                   limit: int | None = None) -> list[RuleMatch]:
        """Every bindable match at ``instrs[start:]``, longest first.

        The lowest-cost cover planner enumerates all candidates at a
        position (not just the longest) and lets the dynamic program
        choose among them.  Within one length, matches come back in
        rule insertion order — the same tie-break ``match_at`` uses.
        """
        max_len = len(instrs) - start
        if limit is not None:
            max_len = min(max_len, limit)
        max_len = min(max_len, self._max_length)
        if max_len <= 0:
            return []
        matches: list[RuleMatch] = []
        if self.matcher == "indexed":
            for length, rules in self._trie_candidates(
                    instrs, start, max_len):
                for rule in rules:
                    binding = self._compare(rule, instrs, start, length)
                    if binding is not None:
                        matches.append(RuleMatch(rule, binding, length))
        else:
            prefix = self._prefix_sums(instrs, start, max_len)
            for length in range(max_len, 0, -1):
                for rule in self._bucket_segment(
                        prefix[length] // length, length):
                    binding = self._compare(rule, instrs, start, length)
                    if binding is not None:
                        matches.append(RuleMatch(rule, binding, length))
        return matches

    # -- indexed matcher -------------------------------------------------------

    def _trie_candidates(self, instrs: list[Instruction], start: int,
                         max_len: int) -> list[tuple[int, list[Rule]]]:
        """Candidate rules per length at ``start``, longest first.

        One walk down the trie: depth ``d`` holds exactly the rules
        whose whole guest mnemonic window equals the block's next ``d``
        mnemonics, so every candidate is already mnemonic-exact.
        """
        node = self._index.get(instrs[start].mnemonic)
        by_length: list[tuple[int, list[Rule]]] = []
        depth = 1
        while node is not None:
            if node.rules:
                by_length.append((depth, node.rules))
            if depth >= max_len:
                break
            node = node.children.get(instrs[start + depth].mnemonic)
            depth += 1
        by_length.reverse()
        return by_length

    def _match_indexed(self, instrs: list[Instruction], start: int,
                       max_len: int) -> RuleMatch | None:
        for length, rules in self._trie_candidates(instrs, start, max_len):
            for rule in rules:
                binding = self._compare(rule, instrs, start, length)
                if binding is not None:
                    return RuleMatch(rule, binding, length)
        return None

    # -- legacy mean-hash matcher ----------------------------------------------

    def _prefix_sums(self, instrs: list[Instruction], start: int,
                     max_len: int) -> list[int]:
        from repro.learning.direction import DIRECTIONS

        opcode_id = DIRECTIONS[self._direction or "arm-x86"].guest_opcode_id
        prefix = [0]
        for instr in instrs[start : start + max_len]:
            prefix.append(prefix[-1] + opcode_id(instr))
        return prefix

    def _bucket_segment(self, key: int, length: int) -> list[Rule]:
        """The equal-``length`` segment of bucket ``key`` (buckets are
        sorted by length descending, so this is one bisect, not a full
        re-scan per candidate length)."""
        bucket = self._buckets.get(key)
        if not bucket:
            return []
        keys = [-rule.length for rule in bucket]
        lo = bisect_left(keys, -length)
        hi = bisect_right(keys, -length)
        return bucket[lo:hi]

    def _match_hash(self, instrs: list[Instruction], start: int,
                    max_len: int) -> RuleMatch | None:
        # Precompute prefix opcode-id sums once per call.
        prefix = self._prefix_sums(instrs, start, max_len)
        for length in range(max_len, 0, -1):
            key = prefix[length] // length
            for rule in self._bucket_segment(key, length):
                binding = self._compare(rule, instrs, start, length)
                if binding is not None:
                    return RuleMatch(rule, binding, length)
        return None
