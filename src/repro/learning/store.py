"""The rule store: hash table keyed by the mean of guest opcodes.

Implements the paper's Section 4 scheme verbatim: rules are installed
in a hash table whose key is the arithmetic mean of the rule's guest
opcode ids; at translation time the longest contiguous guest sequence
starting at each position is matched first, backing off to shorter
ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.learning.rule import Binding, Rule, dedup_rules, match_rule


@dataclass
class RuleMatch:
    rule: Rule
    binding: Binding
    length: int


@dataclass
class RuleStore:
    """Installed translation rules, ready for lookup.

    A store is direction-homogeneous: the first inserted rule fixes the
    guest ISA whose opcode ids key the hash table.
    """

    _buckets: dict[int, list[Rule]] = field(default_factory=dict)
    _max_length: int = 0
    _count: int = 0
    _direction: str | None = None

    @classmethod
    def from_rules(cls, rules: list[Rule]) -> "RuleStore":
        store = cls()
        for rule in dedup_rules(rules):
            store.insert(rule)
        return store

    @property
    def direction(self) -> str | None:
        """Direction of the installed rules (None while empty)."""
        return self._direction

    def insert(self, rule: Rule) -> bool:
        """Install one rule; returns False for an exact duplicate.

        The duplicate guard makes repeated installs idempotent: a rule
        equal to one already in its bucket (rule equality ignores
        origin/line provenance) is silently skipped, so hot-installing
        the same bundle twice can neither bloat buckets nor skew
        static-coverage statistics.
        """
        if self._direction is None:
            self._direction = rule.direction
        elif rule.direction != self._direction:
            raise ValueError(
                f"rule store is {self._direction}; cannot insert a "
                f"{rule.direction} rule"
            )
        bucket = self._buckets.setdefault(rule.hash_key(), [])
        if rule in bucket:
            return False
        bucket.append(rule)
        self._max_length = max(self._max_length, rule.length)
        self._count += 1
        return True

    def install(self, rules) -> list[Rule]:
        """Idempotently insert ``rules``; returns those actually new.

        The hot-install entry point: exact duplicates (e.g. a re-synced
        bundle) are skipped via the :meth:`insert` guard.
        """
        return [rule for rule in rules if self.insert(rule)]

    def remove(self, rule: Rule) -> bool:
        """Uninstall one rule (the engine's quarantine path).

        Returns False when the rule is not installed.  ``_max_length``
        is left as a (still sound) upper bound for ``match_at``.
        """
        bucket = self._buckets.get(rule.hash_key())
        if not bucket:
            return False
        try:
            bucket.remove(rule)
        except ValueError:
            return False
        if not bucket:
            del self._buckets[rule.hash_key()]
        self._count -= 1
        return True

    def __len__(self) -> int:
        return self._count

    def all_rules(self) -> list[Rule]:
        return [rule for bucket in self._buckets.values() for rule in bucket]

    def match_at(self, instrs: list[Instruction], start: int,
                 limit: int | None = None) -> RuleMatch | None:
        """Longest-first match at ``instrs[start:]`` (Section 4).

        ``limit`` bounds the sequence length (block length by default).
        """
        max_len = len(instrs) - start
        if limit is not None:
            max_len = min(max_len, limit)
        max_len = min(max_len, self._max_length)
        if max_len <= 0:
            return None
        from repro.learning.direction import DIRECTIONS

        opcode_id = DIRECTIONS[self._direction or "arm-x86"].guest_opcode_id
        # Precompute prefix opcode-id sums once per call.
        ids = [opcode_id(instr) for instr in
               instrs[start : start + max_len]]
        prefix = [0]
        for opcode in ids:
            prefix.append(prefix[-1] + opcode)
        for length in range(max_len, 0, -1):
            key = prefix[length] // length
            for rule in self._buckets.get(key, ()):
                if rule.length != length:
                    continue
                binding = match_rule(rule, instrs[start : start + length])
                if binding is not None:
                    return RuleMatch(rule, binding, length)
        return None
