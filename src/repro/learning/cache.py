"""Persistent verification cache: canonical candidate -> verdict.

Verification verdicts are pure functions of a candidate's canonical key
(see :mod:`repro.learning.canon`), so they can be reused across runs:
the leave-one-out protocol, the Figure 6 ``-O`` sweep and the
corpus-scaling experiments all re-learn from the same builds, and each
repeated run would otherwise re-pay the full symbolic-execution +
SAT/BDD cost.

The cache is a single JSON document keyed by candidate digest.  Every
entry is implicitly versioned by :data:`SEMANTICS_VERSION`: bump it
whenever anything that can change a verdict changes (instruction
semantics, template construction, the solver, the canonical-key
format), and every stored entry is discarded as *stale* on the next
load instead of risking a wrong cached verdict.

Counters: ``stats.hits`` / ``stats.misses`` count :meth:`get` lookups;
``stats.stale`` counts entries dropped by a version mismatch or an
explicit :meth:`invalidate`; ``stats.corrupt`` counts unparseable cache
files quarantined aside (to ``<path>.corrupt``) on load so the evidence
survives for debugging while learning restarts from an empty cache.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.faults.plan import get_fault_plan
from repro.learning.canon import CandidateOutcome
from repro.learning.serialize import rule_from_json, rule_to_json
from repro.learning.verify import VerifyFailure
from repro.obs.metrics import get_metrics

#: Bump to invalidate every previously stored verdict.
SEMANTICS_VERSION = 1

CACHE_FORMAT = "repro-dbt-verify-cache"
CACHE_FILE_VERSION = 1
DEFAULT_CACHE_NAME = "verification-cache.json"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stale: int = 0
    #: Corrupt cache files quarantined to ``<path>.corrupt`` on load.
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


def encode_outcome(outcome: CandidateOutcome) -> dict:
    """JSON encoding of one verdict (shared with the resume journal)."""
    if outcome.rule is not None:
        return {
            "verdict": "rule",
            "rule": rule_to_json(outcome.rule),
            "calls": outcome.calls,
        }
    return {
        "verdict": "fail",
        "failure": outcome.failure.name if outcome.failure else None,
        "calls": outcome.calls,
    }


def decode_outcome(data: dict) -> CandidateOutcome:
    """Inverse of :func:`encode_outcome`."""
    if data["verdict"] == "rule":
        return CandidateOutcome(rule=rule_from_json(data["rule"]),
                                calls=data["calls"])
    failure = VerifyFailure[data["failure"]] if data["failure"] else None
    return CandidateOutcome(failure=failure, calls=data["calls"])


class VerificationCache:
    """On-disk (or in-memory, when ``path`` is None) verdict cache."""

    def __init__(self, path: str | os.PathLike | None = None,
                 semantics_version: int = SEMANTICS_VERSION) -> None:
        self.path = Path(path) if path is not None else None
        self.semantics_version = semantics_version
        self.stats = CacheStats()
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self._saves = 0
        if self.path is not None and self.path.exists():
            self._load()

    @classmethod
    def at_dir(cls, cache_dir: str | os.PathLike,
               name: str = DEFAULT_CACHE_NAME) -> "VerificationCache":
        """The conventional cache file inside ``cache_dir``."""
        directory = Path(cache_dir)
        directory.mkdir(parents=True, exist_ok=True)
        return cls(directory / name)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def digests(self) -> list[str]:
        """Every settled candidate digest (chaos tooling: pick targets
        for deterministic fault injection)."""
        return list(self._entries)

    def peek(self, digest: str) -> CandidateOutcome | None:
        """Lookup without touching the hit/miss counters (used by the
        parallel scheduler, which replays accounting deterministically
        later)."""
        entry = self._entries.get(digest)
        if entry is None:
            return None
        return decode_outcome(entry)

    def get(self, digest: str) -> CandidateOutcome | None:
        entry = self._entries.get(digest)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return decode_outcome(entry)

    def put(self, digest: str, outcome: CandidateOutcome) -> None:
        self._entries[digest] = encode_outcome(outcome)
        self._dirty = True

    def invalidate(self, new_semantics_version: int | None = None) -> None:
        """Explicit invalidation: bump the semantics version and drop
        every entry (counted as stale)."""
        self.stats.stale += len(self._entries)
        self._entries.clear()
        self.semantics_version = (
            new_semantics_version
            if new_semantics_version is not None
            else self.semantics_version + 1
        )
        self._dirty = True

    # -- persistence ---------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path) as fp:
                document = json.load(fp)
        except OSError:
            self._dirty = True
            return
        except json.JSONDecodeError:
            # A corrupt cache must never break learning: quarantine the
            # file (preserving the evidence) and start empty.
            self._quarantine_corrupt()
            return
        if (
            not isinstance(document, dict)
            or document.get("format") != CACHE_FORMAT
            or document.get("version") != CACHE_FILE_VERSION
        ):
            self._quarantine_corrupt()
            return
        entries = document.get("entries", {})
        if document.get("semantics") != self.semantics_version:
            self.stats.stale += len(entries)
            self._dirty = True
            return
        self._entries = entries

    def _quarantine_corrupt(self) -> None:
        """Move an unreadable cache file aside and start empty."""
        quarantine = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, quarantine)
        except OSError:
            pass
        self.stats.corrupt += 1
        get_metrics().inc("learning.cache.corrupt")
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (no-op when clean or in-memory).

        Write-to-temp + fsync + rename: a crash mid-save leaves either
        the old cache or the new one, never a torn file.
        """
        if self.path is None or not self._dirty:
            return
        self._saves += 1
        plan = get_fault_plan()
        corrupt_this_save = (
            plan.active and plan.corrupt_cache_on_save == self._saves
        )
        payload = {
            "format": CACHE_FORMAT,
            "version": CACHE_FILE_VERSION,
            "semantics": self.semantics_version,
            "entries": self._entries,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w") as fp:
            if corrupt_this_save:
                # Injected torn write: half a document, as if the
                # process died mid-json.dump before the atomic rename
                # discipline existed.
                document = json.dumps(payload)
                fp.write(document[: len(document) // 2])
            else:
                json.dump(payload, fp)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, self.path)
        self._dirty = False
