"""Operand parameterization: initial-mapping generation (Section 3.2).

Produces up to ``MAX_TRIES`` candidate :class:`InitialMapping` objects
for a snippet pair, in decreasing order of heuristic confidence:

1. memory operands paired by IR variable name ("Num"/"Name" failures),
2. live-in registers mapped by matching normalized memory-address
   forms (base/index terms with equal coefficients),
3. remaining live-in registers mapped by the operations performed on
   them,
4. still-unmapped live-in registers by bounded permutation search
   ("FailG" if the counts differ),
5. host immediates related to guest immediate slots by value (identity,
   additive inverse, bitwise not, or/add/sub/shl of two guest slots) and
   host address displacements related to the matched guest address
   aggregate.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.isa.operands import Imm, Mem, Reg, ShiftedReg
from repro.learning.direction import ARM_TO_X86, Direction
from repro.learning.addrnorm import (
    AccessInfo,
    LinForm,
    SlotNamer,
    analyze_snippet,
)
from repro.learning.extract import SnippetPair

MAX_TRIES = 5


class ParamFailure(enum.Enum):
    """Parameterization-step rejection causes (Table 1 columns)."""

    MEM_COUNT = "Num"
    MEM_NAME = "Name"
    LIVE_IN = "FailG"


@dataclass
class InitialMapping:
    """One candidate operand mapping for verification.

    Attributes:
        reg_map: guest live-in register -> host live-in register.
        imm_asts: host slot name -> immediate AST over guest slots (see
            :class:`repro.isa.operands.SymImm`); host slots absent here
            stay concrete in the rule template.
        guest_param_slots: guest slots that are referenced by some host
            AST (only these become wildcards in the template).
        mem_pairs: (guest access, host access) pairs by IR variable.
    """

    reg_map: dict[str, str]
    imm_asts: dict[str, tuple]
    guest_param_slots: set[str] = field(default_factory=set)
    mem_pairs: list[tuple[AccessInfo, AccessInfo]] = field(default_factory=list)


@dataclass
class ParamContext:
    """Everything later stages need about the analyzed pair."""

    pair: SnippetPair
    guest_namer: SlotNamer
    host_namer: SlotNamer
    guest_accesses: list[AccessInfo]
    host_accesses: list[AccessInfo]
    guest_live_in: tuple[str, ...]
    host_live_in: tuple[str, ...]
    direction: Direction = ARM_TO_X86


def live_in_registers(instrs, isa) -> tuple[str, ...]:
    """Registers used before being defined, in first-use order."""
    defined: set[str] = set()
    live_in: list[str] = []
    for instr in instrs:
        for reg in isa.used_registers(instr):
            if reg not in defined and reg not in live_in:
                live_in.append(reg)
        defined.update(isa.defined_registers(instr))
    return tuple(live_in)


def analyze_pair(pair: SnippetPair,
                 direction: Direction = ARM_TO_X86) -> ParamContext:
    guest_namer = SlotNamer("ig")
    host_namer = SlotNamer("ih")
    guest_accesses, _ = analyze_snippet(
        pair.guest, direction.guest_isa, guest_namer
    )
    host_accesses, _ = analyze_snippet(
        pair.host, direction.host_isa, host_namer
    )
    _register_plain_imm_slots(pair.guest, guest_namer)
    _register_plain_imm_slots(pair.host, host_namer)
    return ParamContext(
        pair,
        guest_namer,
        host_namer,
        guest_accesses,
        host_accesses,
        live_in_registers(pair.guest, direction.guest_isa),
        live_in_registers(pair.host, direction.host_isa),
        direction,
    )


def _register_plain_imm_slots(instrs, namer: SlotNamer) -> None:
    """Give every immediate operand a slot (addresses already did theirs)."""
    for index, instr in enumerate(instrs):
        for op_index, op in enumerate(instr.operands):
            if isinstance(op, Imm):
                namer.slot_for(index, op_index, op.value)


def generate_mappings(context: ParamContext
                      ) -> tuple[list[InitialMapping], ParamFailure | None]:
    """Produce candidate initial mappings, or a failure classification."""
    mem_pairs, failure = _pair_memory_operands(context)
    if failure is not None:
        return [], failure

    # Stage 2: live-in registers from normalized addresses.
    base_maps = _match_addresses(context, mem_pairs)
    if base_maps is None:
        return [], ParamFailure.LIVE_IN

    candidates: list[InitialMapping] = []
    for reg_map in base_maps:
        completed = _complete_with_operations(context, reg_map)
        if completed is None:
            continue
        for full_map in completed:
            if len(candidates) >= MAX_TRIES:
                break
            imm_asts, guest_slots = _relate_immediates(
                context, mem_pairs, full_map
            )
            candidates.append(
                InitialMapping(full_map, imm_asts, guest_slots, mem_pairs)
            )
        if len(candidates) >= MAX_TRIES:
            break
    if not candidates:
        return [], ParamFailure.LIVE_IN
    return candidates, None


# -- stage 1: memory operands ----------------------------------------------


def _pair_memory_operands(context: ParamContext):
    guest, host = context.guest_accesses, context.host_accesses
    if len(guest) != len(host):
        return None, ParamFailure.MEM_COUNT
    guest_names = sorted(access.var or "?" for access in guest)
    host_names = sorted(access.var or "?" for access in host)
    if guest_names != host_names:
        return None, ParamFailure.MEM_NAME
    by_name: dict[str, list[AccessInfo]] = {}
    for access in host:
        by_name.setdefault(access.var or "?", []).append(access)
    pairs: list[tuple[AccessInfo, AccessInfo]] = []
    for access in guest:
        partner = by_name[access.var or "?"].pop(0)
        if access.size != partner.size or access.is_store != partner.is_store:
            return None, ParamFailure.MEM_NAME
        pairs.append((access, partner))
    return pairs, None


# -- stage 2: live-in registers from addresses --------------------------------


def _match_addresses(
    context: ParamContext, mem_pairs
) -> list[dict[str, str]] | None:
    """Register constraints from matching normalized address forms.

    Returns a list of candidate (partial) register maps, or None when
    the forms are structurally incompatible.
    """
    guest_live = set(context.guest_live_in)
    host_live = set(context.host_live_in)
    alternatives: list[dict[str, str]] = [{}]
    for guest_access, host_access in mem_pairs:
        gform, hform = guest_access.form, host_access.form
        if gform.is_opaque or hform.is_opaque:
            continue  # leave these registers to later stages
        gterms = {r: c for r, c in gform.regs.items() if r in guest_live}
        hterms = {r: c for r, c in hform.regs.items() if r in host_live}
        if sorted(gterms.values()) != sorted(hterms.values()):
            return None
        locals_maps = _coeff_matchings(gterms, hterms)
        merged: list[dict[str, str]] = []
        for base in alternatives:
            for extra in locals_maps:
                combined = _merge_maps(base, extra)
                if combined is not None:
                    merged.append(combined)
        if not merged:
            return None
        alternatives = merged[:MAX_TRIES]
    return alternatives


def _coeff_matchings(gterms: dict[str, int], hterms: dict[str, int]
                     ) -> list[dict[str, str]]:
    """All ways to match guest terms to host terms of equal coefficient."""
    by_coeff: dict[int, tuple[list[str], list[str]]] = {}
    for reg, coeff in gterms.items():
        by_coeff.setdefault(coeff, ([], []))[0].append(reg)
    for reg, coeff in hterms.items():
        by_coeff.setdefault(coeff, ([], []))[1].append(reg)
    results = [{}]
    for coeff, (gregs, hregs) in sorted(by_coeff.items()):
        gregs, hregs = sorted(gregs), sorted(hregs)
        new_results = []
        for permutation in itertools.permutations(hregs):
            mapping = dict(zip(gregs, permutation))
            for base in results:
                combined = _merge_maps(base, mapping)
                if combined is not None:
                    new_results.append(combined)
        results = new_results[:MAX_TRIES]
    return results


def _merge_maps(a: dict[str, str], b: dict[str, str]) -> dict[str, str] | None:
    merged = dict(a)
    used_hosts = set(merged.values())
    for guest, host in b.items():
        if guest in merged:
            if merged[guest] != host:
                return None
            continue
        if host in used_hosts:
            return None
        merged[guest] = host
        used_hosts.add(host)
    return merged


# -- stage 3: operations / permutations -----------------------------------------


_OP_CATEGORY = {
    "add": "add", "addl": "add",
    "sub": "sub", "subl": "sub", "rsb": "sub",
    "mul": "mul", "imull": "mul",
    "and": "and", "andl": "and",
    "orr": "or", "orl": "or",
    "eor": "xor", "xorl": "xor",
    "cmp": "cmp", "cmpl": "cmp", "cmn": "cmp", "tst": "cmp", "testl": "cmp",
    "mov": "mov", "movl": "mov", "mvn": "mov",
    "lsl": "shift", "lsr": "shift", "asr": "shift",
    "shll": "shift", "shrl": "shift", "sarl": "shift",
}


def _operation_categories(instrs, isa, reg: str) -> set[str]:
    """Operations performed on a live-in register's *value*.

    Categories follow plain register copies: in ``movl %ebp, %ecx;
    subl %esi, %ecx`` the value of ``ebp`` participates in a
    subtraction (paper Figure 3(a) maps it against ARM's ``sub``
    operand), so ``mov`` itself never counts as a category when the
    copy's destination is consumed by a real operation.
    """
    categories: set[str] = set()
    holders: set[str] = {reg}  # registers currently holding the value
    for instr in instrs:
        used = set(isa.used_registers(instr))
        defined = set(isa.defined_registers(instr))
        consumed = bool(used & holders)
        category = _OP_CATEGORY.get(instr.mnemonic)
        if consumed and category == "mov":
            holders |= defined  # the value was propagated, not consumed
        else:
            if consumed and category:
                categories.add(category)
            holders -= defined  # overwritten registers stop holding it
        if not holders:
            break
    if not categories:
        # Pure copies only: fall back to "mov" so mov-to-mov pairs can
        # still match each other.
        categories.add("mov")
    return categories


def _complete_with_operations(
    context: ParamContext, reg_map: dict[str, str]
) -> list[dict[str, str]] | None:
    """Map leftover live-ins by operation category, then permutations."""
    guest_rest = [r for r in context.guest_live_in if r not in reg_map]
    used_hosts = set(reg_map.values())
    host_rest = [r for r in context.host_live_in if r not in used_hosts]

    # Operation-based unique matches first.
    progress = True
    while progress:
        progress = False
        for guest in list(guest_rest):
            g_cats = _operation_categories(
                context.pair.guest, context.direction.guest_isa, guest
            )
            matches = [
                host for host in host_rest
                if g_cats & _operation_categories(
                    context.pair.host, context.direction.host_isa, host
                )
            ]
            if len(matches) == 1:
                reg_map = dict(reg_map)
                reg_map[guest] = matches[0]
                guest_rest.remove(guest)
                host_rest.remove(matches[0])
                progress = True

    if not guest_rest and not host_rest:
        return [reg_map]
    if len(guest_rest) != len(host_rest):
        return None
    if len(guest_rest) > 4:
        return None  # permutation space too large; paper caps at 5 tries
    results = []
    for permutation in itertools.permutations(host_rest):
        candidate = dict(reg_map)
        candidate.update(zip(guest_rest, permutation))
        results.append(candidate)
        if len(results) >= MAX_TRIES:
            break
    return results


# -- stage 4: immediates -----------------------------------------------------------


def _relate_immediates(context: ParamContext, mem_pairs,
                       reg_map: dict[str, str]) -> tuple[dict[str, tuple], set]:
    """Find ASTs expressing host immediates over guest slots."""
    guest_values = context.guest_namer.values
    host_values = dict(context.host_namer.values)
    imm_asts: dict[str, tuple] = {}
    guest_param_slots: set[str] = set()

    # Address displacements: host disp = guest aggregate + delta
    # (Figure 2(a) / Figure 4(a)).
    for guest_access, host_access in mem_pairs:
        host_slot = _disp_slot(context.host_namer, host_access)
        if host_slot is None or host_slot in imm_asts:
            continue
        ast, used = _address_disp_ast(
            guest_access.form, host_access.form, host_slot,
            guest_values, host_values,
        )
        if ast is None:
            # Opaque address (e.g. pointer loaded within the snippet,
            # Figure 2(b)): map the two displacement slots directly.
            guest_slot = _disp_slot(context.guest_namer, guest_access)
            if guest_slot is not None:
                delta = (host_values[host_slot]
                         - guest_values[guest_slot]) & 0xFFFFFFFF
                ast = ("slot", guest_slot)
                if delta:
                    ast = ("add", ast, ("const", delta))
                used = {guest_slot}
        if ast is not None:
            imm_asts[host_slot] = ast
            guest_param_slots.update(used)

    # Remaining host immediates by value relations (Figure 4(b)).
    guest_slots = sorted(guest_values)
    for host_slot, host_value in sorted(host_values.items()):
        if host_slot in imm_asts:
            continue
        relation = _value_relation(host_value, guest_slots, guest_values)
        if relation is not None:
            ast, used = relation
            imm_asts[host_slot] = ast
            guest_param_slots.update(used)
    return imm_asts, guest_param_slots


def _disp_slot(namer: SlotNamer, access: AccessInfo) -> str | None:
    return namer.slots.get((access.instr_index, -(access.operand_index + 1)))


def _address_disp_ast(gform: LinForm, hform: LinForm, host_disp_slot: str,
                      guest_values, host_values):
    """AST for a host displacement from the guest address aggregate.

    host_aggregate == guest_aggregate at learning time, so::

        disp = sum(guest slots * coeff) + guest_const
               - (other host slot contributions at learn values)
               - host_const_structural + 0

    The non-disp host contributions are folded in at their learning
    values; if that makes the rule too specific, verification of a
    broader candidate would have failed anyway.
    """
    if gform.is_opaque or hform.is_opaque:
        return None, set()
    ast = None
    used: set[str] = set()
    for slot, coeff in sorted(gform.slots.items()):
        term: tuple = ("slot", slot)
        if coeff != 1:
            term = ("mul", term, ("const", coeff & 0xFFFFFFFF))
        ast = term if ast is None else ("add", ast, term)
        used.add(slot)
    delta = gform.const - hform.const
    for slot, coeff in hform.slots.items():
        if slot != host_disp_slot:
            delta -= host_values[slot] * coeff
    disp_coeff = hform.slots.get(host_disp_slot, 1)
    if disp_coeff != 1:
        return None, set()
    if ast is None:
        ast = ("const", delta & 0xFFFFFFFF)
    elif delta:
        ast = ("add", ast, ("const", delta & 0xFFFFFFFF))
    return ast, used


def _value_relation(host_value: int, guest_slots: list[str],
                    guest_values: dict[str, int]):
    """Search identity/inverse/not/two-slot relations (Section 3.2)."""
    mask = 0xFFFFFFFF
    host_value &= mask
    for slot in guest_slots:
        value = guest_values[slot] & mask
        if value == host_value:
            return ("slot", slot), {slot}
        if (-value) & mask == host_value:
            return ("neg", ("slot", slot)), {slot}
        if (~value) & mask == host_value:
            return ("not", ("slot", slot)), {slot}
    for a, b in itertools.combinations(guest_slots, 2):
        va, vb = guest_values[a] & mask, guest_values[b] & mask
        for op, result in (
            ("or", va | vb),
            ("add", (va + vb) & mask),
            ("and", va & vb),
            ("xor", va ^ vb),
            ("sub", (va - vb) & mask),
        ):
            if result == host_value:
                return (op, ("slot", a), ("slot", b)), {a, b}
        if vb < 32 and (va << vb) & mask == host_value:
            return ("shl", ("slot", a), ("slot", b)), {a, b}
    return None
