"""Canonical identity of parameterized learning candidates.

Verification dominates learning time (Table 1: ~95% of it is symbolic
execution plus SAT/BDD equivalence checks), yet many candidates are
textually identical: short idiomatic lines (``i += 1``, ``return 0``,
pointer bumps) compile to the same guest/host snippets on many source
lines of many benchmarks, and the paramization heuristics then derive
the same initial mappings for them.  Canonicalizing candidates *before*
invoking the solver — so each distinct candidate is verified exactly
once per run, and at most once per cache lifetime — is the decisive
rule-synthesis throughput optimization (cf. Daly et al.,
arXiv:2405.06127).

A candidate's canonical key covers everything verification reads:

* the translation direction,
* the normalized guest and host snippet text (mnemonics, operands and
  concrete immediate values),
* the signature of every initial mapping the candidate will try
  (register map, immediate ASTs, parameterized guest slots).

All other verification inputs (slot namers, normalized address forms,
live-in orders, memory-operand pairing) are derived deterministically
from the instruction sequences, so equal keys imply equal verification
verdicts.  Source line, function name and benchmark are deliberately
*excluded*: they do not influence the verdict and are rebound when a
shared outcome is applied to a concrete snippet pair.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.faults.deadline import (
    Deadline,
    DeadlineBudget,
    DeadlineExceeded,
    deadline_scope,
)
from repro.faults.plan import FaultPlan, get_fault_plan
from repro.learning.paramize import InitialMapping, ParamContext
from repro.learning.rule import Rule
from repro.learning.verify import VerifyFailure, verify_candidate


def snippet_text(instrs) -> str:
    """Normalized text of an instruction sequence."""
    return "; ".join(str(instr) for instr in instrs)


def immexpr_text(expr: tuple) -> str:
    """Canonical rendering of an immediate AST (nested tuples)."""
    parts = (
        immexpr_text(part) if isinstance(part, tuple) else str(part)
        for part in expr[1:]
    )
    return f"({expr[0]} {' '.join(parts)})"


def mapping_signature(mapping: InitialMapping) -> str:
    """Order-independent signature of one initial mapping."""
    regs = ",".join(
        f"{guest}>{host}" for guest, host in sorted(mapping.reg_map.items())
    )
    imms = ",".join(
        f"{slot}={immexpr_text(ast)}"
        for slot, ast in sorted(mapping.imm_asts.items())
    )
    wild = ",".join(sorted(mapping.guest_param_slots))
    return f"regs[{regs}] imms[{imms}] wild[{wild}]"


def candidate_key(context: ParamContext,
                  mappings: list[InitialMapping]) -> str:
    """Canonical key of one verification work item (pair + mappings)."""
    lines = [
        context.direction.name,
        "guest: " + snippet_text(context.pair.guest),
        "host: " + snippet_text(context.pair.host),
    ]
    lines += [
        f"try{index}: {mapping_signature(mapping)}"
        for index, mapping in enumerate(mappings)
    ]
    return "\n".join(lines)


def candidate_digest(context: ParamContext,
                     mappings: list[InitialMapping]) -> str:
    """Stable hex digest of :func:`candidate_key` (cache/dedup key)."""
    key = candidate_key(context, mappings)
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


@dataclass
class CandidateOutcome:
    """The (deterministic) verification verdict of one candidate.

    Attributes:
        rule: The learned rule template on success (its ``origin`` and
            ``line`` are placeholders; callers rebind them per snippet
            pair).
        failure: Table 1 classification of the *last* failed attempt.
        calls: Number of solver-backed :func:`verify_candidate`
            invocations the verdict cost — what dedup and caching save.
    """

    rule: Rule | None = None
    failure: VerifyFailure | None = None
    calls: int = 0


def resolve_candidate(
    context: ParamContext,
    mappings: list[InitialMapping],
    *,
    budget: DeadlineBudget | None = None,
    digest: str | None = None,
    plan: FaultPlan | None = None,
) -> CandidateOutcome:
    """Verify one canonical candidate: first successful mapping wins.

    Mirrors the paper's protocol (Section 3.3): initial mappings are
    tried in decreasing heuristic confidence, and only the last
    verification attempt is classified on failure (Section 6.1).

    ``budget`` bounds the candidate's verification cost; exhaustion
    yields a ``TIMEOUT`` outcome (``calls`` then counts *started*
    attempts, including the interrupted one).  ``digest`` keys fault
    injection against ``plan`` (the process-global plan when None) —
    production callers that pass no digest never pay for injection.
    """
    if plan is None:
        plan = get_fault_plan()
    deadline = Deadline(budget) if budget is not None and budget.bounded \
        else None
    last_failure: VerifyFailure | None = None
    calls = 0
    try:
        with deadline_scope(deadline):
            if digest is not None and plan.active:
                plan.inject_candidate_faults(digest)
            for mapping in mappings:
                calls += 1
                result = verify_candidate(context, mapping)
                if result.rule is not None:
                    return CandidateOutcome(rule=result.rule, calls=calls)
                last_failure = result.failure
    except DeadlineExceeded:
        return CandidateOutcome(failure=VerifyFailure.TIMEOUT, calls=calls)
    return CandidateOutcome(failure=last_failure, calls=calls)
