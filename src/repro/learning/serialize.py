"""Rule serialization: save learned rules to JSON and load them back.

A rule repository is the natural unit of reuse for this system (the
paper proposes accumulating rules from "large amounts of existing
open-source software"); this module gives it a stable on-disk format.

The format is versioned and self-describing; unknown versions are
rejected loudly rather than mis-parsed.
"""

from __future__ import annotations

import json
from typing import IO

from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg, SymImm
from repro.learning.rule import Rule

FORMAT_VERSION = 1


class RuleFormatError(ValueError):
    """The JSON document is not a valid rule repository."""


# -- operands ------------------------------------------------------------------


def _operand_to_json(op) -> dict:
    if isinstance(op, Reg):
        return {"k": "reg", "name": op.name}
    if isinstance(op, Imm):
        return {"k": "imm", "value": op.value}
    if isinstance(op, SymImm):
        return {"k": "symimm", "expr": _ast_to_json(op.expr)}
    if isinstance(op, ShiftedReg):
        return {"k": "shifted", "reg": op.reg.name, "shift": op.shift,
                "amount": op.amount}
    if isinstance(op, Label):
        return {"k": "label", "name": op.name}
    if isinstance(op, Mem):
        return {
            "k": "mem",
            "base": op.base.name if op.base else None,
            "index": op.index.name if op.index else None,
            "scale": op.scale,
            "disp": op.disp,
            "disp_param": _ast_to_json(op.disp_param)
            if op.disp_param is not None else None,
        }
    raise RuleFormatError(f"cannot serialize operand {op!r}")


def _operand_from_json(data: dict):
    kind = data.get("k")
    if kind == "reg":
        return Reg(data["name"])
    if kind == "imm":
        return Imm(data["value"])
    if kind == "symimm":
        return SymImm(_ast_from_json(data["expr"]))
    if kind == "shifted":
        return ShiftedReg(Reg(data["reg"]), data["shift"], data["amount"])
    if kind == "label":
        return Label(data["name"])
    if kind == "mem":
        return Mem(
            Reg(data["base"]) if data["base"] else None,
            Reg(data["index"]) if data["index"] else None,
            data["scale"],
            data["disp"],
            None,
            _ast_from_json(data["disp_param"])
            if data["disp_param"] is not None else None,
        )
    raise RuleFormatError(f"unknown operand kind {kind!r}")


def _ast_to_json(expr: tuple) -> list:
    # Immediate ASTs are nested tuples; JSON lists round-trip them.
    return [expr[0]] + [
        part if not isinstance(part, tuple) else _ast_to_json(part)
        for part in expr[1:]
    ]


def _ast_from_json(data: list) -> tuple:
    if not isinstance(data, list) or not data:
        raise RuleFormatError(f"bad immediate AST {data!r}")
    return tuple(
        [data[0]] + [
            part if not isinstance(part, list) else _ast_from_json(part)
            for part in data[1:]
        ]
    )


# -- instructions / rules ----------------------------------------------------------


def _instr_to_json(instr: Instruction) -> dict:
    return {
        "op": instr.mnemonic,
        "operands": [_operand_to_json(op) for op in instr.operands],
    }


def _instr_from_json(data: dict) -> Instruction:
    return Instruction(
        data["op"],
        tuple(_operand_from_json(op) for op in data["operands"]),
    )


def rule_to_json(rule: Rule) -> dict:
    return {
        "guest": [_instr_to_json(i) for i in rule.guest],
        "host": [_instr_to_json(i) for i in rule.host],
        "params": list(rule.params),
        "written_params": list(rule.written_params),
        "temps": list(rule.temps),
        "guest_flags_written": list(rule.guest_flags_written),
        "cc_info": dict(rule.cc_info),
        "has_branch": rule.has_branch,
        "origin": rule.origin,
        "line": rule.line,
        "direction": rule.direction,
    }


def rule_digest(rule: Rule) -> str:
    """A short stable content digest identifying a rule's semantics.

    Hashes the canonical JSON form minus the provenance fields
    (``origin``/``line``) and derived ``cc_info`` — exactly the fields
    :class:`~repro.learning.rule.Rule` excludes from equality — so two
    equal rules learned from different corpus lines share one digest.
    This is the key per-rule attribution (profitability, hit
    reconciliation) reports under: stable across processes and runs,
    unlike ``id()`` or insertion order.
    """
    import hashlib

    data = rule_to_json(rule)
    for ephemeral in ("origin", "line", "cc_info"):
        data.pop(ephemeral, None)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def rule_from_json(data: dict) -> Rule:
    try:
        return Rule(
            guest=tuple(_instr_from_json(i) for i in data["guest"]),
            host=tuple(_instr_from_json(i) for i in data["host"]),
            params=tuple(data["params"]),
            written_params=tuple(data["written_params"]),
            temps=tuple(data["temps"]),
            guest_flags_written=tuple(data["guest_flags_written"]),
            cc_info=dict(data["cc_info"]),
            has_branch=bool(data["has_branch"]),
            origin=data.get("origin", ""),
            line=data.get("line", 0),
            direction=data.get("direction", "arm-x86"),
        )
    except KeyError as exc:
        raise RuleFormatError(f"missing rule field {exc}") from exc


def dump_rules(rules: list[Rule], fp: IO[str]) -> None:
    """Write a rule repository as JSON."""
    json.dump(
        {
            "format": "repro-dbt-rules",
            "version": FORMAT_VERSION,
            "rules": [rule_to_json(rule) for rule in rules],
        },
        fp,
        indent=1,
    )


def load_rules(fp: IO[str]) -> list[Rule]:
    """Read a rule repository written by :func:`dump_rules`."""
    document = json.load(fp)
    if not isinstance(document, dict) or \
            document.get("format") != "repro-dbt-rules":
        raise RuleFormatError("not a repro-dbt rule repository")
    if document.get("version") != FORMAT_VERSION:
        raise RuleFormatError(
            f"unsupported rule format version {document.get('version')!r}"
        )
    return [rule_from_json(item) for item in document["rules"]]


def dumps_rules(rules: list[Rule]) -> str:
    import io

    buffer = io.StringIO()
    dump_rules(rules, buffer)
    return buffer.getvalue()


def loads_rules(text: str) -> list[Rule]:
    import io

    return load_rules(io.StringIO(text))
