"""Learned translation rules: representation, matching, binding.

A :class:`Rule` maps a parameterized guest (ARM) instruction sequence
to a parameterized host (x86) sequence (Section 4).  ``match_rule``
implements the binding step used by the DBT at translation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.operands import (
    INT_IMMEXPR_OPS,
    Imm,
    Label,
    Mem,
    Reg,
    ShiftedReg,
    SymImm,
    eval_immexpr,
)


@dataclass(frozen=True)
class Rule:
    """One verified translation rule.

    Attributes:
        guest: Parameterized guest instruction sequence.
        host: Parameterized host instruction sequence.
        params: Register parameters shared by guest and host.
        written_params: Params whose register is written by the guest.
        temps: Host-only scratch register parameters.
        guest_flags_written: Guest condition codes the guest sequence
            defines.
        cc_info: guest flag -> "direct"/"inverted" for flags the host
            sequence emulates in the corresponding x86 flag; guest flags
            written but absent here are NOT emulated (Section 5's
            translation-time liveness analysis must prove them dead).
        has_branch: The sequences end in (equivalent) branches.
        origin: Benchmark the rule was learned from.
        line: Source line it came from.
    """

    guest: tuple[Instruction, ...]
    host: tuple[Instruction, ...]
    params: tuple[str, ...]
    written_params: tuple[str, ...]
    temps: tuple[str, ...]
    guest_flags_written: tuple[str, ...] = ()
    cc_info: dict[str, str] = field(default_factory=dict, compare=False,
                                    hash=False)
    has_branch: bool = False
    origin: str = field(default="", compare=False, hash=False)
    line: int = field(default=0, compare=False, hash=False)
    direction: str = "arm-x86"

    @property
    def length(self) -> int:
        """Number of guest instructions (the paper's rule *length*)."""
        return len(self.guest)

    def guest_signature(self) -> tuple[str, ...]:
        return tuple(str(instr) for instr in self.guest)

    def hash_key(self) -> int:
        """The paper's scheme: arithmetic mean of the guest opcodes."""
        from repro.learning.direction import DIRECTIONS

        opcode_id = DIRECTIONS[self.direction].guest_opcode_id
        ids = [opcode_id(instr) for instr in self.guest]
        return sum(ids) // len(ids)

    @property
    def unemulated_flags(self) -> tuple[str, ...]:
        return tuple(
            flag for flag in self.guest_flags_written
            if flag not in self.cc_info
        )

    def __str__(self) -> str:
        guest = "; ".join(str(i) for i in self.guest)
        host = "; ".join(str(i) for i in self.host)
        return f"[{guest}]  =>  [{host}]"


@dataclass
class Binding:
    """Result of matching a rule against concrete guest instructions."""

    regs: dict[str, str] = field(default_factory=dict)  # param -> guest reg
    slots: dict[str, int] = field(default_factory=dict)  # slot -> value
    label: str | None = None

    def immediate(self, expr: tuple) -> int:
        """Evaluate a host immediate AST under this binding."""
        return eval_immexpr(expr, self.slots, INT_IMMEXPR_OPS)


def match_rule(rule: Rule, instrs: list[Instruction]) -> Binding | None:
    """Try to bind ``rule`` against a concrete guest sequence.

    The sequence length must equal the rule length.  Returns the binding
    or None.  Distinct register parameters may bind the same concrete
    register only if at most one of them is written (otherwise write
    ordering could differ between guest and host).
    """
    if len(instrs) != rule.length:
        return None
    binding = Binding()
    for template, concrete in zip(rule.guest, instrs):
        if template.mnemonic != concrete.mnemonic:
            return None
        if len(template.operands) != len(concrete.operands):
            return None
        for top, cop in zip(template.operands, concrete.operands):
            if not _match_operand(top, cop, binding):
                return None
    if not _aliasing_ok(rule, binding):
        return None
    return binding


def _bind_reg(binding: Binding, param: str, name: str) -> bool:
    bound = binding.regs.get(param)
    if bound is None:
        binding.regs[param] = name
        return True
    return bound == name


def _bind_slot(binding: Binding, slot: str, value: int) -> bool:
    value &= 0xFFFFFFFF
    bound = binding.slots.get(slot)
    if bound is None:
        binding.slots[slot] = value
        return True
    return bound == value


def _match_operand(top, cop, binding: Binding) -> bool:
    if isinstance(top, Reg):
        if not isinstance(cop, Reg):
            return False
        if top.name.endswith(".b"):
            # Low-byte parameter (x86-guest templates): the concrete
            # operand must be a low-8 alias; bind its parent register.
            from repro.host_x86.registers import is_low8, parent_of

            if not is_low8(cop.name):
                return False
            return _bind_reg(binding, top.name[:-2], parent_of(cop.name))
        return _bind_reg(binding, top.name, cop.name)
    if isinstance(top, Imm):
        return isinstance(cop, Imm) and (top.value & 0xFFFFFFFF) == (
            cop.value & 0xFFFFFFFF
        )
    if isinstance(top, SymImm):
        if not isinstance(cop, Imm):
            return False
        assert top.expr[0] == "slot", "guest templates only use plain slots"
        return _bind_slot(binding, top.expr[1], cop.value)
    if isinstance(top, ShiftedReg):
        return (
            isinstance(cop, ShiftedReg)
            and top.shift == cop.shift
            and top.amount == cop.amount
            and _bind_reg(binding, top.reg.name, cop.reg.name)
        )
    if isinstance(top, Label):
        if not isinstance(cop, Label):
            return False
        if binding.label is None:
            binding.label = cop.name
            return True
        return binding.label == cop.name
    if isinstance(top, Mem):
        if not isinstance(cop, Mem):
            return False
        if (top.base is None) != (cop.base is None):
            return False
        if (top.index is None) != (cop.index is None):
            return False
        if top.index is not None and top.scale != cop.scale:
            return False
        if top.base is not None and not _bind_reg(
            binding, top.base.name, cop.base.name
        ):
            return False
        if top.index is not None and not _bind_reg(
            binding, top.index.name, cop.index.name
        ):
            return False
        if top.disp_param is not None:
            assert top.disp_param[0] == "slot"
            return _bind_slot(binding, top.disp_param[1], cop.disp - top.disp)
        return top.disp == cop.disp
    return False


def _aliasing_ok(rule: Rule, binding: Binding) -> bool:
    by_concrete: dict[str, list[str]] = {}
    for param, concrete in binding.regs.items():
        by_concrete.setdefault(concrete, []).append(param)
    written = set(rule.written_params)
    for params in by_concrete.values():
        if len(params) > 1 and sum(1 for p in params if p in written) > 1:
            return False
    return True


def instantiate_host(rule: Rule, binding: Binding,
                     reg_assignment: dict[str, str],
                     check_constraints: bool = True) -> list[Instruction]:
    """Materialize the rule's host side as concrete instructions.

    ``reg_assignment`` maps every rule parameter (including temps) to a
    concrete *host* register name.  Host-ISA encoding constraints
    (paper Section 5) are checked unless disabled — e.g. an
    ARM-as-host rule binding an immediate outside the modified-immediate
    range raises :class:`~repro.learning.direction.HostConstraintError`.
    """
    from repro.learning.direction import DIRECTIONS

    direction = DIRECTIONS[rule.direction]

    def reg(name: str) -> Reg:
        if name.endswith(".b"):
            from repro.host_x86.registers import LOW8_TO_PARENT

            parent = reg_assignment[name[:-2]]
            for low8, parent_name in LOW8_TO_PARENT.items():
                if parent_name == parent:
                    return Reg(low8)
            return Reg(f"{parent}.b")
        return Reg(reg_assignment[name])

    result: list[Instruction] = []
    for template in rule.host:
        operands = []
        for op in template.operands:
            if isinstance(op, Reg):
                operands.append(reg(op.name))
            elif isinstance(op, SymImm):
                operands.append(Imm(binding.immediate(op.expr)))
            elif isinstance(op, ShiftedReg):
                operands.append(ShiftedReg(reg(op.reg.name), op.shift,
                                           op.amount))
            elif isinstance(op, Mem):
                disp = op.disp
                if op.disp_param is not None:
                    disp = (disp + binding.immediate(op.disp_param)) \
                        & 0xFFFFFFFF
                    if disp >= 0x8000_0000:
                        disp -= 0x1_0000_0000
                operands.append(Mem(
                    reg(op.base.name) if op.base else None,
                    reg(op.index.name) if op.index else None,
                    op.scale, disp,
                ))
            elif isinstance(op, Label):
                operands.append(Label(binding.label or op.name))
            else:
                operands.append(op)
        instr = Instruction(template.mnemonic, tuple(operands))
        if check_constraints:
            direction.host_constraints(instr)
        result.append(instr)
    return result


def dedup_rules(rules: list[Rule]) -> list[Rule]:
    """Among rules with identical guest sequences keep the one with the
    fewest host instructions (Section 6.1)."""
    best: dict[tuple[str, ...], Rule] = {}
    for rule in rules:
        key = rule.guest_signature()
        existing = best.get(key)
        if existing is None or len(rule.host) < len(existing.host):
            best[key] = rule
    return list(best.values())
