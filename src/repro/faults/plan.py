"""Deterministic fault injection for the chaos test suite.

A :class:`FaultPlan` names, ahead of time, exactly which failures to
inject into a learning run or a DBT session: crash the worker that
resolves candidate digest D, hang another candidate against the
deadline guard, kill the parent after K journaled chunks, garble the
Kth verification-cache save, or flip a learned rule's host template.
Because every injection point is keyed by deterministic identifiers
(candidate digests, save ordinals, chunk counts), a chaos test replays
the identical failure schedule on every run.

The plan is process-global (``install_fault_plan`` /
``fault_plan_scope``) on the parent side; the parallel learner ships it
explicitly to pool workers, so injections fire regardless of the
multiprocessing start method.  The default :data:`NO_FAULTS` plan is
inert and costs one attribute read per injection point.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass


class InjectedAbort(RuntimeError):
    """Parent-side injected kill of a learning run
    (``FaultPlan.abort_after_chunks``)."""


class InjectedFailure(RuntimeError):
    """Injected in-worker exception (``FaultPlan.raise_digests``)."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic failure schedule.

    Attributes:
        crash_digests: Candidates whose resolving worker process dies
            hard (``os._exit``) — exercises ``BrokenProcessPool``
            recovery and poison-candidate bisection.
        raise_digests: Candidates whose resolution raises
            :class:`InjectedFailure` — exercises retry-with-backoff and
            bisection without killing the pool.
        hang_digests: Candidates that spin forever against the active
            deadline — exercises the ``TO`` path.  Requires a bounded
            deadline; otherwise the injection raises immediately
            instead of actually hanging the suite.
        abort_after_chunks: Raise :class:`InjectedAbort` in the parent
            after this many resolved chunks were journaled — exercises
            checkpoint/resume.
        corrupt_cache_on_save: Garble the verification-cache file after
            its Nth (1-based) save — exercises corrupt-load quarantine.
    """

    crash_digests: frozenset = frozenset()
    raise_digests: frozenset = frozenset()
    hang_digests: frozenset = frozenset()
    abort_after_chunks: int | None = None
    corrupt_cache_on_save: int | None = None

    @property
    def active(self) -> bool:
        return bool(
            self.crash_digests
            or self.raise_digests
            or self.hang_digests
            or self.abort_after_chunks is not None
            or self.corrupt_cache_on_save is not None
        )

    def inject_candidate_faults(self, digest: str) -> None:
        """Fire any fault this plan schedules for one candidate."""
        if digest in self.crash_digests:
            # A hard worker death, not an exception: the pool sees a
            # vanished process, exactly like a native engine crash.
            os._exit(86)
        if digest in self.raise_digests:
            raise InjectedFailure(f"injected failure for candidate {digest}")
        if digest in self.hang_digests:
            simulated_hang()


@dataclass(frozen=True)
class KillEvent:
    """One scheduled shard kill in a fleet chaos run.

    ``at_seconds`` is elapsed time since the schedule started;
    ``downtime`` is how long the shard stays dead before the driver
    restarts it.  Time-keyed (not digest-keyed) because the injection
    point is a *process*, not a candidate — but the schedule itself is
    fixed ahead of time, so runs replay the same churn shape.
    """

    at_seconds: float
    shard: str
    downtime: float = 1.0


@dataclass(frozen=True)
class KillSchedule:
    """A deterministic shard kill/restart schedule for the fleet gate.

    The driver polls :meth:`due` with its elapsed clock and a set of
    already-fired event indices; events fire exactly once, in declared
    order.  :meth:`staggered` builds the canonical gate schedule: one
    kill per shard, evenly spaced, so every shard proves it survives a
    crash + catch-up while the others carry traffic.
    """

    events: tuple = ()

    @classmethod
    def staggered(cls, shards, first: float = 2.0,
                  spacing: float = 3.0,
                  downtime: float = 1.0) -> "KillSchedule":
        return cls(tuple(
            KillEvent(first + index * spacing, shard, downtime)
            for index, shard in enumerate(shards)
        ))

    def due(self, elapsed: float, fired: set) -> list:
        """Events whose time has come and that have not fired yet;
        the caller adds the returned indices to ``fired``."""
        return [
            (index, event)
            for index, event in enumerate(self.events)
            if index not in fired and elapsed >= event.at_seconds
        ]

    @property
    def kills(self) -> int:
        return len(self.events)


NO_FAULTS = FaultPlan()

_PLAN: FaultPlan = NO_FAULTS


def get_fault_plan() -> FaultPlan:
    return _PLAN


def install_fault_plan(plan: FaultPlan | None) -> None:
    global _PLAN
    _PLAN = plan if plan is not None else NO_FAULTS


@contextmanager
def fault_plan_scope(plan: FaultPlan):
    """Install ``plan`` for the duration of a ``with`` block."""
    previous = get_fault_plan()
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        install_fault_plan(previous)


def simulated_hang() -> None:
    """Spin against the active deadline until it fires.

    With a bounded deadline installed this deterministically raises
    :class:`~repro.faults.deadline.DeadlineExceeded`; without one it
    raises ``RuntimeError`` instead of genuinely hanging the process,
    so a mis-configured chaos test fails fast.
    """
    from repro.faults.deadline import active_deadline

    deadline = active_deadline()
    if deadline is None or not deadline.budget.bounded:
        raise RuntimeError(
            "injected hang reached with no bounded deadline installed"
        )
    while True:
        deadline.tick()


#: Mnemonic flips that keep the instruction shape (and every host-ISA
#: constraint) valid while changing its semantics.
_MNEMONIC_FLIPS = {
    "addl": "subl",
    "subl": "addl",
    "xorl": "orl",
    "orl": "xorl",
    "andl": "orl",
    "imull": "addl",
}


def corrupt_rule(rule):
    """Return ``rule`` with a deliberately wrong host template.

    The guest pattern is untouched, so the corrupted rule still matches
    and applies at translation time — only its emitted host code
    miscomputes.  This is the injection the differential guard must
    catch.  Raises ``ValueError`` for a rule with no corruptible host
    instruction.
    """
    from dataclasses import replace

    from repro.isa.instruction import Instruction
    from repro.isa.operands import Imm

    host = list(rule.host)
    for index, instr in enumerate(host):
        flipped = _MNEMONIC_FLIPS.get(instr.mnemonic)
        if flipped is not None:
            host[index] = Instruction(flipped, instr.operands,
                                      meta=instr.meta)
            return replace(rule, host=tuple(host))
        operands = list(instr.operands)
        for position, operand in enumerate(operands):
            if isinstance(operand, Imm):
                operands[position] = Imm((operand.value + 1) & 0xFFFFFFFF)
                host[index] = Instruction(instr.mnemonic, tuple(operands),
                                          meta=instr.meta)
                return replace(rule, host=tuple(host))
    raise ValueError("rule has no corruptible host instruction")
