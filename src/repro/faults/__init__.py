"""Fault tolerance for learning and the DBT (deadlines, chaos plans).

Coordinates the failure-handling layer the rest of the system hooks
into:

* :mod:`repro.faults.deadline` — per-candidate verification budgets
  that turn hangs into deterministic ``TO`` (timeout) outcomes;
* :mod:`repro.faults.plan` — deterministic fault injection
  (:class:`FaultPlan`) used by the chaos test suite to prove crash
  isolation, checkpoint/resume and rule quarantine actually work.
"""

from repro.faults.deadline import (
    Deadline,
    DeadlineBudget,
    DeadlineExceeded,
    active_deadline,
    deadline_scope,
    tick,
)
from repro.faults.plan import (
    NO_FAULTS,
    FaultPlan,
    InjectedAbort,
    InjectedFailure,
    KillEvent,
    KillSchedule,
    corrupt_rule,
    fault_plan_scope,
    get_fault_plan,
    install_fault_plan,
    simulated_hang,
)

__all__ = [
    "Deadline",
    "DeadlineBudget",
    "DeadlineExceeded",
    "active_deadline",
    "deadline_scope",
    "tick",
    "NO_FAULTS",
    "FaultPlan",
    "InjectedAbort",
    "InjectedFailure",
    "KillEvent",
    "KillSchedule",
    "corrupt_rule",
    "fault_plan_scope",
    "get_fault_plan",
    "install_fault_plan",
    "simulated_hang",
]
