"""Per-candidate verification deadlines (the Table 1 ``TO`` outcome).

The BDD node budget bounds the *space* a single equivalence query may
use, but nothing bounded the *time* a candidate may spend across
queries: a pathological candidate could chain an unbounded number of
solver calls and hang learning forever.  A :class:`Deadline` converts
such hangs into a deterministic timeout verdict:

* ``max_steps`` is the deterministic proxy — one step per solver-backed
  equivalence query (:func:`repro.learning.verify._exprs_equal` ticks
  the active deadline once per query), so the same candidate times out
  at the same point on every machine, keeping sequential/parallel and
  cached/uncached runs byte-identical;
* ``max_seconds`` is the real-time guard for hangs the step proxy
  cannot see (e.g. one enormous query).  It trades determinism for
  liveness, so equivalence gates should use step budgets only.

The active deadline is process-global (installed with
:func:`deadline_scope`, exactly like the tracer), so deep verification
code can tick it without threading a handle through every call.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass


class DeadlineExceeded(Exception):
    """A per-candidate verification budget ran out (outcome ``TO``)."""


@dataclass(frozen=True)
class DeadlineBudget:
    """Picklable deadline configuration (ships to pool workers).

    Attributes:
        max_steps: Deterministic step budget; one step per solver-backed
            equivalence query.  None = unbounded.
        max_seconds: Real-time guard per candidate.  None = unbounded.
    """

    max_steps: int | None = None
    max_seconds: float | None = None

    @property
    def bounded(self) -> bool:
        return self.max_steps is not None or self.max_seconds is not None

    def start(self) -> "Deadline":
        return Deadline(self)


class Deadline:
    """A running budget: ticks accumulate, exhaustion raises."""

    __slots__ = ("budget", "steps", "_started")

    def __init__(self, budget: DeadlineBudget) -> None:
        self.budget = budget
        self.steps = 0
        self._started = time.perf_counter()

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    def tick(self, steps: int = 1) -> None:
        """Record progress; raise :class:`DeadlineExceeded` when spent."""
        self.steps += steps
        budget = self.budget
        if budget.max_steps is not None and self.steps > budget.max_steps:
            raise DeadlineExceeded(
                f"step budget exhausted ({self.steps} > {budget.max_steps})"
            )
        if budget.max_seconds is not None:
            elapsed = time.perf_counter() - self._started
            if elapsed > budget.max_seconds:
                raise DeadlineExceeded(
                    f"wall-clock budget exhausted "
                    f"({elapsed:.3f}s > {budget.max_seconds}s)"
                )


_ACTIVE: Deadline | None = None


def active_deadline() -> Deadline | None:
    return _ACTIVE


def tick(steps: int = 1) -> None:
    """Tick the active deadline, if any (no-op otherwise — the hot
    path pays one global read when no deadline is installed)."""
    if _ACTIVE is not None:
        _ACTIVE.tick(steps)


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Install ``deadline`` as the process-global active deadline."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = deadline
    try:
        yield deadline
    finally:
        _ACTIVE = previous
