"""Direct (non-translating) emulators for compiled programs.

These execute a :class:`~repro.minic.compile.CompiledProgram` one
instruction at a time through the single-source semantics.  They serve
as the ground-truth oracle for the DBT and for cross-ISA differential
tests (the ARM build and the x86 build of the same source must agree).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guest_arm import execute as execute_arm
from repro.host_x86 import execute as execute_x86
from repro.isa.alu import ConcreteALU
from repro.isa.operands import Label
from repro.minic.compile import (
    CODE_BASE,
    HALT_ADDRESS,
    STACK_TOP,
    CompiledProgram,
)
from repro.dbt.machine import ConcreteState

_ALU = ConcreteALU()
_X86_HALT_INDEX = 0x7FFF_FFF0  # sentinel return index for the x86 runner


class EmulationError(Exception):
    """The emulated program did something unexpected."""


@dataclass
class RunResult:
    """Outcome of a direct emulation."""

    return_value: int
    dynamic_instructions: int
    state: ConcreteState = field(repr=False, default=None)  # type: ignore


def run_arm_program(
    program: CompiledProgram,
    args: tuple[int, ...] = (),
    step_limit: int = 200_000_000,
) -> RunResult:
    """Emulate an ARM build from ``main`` until it returns."""
    if program.options.target != "arm":
        raise EmulationError("run_arm_program needs an ARM build")
    state = ConcreteState(memory=dict(program.initial_memory()))
    state.set_reg("sp", STACK_TOP)
    state.set_reg("lr", HALT_ADDRESS)
    for i, arg in enumerate(args):
        state.set_reg(f"r{i}", arg)
    index = program.labels[program.entry]
    executed = 0
    code = program.code
    labels = program.labels
    while True:
        if executed >= step_limit:
            raise EmulationError("step limit exceeded")
        instr = code[index]
        state.regs["pc"] = CODE_BASE + 4 * index
        outcome = execute_arm(instr, state, _ALU)
        executed += 1
        branch = outcome.branch
        if branch is None or not branch.cond:
            index += 1
            continue
        target = branch.target
        if isinstance(target, Label):
            index = labels[target.name]
            continue
        if target == HALT_ADDRESS:
            return RunResult(state.get_reg("r0"), executed, state)
        index = program.index_of_addr(target)


def run_x86_program(
    program: CompiledProgram,
    args: tuple[int, ...] = (),
    step_limit: int = 200_000_000,
) -> RunResult:
    """Emulate an x86 build from ``main`` until it returns.

    The x86 model uses instruction *indices* as code addresses (the
    ``pc`` pseudo-register), so return addresses pushed by ``call`` are
    indices too.
    """
    if program.options.target != "x86":
        raise EmulationError("run_x86_program needs an x86 build")
    state = ConcreteState(memory=dict(program.initial_memory()))
    esp = STACK_TOP - 4 * (len(args) + 1)
    state.set_reg("esp", esp)
    state.store(esp, _X86_HALT_INDEX, 4)  # sentinel return address
    for i, arg in enumerate(args):
        state.store(esp + 4 + 4 * i, arg, 4)
    index = program.labels[program.entry]
    executed = 0
    code = program.code
    labels = program.labels
    while True:
        if executed >= step_limit:
            raise EmulationError("step limit exceeded")
        instr = code[index]
        state.regs["pc"] = index
        outcome = execute_x86(instr, state, _ALU)
        executed += 1
        branch = outcome.branch
        if branch is None or not branch.cond:
            index += 1
            continue
        target = branch.target
        if isinstance(target, Label):
            index = labels[target.name]
            continue
        if target == _X86_HALT_INDEX:
            return RunResult(state.get_reg("eax"), executed, state)
        if not 0 <= target < len(code):
            raise EmulationError(f"jump to bad index {target}")
        index = target
