"""Precompiled bound emitters for learned rules (translate-path speed).

``ruletrans.instantiate_host`` used to re-walk the rule's host template
on every hit: per-operand ``isinstance`` dispatch, dict lookups, a
``from repro.host_x86 import isa`` import *inside* the template loop,
and a dynamic host-constraint check whose inputs are entirely static.
This module moves all of that to install time: :func:`compile_emitter`
turns a rule's host template into a specialized closure per template
instruction — operand slots resolved to positional builders, the x86
encoding constraints (SIB scale) checked once against the static
template — so the per-hit path is a straight loop of closure calls.

Emitters are memoized per :class:`~repro.learning.rule.Rule` (rules are
frozen and hash by semantic identity, so re-learned equal rules share
one compiled emitter).  :meth:`RuleStore.insert
<repro.learning.store.RuleStore.insert>` warms the cache at install /
hot-install time; a cold :func:`get_emitter` call compiles lazily.

Only the ``arm-x86`` direction is compiled — the DBT engine executes
ARM guests on the x86 host model.
"""

from __future__ import annotations

from repro.host_x86 import isa as x86_isa
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, SymImm


class RuleApplicationError(Exception):
    """The bound rule violates a host-ISA constraint (Section 5)."""


class BoundEmitter:
    """One rule's host template, compiled to per-instruction closures.

    Calling the emitter with a binding and a
    :class:`~repro.dbt.codegen.BlockAssembler` appends the bound
    non-branch host instructions and returns ``(emitted, branch_cc)``
    exactly like the interpretive path did.
    """

    __slots__ = ("rule", "temps", "written_params", "branch_cc",
                 "template_cycles", "_builders", "_static_error")

    def __init__(self, rule, temps, written_params, branch_cc,
                 template_cycles, builders, static_error):
        self.rule = rule
        self.temps = temps
        self.written_params = written_params
        #: Taken-branch condition mnemonic, or None for straight-line
        #: rules (precomputed: branches are static template facts).
        self.branch_cc = branch_cc
        #: Modeled exec cycles/visit of the bound template — binding
        #: never changes an operand's cycle class, so this is exact for
        #: the template body and seeds the lowest-cost cover DP.
        self.template_cycles = template_cycles
        self._builders = builders
        #: Host-constraint violation found at compile time (hoisted
        #: from the per-hit path; raised on application so the miss
        #: accounting sees the same ``RuleApplicationError`` as before).
        self._static_error = static_error

    @property
    def static_ok(self) -> bool:
        """True when every hoisted host-constraint check passed — an
        application of this emitter cannot raise."""
        return self._static_error is None

    def __call__(self, binding, assembler):
        if self._static_error is not None:
            raise RuleApplicationError(self._static_error)
        reg_map: dict[str, str] = {}
        guest_vreg = assembler.guest_vreg
        for param, guest_reg in binding.regs.items():
            reg_map[param] = guest_vreg(guest_reg)
        for temp in self.temps:
            reg_map[temp] = assembler.new_vreg()
        emitted = [build(binding, reg_map) for build in self._builders]
        assembler.instrs.extend(emitted)
        regs = binding.regs
        mark_dirty = assembler.mark_dirty
        for param in self.written_params:
            mark_dirty(regs[param])
        return emitted, self.branch_cc


def _compile_operand(op):
    """One operand slot -> ``(binding, reg_map) -> operand`` closure.

    The ``isinstance`` dispatch runs here, once per template operand at
    compile time — never again on the per-hit path.  Returns ``(builder,
    low8_parent_param)``; the second element names the parameter whose
    low-8 alias this operand selects (the ``needs_low8`` meta hint).
    """
    if isinstance(op, Reg):
        name = op.name
        if name.endswith(".b"):
            param = name[:-2]
            return (lambda binding, reg_map:
                    Reg(f"{reg_map[param]}.b")), param
        return (lambda binding, reg_map: Reg(reg_map[name])), None
    if isinstance(op, Imm):
        return (lambda binding, reg_map: op), None
    if isinstance(op, SymImm):
        expr = op.expr
        return (lambda binding, reg_map:
                Imm(binding.immediate(expr))), None
    if isinstance(op, Mem):
        base = op.base.name if op.base else None
        index = op.index.name if op.index else None
        scale, static_disp, disp_param = op.scale, op.disp, op.disp_param

        def build_mem(binding, reg_map):
            disp = static_disp
            if disp_param is not None:
                disp = (disp + binding.immediate(disp_param)) & 0xFFFFFFFF
                if disp >= 0x8000_0000:
                    disp -= 0x1_0000_0000
            return Mem(
                Reg(reg_map[base]) if base is not None else None,
                Reg(reg_map[index]) if index is not None else None,
                scale,
                disp,
            )
        return build_mem, None
    if isinstance(op, Label):
        return (lambda binding, reg_map: op), None
    raise _UncompilableOperand(f"cannot bind operand {op!r}")


class _UncompilableOperand(Exception):
    """Template operand kind the x86 emitter cannot bind."""


def compile_emitter(rule) -> BoundEmitter:
    """Compile one rule's host template into a :class:`BoundEmitter`."""
    from repro.dbt.perf import instruction_cycles

    builders = []
    branch_cc = None
    template_cycles = 0.0
    static_error = None
    try:
        for template in rule.host:
            if x86_isa.is_branch(template):
                # The caller emits the control transfer.
                branch_cc = template.mnemonic
                continue
            error = _static_constraint_error(template)
            if error is not None and static_error is None:
                static_error = error
            mnemonic = template.mnemonic
            op_builders = []
            low8_parent = None
            for op in template.operands:
                builder, parent = _compile_operand(op)
                op_builders.append(builder)
                if parent is not None:
                    low8_parent = parent
            builders.append(
                _compile_instruction(mnemonic, op_builders, low8_parent)
            )
            template_cycles += instruction_cycles(template)
    except _UncompilableOperand as exc:
        if static_error is None:
            static_error = str(exc)
    return BoundEmitter(
        rule=rule,
        temps=rule.temps,
        written_params=rule.written_params,
        branch_cc=branch_cc,
        template_cycles=template_cycles,
        builders=tuple(builders),
        static_error=static_error,
    )


def _compile_instruction(mnemonic, op_builders, low8_parent):
    """One template instruction -> bound-instruction closure."""
    if low8_parent is None:
        if len(op_builders) == 2:
            # The dominant x86 shape: specialize away the inner loop.
            build_a, build_b = op_builders

            def build2(binding, reg_map):
                return Instruction(
                    mnemonic,
                    (build_a(binding, reg_map), build_b(binding, reg_map)),
                )
            return build2

        def build(binding, reg_map):
            return Instruction(
                mnemonic,
                tuple(b(binding, reg_map) for b in op_builders),
            )
        return build

    def build_low8(binding, reg_map):
        return Instruction(
            mnemonic,
            tuple(b(binding, reg_map) for b in op_builders),
            meta={"needs_low8": (reg_map[low8_parent],)},
        )
    return build_low8


def _static_constraint_error(template) -> str | None:
    """x86 encoding limits checkable against the raw template.

    The only x86 host constraint (SIB scale in 1/2/4/8) depends on
    ``Mem.scale``, which binding never changes — so the whole check
    hoists to compile time and the per-hit path does none.
    """
    for op in template.operands:
        if isinstance(op, Mem) and op.index is not None and \
                op.scale not in (1, 2, 4, 8):
            return f"x86 scale {op.scale} not encodable in {template}"
    return None


#: rule -> compiled emitter.  Rules hash by semantic identity
#: (provenance excluded), so equal rules from different origins share
#: one entry; quarantined rules simply stop being looked up.
_EMITTERS: dict = {}


def get_emitter(rule) -> BoundEmitter:
    """The memoized compiled emitter for ``rule``."""
    emitter = _EMITTERS.get(rule)
    if emitter is None:
        emitter = _EMITTERS[rule] = compile_emitter(rule)
    return emitter
