"""Host (x86) code generation for translation blocks.

The :class:`BlockAssembler` is shared between the TCG backend and the
rule-enhanced translator (paper Section 5, "Register Allocation"): both
obtain host virtual registers for guest registers through it, so guest
values loaded by TCG-translated code are reused by rule-translated code
and vice versa.  Guest registers and flags live in the in-memory CPU
env; they are loaded lazily, cached in host registers for the duration
of the block, and written back (liveness-driven: only dirty ones)
before every block exit.

After lowering, a copy-propagation + dead-mov peephole models TCG's
register-allocator coalescing, and the shared linear-scan allocator
maps virtual registers onto the six usable x86 registers (spills go to
an env scratch area).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host_x86 import isa as x86_isa
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.minic.backend.mach import MachineFunction, TargetInfo, is_vreg
from repro.minic.backend.regalloc import allocate
from repro.dbt.tcg import TcgBlock, TcgCond, TcgOp

# CPU env layout (absolute addresses in the shared flat memory).
ENV_BASE = 0x7F00_0000
_REG_ORDER = tuple(f"r{i}" for i in range(13)) + ("sp", "lr", "pc")
REG_OFFSET = {name: i * 4 for i, name in enumerate(_REG_ORDER)}
FLAG_OFFSET = {name: 0x40 + i * 4 for i, name in enumerate("NZCV")}
NEXT_PC_OFFSET = 0x58
SPILL_BASE = 0x100  # spill slots start here (offsets from ENV_BASE)

EXIT_LABEL = "EXIT"

_COND_TO_CC = {
    TcgCond.EQ: "e", TcgCond.NE: "ne",
    TcgCond.LT: "l", TcgCond.LE: "le", TcgCond.GT: "g", TcgCond.GE: "ge",
    TcgCond.LTU: "b", TcgCond.LEU: "be", TcgCond.GTU: "a", TcgCond.GEU: "ae",
}


def tb_label(guest_addr: int) -> str:
    return f"TB@{guest_addr:#x}"


def env_mem(offset: int) -> Mem:
    return Mem(base=None, disp=ENV_BASE + offset, var="env")


def dbt_target_info() -> TargetInfo:
    # esi/edi first: they cannot serve setcc/movb byte operands, so
    # keeping unconstrained values there leaves the low8-capable
    # registers free for flag materialization.
    return TargetInfo(
        name="dbt-x86",
        alloc_order=("esi", "edi", "eax", "ecx", "edx", "ebx"),
        callee_saved=(),
        caller_saved=(),
        low8_regs=("eax", "ecx", "edx", "ebx"),
        defs=x86_isa.defined_registers,
        uses=x86_isa.used_registers,
        is_branch=x86_isa.is_branch,
        branch_condition=x86_isa.branch_condition,
        is_call=x86_isa.is_call,
        spill_load=lambda reg, off: Instruction(
            "movl", (env_mem(SPILL_BASE + off), Reg(reg))
        ),
        spill_store=lambda reg, off: Instruction(
            "movl", (Reg(reg), env_mem(SPILL_BASE + off))
        ),
    )


@dataclass
class BlockAssembler:
    """Accumulates host instructions for one translation block."""

    instrs: list[Instruction] = field(default_factory=list)
    _cached: dict[str, str] = field(default_factory=dict)
    _dirty: set[str] = field(default_factory=set)
    _counter: int = 0
    _temp_vregs: dict[str, str] = field(default_factory=dict)

    def emit(self, mnemonic: str, *operands, meta=None) -> Instruction:
        instr = Instruction(mnemonic, tuple(operands), meta=meta)
        self.instrs.append(instr)
        return instr

    def new_vreg(self) -> str:
        self._counter += 1
        return f"%v{self._counter}"

    # -- guest-state caching ---------------------------------------------------

    def _env_offset(self, key: str) -> int:
        if key.startswith("flag:"):
            return FLAG_OFFSET[key[5:]]
        return REG_OFFSET[key]

    def guest_vreg(self, key: str, load: bool = True) -> str:
        """Host vreg caching guest register/flag ``key`` (``"r3"`` or
        ``"flag:N"``), loading it from the env on first touch."""
        vreg = self._cached.get(key)
        if vreg is None:
            vreg = self.new_vreg()
            self._cached[key] = vreg
            if load:
                self.emit("movl", env_mem(self._env_offset(key)), Reg(vreg))
        return vreg

    def mark_dirty(self, key: str) -> None:
        self._dirty.add(key)

    def writeback(self) -> None:
        """Flush dirty guest state to the env (kept consistent at block
        boundaries, per QEMU's model)."""
        for key in sorted(self._dirty):
            vreg = self._cached[key]
            self.emit("movl", Reg(vreg), env_mem(self._env_offset(key)))
        self._dirty.clear()

    # -- TCG temps ----------------------------------------------------------------

    def temp_vreg(self, temp: str) -> str:
        vreg = self._temp_vregs.get(temp)
        if vreg is None:
            vreg = self.new_vreg()
            self._temp_vregs[temp] = vreg
        return vreg

    def value_operand(self, value: str | int):
        if isinstance(value, int):
            return Imm(value)
        return Reg(self.temp_vreg(value))

    def value_vreg(self, value: str | int) -> str:
        """Force a value into a vreg (for operands that reject imms)."""
        if isinstance(value, str):
            return self.temp_vreg(value)
        vreg = self.new_vreg()
        self.emit("movl", Imm(value), Reg(vreg))
        return vreg


def lower_tcg_op(assembler: BlockAssembler, op: TcgOp,
                 optimized: bool = False) -> None:
    """Lower one TCG micro-op to host instructions.

    ``optimized`` selects the LLVM-JIT-quality instruction selection
    (three-operand adds via ``leal``), modelling the better isel an
    optimizing backend gets over plain TCG.
    """
    name = op.op
    if name == "movi":
        assembler.emit("movl", Imm(op.a), Reg(assembler.temp_vreg(op.out)))
        return
    if name == "mov":
        assembler.emit(
            "movl", assembler.value_operand(op.a),
            Reg(assembler.temp_vreg(op.out)),
        )
        return
    if optimized and name in ("add", "sub") and isinstance(op.a, str):
        out = Reg(assembler.temp_vreg(op.out))
        base = Reg(assembler.temp_vreg(op.a))
        if isinstance(op.b, int):
            disp = op.b if name == "add" else -op.b
            disp &= 0xFFFFFFFF
            if disp >= 0x8000_0000:
                disp -= 0x1_0000_0000
            assembler.emit("leal", Mem(base=base, disp=disp), out)
            return
        if name == "add":
            index = Reg(assembler.temp_vreg(op.b))
            assembler.emit("leal", Mem(base=base, index=index), out)
            return
    if name in ("add", "sub", "mul", "and", "or", "xor"):
        mnemonic = {
            "add": "addl", "sub": "subl", "mul": "imull",
            "and": "andl", "or": "orl", "xor": "xorl",
        }[name]
        out = Reg(assembler.temp_vreg(op.out))
        assembler.emit("movl", assembler.value_operand(op.a), out)
        assembler.emit(mnemonic, assembler.value_operand(op.b), out)
        return
    if name in ("shl", "shr", "sar"):
        mnemonic = {"shl": "shll", "shr": "shrl", "sar": "sarl"}[name]
        out = Reg(assembler.temp_vreg(op.out))
        assembler.emit("movl", assembler.value_operand(op.a), out)
        if isinstance(op.b, int):
            assembler.emit(mnemonic, Imm(op.b & 31), out)
        else:
            assembler.emit("movl", assembler.value_operand(op.b), Reg("ecx"))
            assembler.emit(mnemonic, Reg("cl"), out)
        return
    if name in ("neg", "not"):
        out = Reg(assembler.temp_vreg(op.out))
        assembler.emit("movl", assembler.value_operand(op.a), out)
        assembler.emit("negl" if name == "neg" else "notl", out)
        return
    if name == "ld_reg":
        cached = assembler.guest_vreg(op.reg)
        assembler.emit("movl", Reg(cached), Reg(assembler.temp_vreg(op.out)))
        return
    if name == "st_reg":
        cached = assembler.guest_vreg(op.reg, load=False)
        assembler.emit("movl", assembler.value_operand(op.a), Reg(cached))
        assembler.mark_dirty(op.reg)
        return
    if name == "ld_flag":
        cached = assembler.guest_vreg(f"flag:{op.flag}")
        assembler.emit("movl", Reg(cached), Reg(assembler.temp_vreg(op.out)))
        return
    if name == "st_flag":
        cached = assembler.guest_vreg(f"flag:{op.flag}", load=False)
        assembler.emit("movl", assembler.value_operand(op.a), Reg(cached))
        assembler.mark_dirty(f"flag:{op.flag}")
        return
    if name == "qemu_ld":
        address = Mem(base=Reg(assembler.value_vreg(op.a)))
        out = Reg(assembler.temp_vreg(op.out))
        assembler.emit("movl" if op.size == 4 else "movzbl", address, out)
        return
    if name == "qemu_st":
        value = assembler.value_vreg(op.b)
        address = Mem(base=Reg(assembler.value_vreg(op.a)))
        if op.size == 4:
            assembler.emit("movl", Reg(value), address)
        else:
            assembler.emit("movb", Reg(f"{value}.b"), address,
                           meta={"needs_low8": (value,)})
        return
    if name == "setcond":
        left = assembler.value_vreg(op.a)
        out_name = assembler.temp_vreg(op.out)
        out = Reg(out_name)
        assembler.emit("cmpl", assembler.value_operand(op.b), Reg(left))
        assembler.emit("movl", Imm(0), out)
        assembler.emit(f"set{_COND_TO_CC[op.cond]}", Reg(f"{out_name}.b"),
                       meta={"needs_low8": (out_name,)})
        return
    if name == "cmp_flags":
        _lower_cmp_flags(assembler, op)
        return
    if name == "movcond":
        out = Reg(assembler.temp_vreg(op.out))
        assembler.emit("movl", assembler.value_operand(op.c), out)
        cond = assembler.value_vreg(op.a)
        then_value = assembler.value_vreg(op.b)
        assembler.emit("cmpl", Imm(0), Reg(cond))
        assembler.emit("cmovne", Reg(then_value), out)
        return
    if name == "brcond":
        left = assembler.value_vreg(op.a)
        assembler.emit("cmpl", assembler.value_operand(op.b), Reg(left))
        assembler.writeback()  # movl does not disturb EFLAGS
        assembler.emit(f"j{_COND_TO_CC[op.cond]}", Label(tb_label(op.taken)))
        assembler.emit("jmp", Label(tb_label(op.fallthrough)))
        return
    if name == "goto_tb":
        assembler.writeback()
        assembler.emit("jmp", Label(tb_label(op.taken)))
        return
    if name == "exit_indirect":
        assembler.emit(
            "movl", assembler.value_operand(op.a), env_mem(NEXT_PC_OFFSET)
        )
        assembler.writeback()
        assembler.emit("jmp", Label(EXIT_LABEL))
        return
    raise ValueError(f"unhandled TCG op {name!r}")


def _lower_cmp_flags(assembler: BlockAssembler, op: TcgOp) -> None:
    """Materialize guest NZCV from one host compare via setcc.

    This mirrors QEMU's condition-code materialization: a single host
    comparison followed by setcc into the cached flag registers.  Note
    the carry-polarity fixups: ARM's C after subtraction is NOT-borrow
    (``setae``) while after addition it is the plain carry (``setb``
    would be borrow — carry-out is CF itself, read with ``setb`` after
    an add since x86 CF then *is* the carry).
    """
    kind = op.flag
    left = assembler.value_vreg(op.a)
    if kind == "sub":
        assembler.emit("cmpl", assembler.value_operand(op.b), Reg(left))
        flag_ccs = (("N", "s"), ("Z", "e"), ("C", "ae"), ("V", "o"))
    elif kind == "add":
        scratch = assembler.new_vreg()
        assembler.emit("movl", Reg(left), Reg(scratch))
        assembler.emit("addl", assembler.value_operand(op.b), Reg(scratch))
        flag_ccs = (("N", "s"), ("Z", "e"), ("C", "b"), ("V", "o"))
    else:
        scratch = assembler.new_vreg()
        assembler.emit("movl", Reg(left), Reg(scratch))
        mnemonic = "andl" if kind == "and" else "xorl"
        assembler.emit(mnemonic, assembler.value_operand(op.b), Reg(scratch))
        flag_ccs = (("N", "s"), ("Z", "e"))
    # setcc must come before any flag-clobbering instruction: emit the
    # zeroing movs via registers only (movl does not touch EFLAGS).
    targets = []
    for guest_flag, cc in flag_ccs:
        vreg = assembler.guest_vreg(f"flag:{guest_flag}", load=False)
        assembler.emit("movl", Imm(0), Reg(vreg))
        targets.append((vreg, cc, guest_flag))
    for vreg, cc, guest_flag in targets:
        assembler.emit(f"set{cc}", Reg(f"{vreg}.b"),
                       meta={"needs_low8": (vreg,)})
        assembler.mark_dirty(f"flag:{guest_flag}")


# -- peephole -------------------------------------------------------------------


def peephole(instrs: list[Instruction]) -> list[Instruction]:
    """Copy propagation + dead-mov elimination over vreg host code.

    Models TCG's register-allocator move coalescing: ``movl %a, %b``
    makes later uses of ``%b`` read ``%a`` (until either is redefined),
    after which unused pure ``movl`` destinations are dropped.  Only
    ``movl`` is touched — everything else may set EFLAGS that a later
    jcc/setcc consumes.
    """
    replacement: dict[str, str] = {}

    def invalidate(name: str) -> None:
        replacement.pop(name, None)
        for key in [k for k, v in replacement.items() if v == name]:
            del replacement[key]

    rewritten: list[Instruction] = []
    for instr in instrs:
        # Never substitute a register the instruction *writes* — on
        # two-address x86 the destination is read-modify-write, and
        # redirecting it would move the result into the wrong register.
        written = set(x86_isa.defined_registers(instr))
        mapping = {}
        for reg in instr.registers():
            base = reg.name[:-2] if reg.name.endswith(".b") else reg.name
            if base in replacement and base not in written:
                mapping[base] = replacement[base]
        if mapping:
            from repro.minic.backend.mach import rewrite_registers

            instr = rewrite_registers(instr, mapping)
            if instr.meta and "needs_low8" in instr.meta:
                instr.meta["needs_low8"] = tuple(
                    mapping.get(name, name)
                    for name in instr.meta["needs_low8"]
                )
        if x86_isa.is_branch(instr):
            rewritten.append(instr)
            replacement.clear()
            continue
        defs = x86_isa.defined_registers(instr)
        if (
            instr.mnemonic == "movl"
            and isinstance(instr.operands[0], Reg)
            and isinstance(instr.operands[1], Reg)
        ):
            src, dst = instr.operands[0].name, instr.operands[1].name
            if src == dst:
                continue  # self-move: drop
            invalidate(dst)
            if is_vreg(dst):
                replacement[dst] = src
            rewritten.append(instr)
            continue
        for reg in defs:
            invalidate(reg)
        rewritten.append(instr)
    return _drop_dead_movs(rewritten)


def _drop_dead_movs(instrs: list[Instruction]) -> list[Instruction]:
    while True:
        used: set[str] = set()
        for instr in instrs:
            for reg in x86_isa.used_registers(instr):
                used.add(reg)
        kept: list[Instruction] = []
        dropped = False
        for instr in instrs:
            if (
                instr.mnemonic == "movl"
                and isinstance(instr.operands[1], Reg)
                and is_vreg(instr.operands[1].name)
                and instr.operands[1].name not in used
            ):
                dropped = True
                continue
            kept.append(instr)
        instrs = kept
        if not dropped:
            return instrs


def finalize_block(assembler: BlockAssembler, guest_start: int
                   ) -> "TranslatedBlock":
    """Peephole + register allocation for an assembled block."""
    code = peephole(assembler.instrs)
    func = MachineFunction(f"tb_{guest_start:#x}", instrs=code)
    allocate(func, dbt_target_info())
    return TranslatedBlock(guest_start, func.instrs)


@dataclass
class TranslatedBlock:
    """Final host code of one translation block."""

    guest_start: int
    host_instrs: list[Instruction]
    guest_length: int = 0
    rule_covered: list[bool] = field(default_factory=list)
    hit_rules: list = field(default_factory=list)  # (rule, length) pairs
    hit_profiles: list = field(default_factory=list)  # ruletrans.HitProfile
    translation_cost: float = 0.0
    exec_count: int = 0
    exec_cycles: float = 0.0  # host cycles attributed to this block (per run)
