"""Rule-enhanced block translation (paper Sections 4-5).

For each guest block, the translator greedily matches the longest
learned rule at every position (via the opcode-mean hash store); guest
instructions covered by a rule are translated by instantiating the
rule's host template directly — bypassing TCG — while the remainder
goes through the normal TCG path.  Register allocation cooperates
through the shared :class:`~repro.dbt.codegen.BlockAssembler` (guest
registers cached in host registers, liveness write-back), and a
lightweight translation-time analysis checks that guest condition codes
the rule does not materialize are dead before applying it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.guest_arm import isa as arm_isa
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, SymImm
from repro.learning.rule import Binding, Rule
from repro.learning.store import RuleMatch, RuleStore
from repro.minic.compile import CompiledProgram
from repro.dbt import codegen
from repro.dbt.codegen import BlockAssembler, tb_label
from repro.dbt.frontend import discover_block, translate_instruction
from repro.dbt.tcg import TcgBlock


class RuleApplicationError(Exception):
    """The bound rule violates a host-ISA constraint (Section 5)."""


#: Why a rule lookup failed to cover a guest position (Table 1's
#: translate-time counterpart; ranked by the obs report CLI).
MISS_NO_MATCH = "no_match"       # store had no matching rule
MISS_FLAGS_LIVE = "flags_live"   # condition-code analysis rejected it
MISS_BINDING = "binding"         # binding touches reserved registers
MISS_APPLY_ERROR = "apply_error"  # host-ISA constraint failed at emit

MISS_REASONS = (
    MISS_NO_MATCH, MISS_FLAGS_LIVE, MISS_BINDING, MISS_APPLY_ERROR,
)

#: Longest guest suffix a translation-gap report captures per miss;
#: matches the longest rules the learner produces, so a gap window is
#: exactly the context an online learner needs to close it.
MAX_GAP_LENGTH = 8


@dataclass(frozen=True)
class HitProfile:
    """The profitability evidence of one rule application.

    Captured at translation time: what the rule actually emitted, and
    what TCG *would have* emitted for the same guest instructions (the
    counterfactual).  The engine combines these with per-block
    execution counts to attribute cycles saved (or wasted) per rule —
    the "did this rule pay for its :data:`~repro.dbt.perf.RULE_LOOKUP_COST`"
    question the evaluation turns on.
    """

    rule: Rule
    length: int                #: guest instructions the rule covered
    rule_host_len: int         #: host template length (emit-cost basis)
    host_cycles: float         #: exec cycles/visit of the rule's host code
    tcg_ops: int               #: TCG micro-ops the rule avoided
    tcg_host_len: int          #: host instrs TCG would have emitted
    tcg_host_cycles: float     #: exec cycles/visit of that TCG host code


@dataclass
class BlockTranslation:
    """Result of translating one guest block with rules."""

    host_instrs: list[Instruction]
    guest_instrs: list[Instruction]
    rule_covered: list[bool]
    hit_rules: list[tuple[Rule, int]]
    tcg_op_count: int
    lookup_attempts: int
    miss_reasons: dict[str, int] = field(default_factory=dict)
    hit_profiles: list[HitProfile] = field(default_factory=list)


def flags_dead_after(rule: Rule, block: list[Instruction],
                     next_index: int) -> bool:
    """Translation-time condition-code analysis (Section 5).

    The rule's host code leaves the guest's env flag slots untouched, so
    every guest flag the rule's guest sequence writes must be dead: not
    read by any following instruction in the block before being written
    again.  Flags are assumed dead across block boundaries (compilers
    set flags immediately before using them).
    """
    pending = set(rule.guest_flags_written)
    if not pending:
        return True
    if rule.has_branch:
        # The rule ends the block; its own branch is the only consumer.
        return True
    for instr in block[next_index:]:
        used = set(arm_isa.used_flags(instr))
        if used & pending:
            return False
        pending -= set(arm_isa.defined_flags(instr))
        if not pending:
            return True
    return True


def instantiate_host(
    rule: Rule,
    binding: Binding,
    assembler: BlockAssembler,
) -> tuple[list[Instruction], str | None]:
    """Materialize the rule's host template into the assembler's vregs.

    Returns (non-branch host instructions appended, taken-branch label
    or None).  Branch instructions are returned to the caller (they
    must go after the block's write-back).
    """
    reg_map: dict[str, str] = {}
    for param, guest_reg in binding.regs.items():
        reg_map[param] = assembler.guest_vreg(guest_reg)
    for temp in rule.temps:
        reg_map[temp] = assembler.new_vreg()

    branch_cc: str | None = None
    emitted: list[Instruction] = []
    for template in rule.host:
        cc = None
        from repro.host_x86 import isa as x86_isa

        if x86_isa.is_branch(template):
            branch_cc = template.mnemonic
            continue  # the caller emits the control transfer
        instr = _bind_instr(template, binding, reg_map)
        _check_host_constraints(instr)
        assembler.instrs.append(instr)
        emitted.append(instr)
    for param in rule.written_params:
        assembler.mark_dirty(binding.regs[param])
    return emitted, branch_cc


def _bind_reg(name: str, binding: Binding, reg_map: dict[str, str]) -> Reg:
    if name.endswith(".b"):
        return Reg(f"{reg_map[name[:-2]]}.b")
    return Reg(reg_map[name])


def _bind_instr(template: Instruction, binding: Binding,
                reg_map: dict[str, str]) -> Instruction:
    operands = []
    meta = None
    for op in template.operands:
        if isinstance(op, Reg):
            bound = _bind_reg(op.name, binding, reg_map)
            if op.name.endswith(".b"):
                parent = bound.name[:-2]
                meta = {"needs_low8": (parent,)}
            operands.append(bound)
        elif isinstance(op, Imm):
            operands.append(op)
        elif isinstance(op, SymImm):
            operands.append(Imm(binding.immediate(op.expr)))
        elif isinstance(op, Mem):
            disp = op.disp
            if op.disp_param is not None:
                disp = (disp + binding.immediate(op.disp_param)) & 0xFFFFFFFF
                if disp >= 0x8000_0000:
                    disp -= 0x1_0000_0000
            operands.append(
                Mem(
                    _bind_reg(op.base.name, binding, reg_map)
                    if op.base else None,
                    _bind_reg(op.index.name, binding, reg_map)
                    if op.index else None,
                    op.scale,
                    disp,
                )
            )
        elif isinstance(op, Label):
            operands.append(op)
        else:
            raise RuleApplicationError(f"cannot bind operand {op!r}")
    return Instruction(template.mnemonic, tuple(operands), meta=meta)


def _check_host_constraints(instr: Instruction) -> None:
    """Host-ISA constraint checks before assembling (Section 5)."""
    from repro.learning.direction import HostConstraintError, \
        x86_host_constraints

    try:
        x86_host_constraints(instr)
    except HostConstraintError as exc:
        raise RuleApplicationError(str(exc)) from exc


def _counterfactual_tcg(
    program: CompiledProgram,
    block: list[Instruction],
    start: int,
    length: int,
    guest_addr: int,
) -> tuple[int, int, float]:
    """What TCG would have produced for ``block[start:start+length]``.

    Translates the covered guest instructions through the normal TCG
    path into a throwaway assembler — same ``is_last`` logic as the
    fallback path, so branch rules are compared against the branch
    lowering they displaced.  Returns ``(tcg_ops, host_instrs,
    host_cycles)``.  Runs once per rule application (translation time,
    never execution time), so the cost is one extra translation of the
    covered window.
    """
    from repro.dbt.perf import instruction_cycles

    shadow = BlockAssembler()
    ops_total = 0
    for j in range(start, start + length):
        tcg = TcgBlock(guest_start=guest_addr)
        tcg.temp_counter = 50_000 + j * 100  # disjoint from the real path
        translate_instruction(
            program, tcg, block[j], guest_addr + 4 * j,
            is_last=j == len(block) - 1,
        )
        ops_total += len(tcg.ops)
        for op in tcg.ops:
            codegen.lower_tcg_op(shadow, op)
    cycles = sum(instruction_cycles(instr) for instr in shadow.instrs)
    return ops_total, len(shadow.instrs), cycles


def translate_block_with_rules(
    program: CompiledProgram,
    start_index: int,
    store: RuleStore | None,
    gap_sink=None,
) -> BlockTranslation:
    """Translate one guest block, using rules where they match.

    ``gap_sink`` (optional) is called with the guest-instruction suffix
    (capped at :data:`MAX_GAP_LENGTH`) at every position the rule table
    failed to cover — the translation-gap capture hook the rule-service
    client uses to drive online learning.
    """
    from repro.obs.trace import get_tracer

    from repro.dbt.perf import instruction_cycles

    block = discover_block(program, start_index)
    guest_addr = 0x8000 + 4 * start_index
    assembler = BlockAssembler()
    covered = [False] * len(block)
    hit_rules: list[tuple[Rule, int]] = []
    hit_profiles: list[HitProfile] = []
    miss_reasons: dict[str, int] = {}
    tcg_ops_total = 0
    lookups = 0
    tracer = get_tracer()

    i = 0
    ended = False
    while i < len(block):
        match: RuleMatch | None = None
        reason: str | None = None
        if store is not None:
            lookups += 1
            match = store.match_at(block, i)
            if match is None:
                reason = MISS_NO_MATCH
            elif not flags_dead_after(
                match.rule, block, i + match.length
            ):
                match, reason = None, MISS_FLAGS_LIVE
            elif not _binding_applicable(match):
                match, reason = None, MISS_BINDING
        if match is not None:
            hit_host_start = len(assembler.instrs)
            try:
                _, branch_cc = instantiate_host(
                    match.rule, match.binding, assembler
                )
            except RuleApplicationError:
                match, reason = None, MISS_APPLY_ERROR
                del assembler.instrs[hit_host_start:]
            else:
                hit_rules.append((match.rule, match.length))
                if tracer.enabled:
                    tracer.event(
                        "dbt.rule.hit", addr=guest_addr + 4 * i,
                        length=match.length,
                    )
                for j in range(i, i + match.length):
                    covered[j] = True
                if match.rule.has_branch:
                    taken = program.addr_of(match.binding.label)
                    fallthrough = guest_addr + 4 * (i + match.length)
                    assembler.writeback()
                    assembler.emit(branch_cc, Label(tb_label(taken)))
                    assembler.emit("jmp", Label(tb_label(fallthrough)))
                    ended = True
                # Profitability evidence: the rule's actual host code
                # (including any block-ending writeback + branch it
                # forced) vs. the TCG counterfactual for the same span.
                hit_host = assembler.instrs[hit_host_start:]
                tcg_ops, tcg_len, tcg_cycles = _counterfactual_tcg(
                    program, block, i, match.length, guest_addr
                )
                hit_profiles.append(HitProfile(
                    rule=match.rule,
                    length=match.length,
                    rule_host_len=len(match.rule.host),
                    host_cycles=sum(
                        instruction_cycles(instr) for instr in hit_host
                    ),
                    tcg_ops=tcg_ops,
                    tcg_host_len=tcg_len,
                    tcg_host_cycles=tcg_cycles,
                ))
                i += match.length
                continue
        if reason is not None:
            miss_reasons[reason] = miss_reasons.get(reason, 0) + 1
            if gap_sink is not None:
                gap_sink(block[i : i + MAX_GAP_LENGTH])
            if tracer.enabled:
                tracer.event(
                    "dbt.rule.miss", addr=guest_addr + 4 * i,
                    reason=reason,
                )
        # TCG path for one guest instruction.
        tcg = TcgBlock(guest_start=guest_addr)
        tcg.temp_counter = 10_000 + i * 100  # keep temp names unique
        translate_instruction(
            program, tcg, block[i], guest_addr + 4 * i,
            is_last=i == len(block) - 1,
        )
        tcg_ops_total += len(tcg.ops)
        for op in tcg.ops:
            codegen.lower_tcg_op(assembler, op)
            if op.op in ("brcond", "goto_tb", "exit_indirect"):
                ended = True
        i += 1
    if not ended:
        assembler.writeback()
        assembler.emit("jmp", Label(tb_label(guest_addr + 4 * len(block))))
    translated = codegen.finalize_block(assembler, guest_addr)
    return BlockTranslation(
        host_instrs=translated.host_instrs,
        guest_instrs=block,
        rule_covered=covered,
        hit_rules=hit_rules,
        tcg_op_count=tcg_ops_total,
        lookup_attempts=lookups,
        miss_reasons=miss_reasons,
        hit_profiles=hit_profiles,
    )


def _binding_applicable(match: RuleMatch) -> bool:
    """Reject bindings touching registers the DBT handles specially."""
    for guest_reg in match.binding.regs.values():
        if guest_reg == "pc":
            return False
    return True
