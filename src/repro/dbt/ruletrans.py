"""Rule-enhanced block translation (paper Sections 4-5).

For each guest block the translator selects a *cover*: which guest
instructions are translated by learned rules (instantiating the rule's
precompiled host emitter, bypassing TCG) and which go through the
normal TCG path.  Two cover policies share all the machinery:

* ``"greedy"`` — the paper's Section 4 scheme: at every position take
  the longest matching rule, back off to TCG for one instruction on a
  miss.  Kept as the ablation baseline and the fallback.
* ``"dp"`` (default) — lowest-cost cover: enumerate every applicable
  rule match at every position (one indexed store walk each), then run
  a dynamic program over positions minimizing modeled execution cycles
  — per-rule costs seeded from the emitter's template cycles and
  refined online by the engine's profitability attribution, TCG costs
  from the memoized per-window counterfactual.  The greedy cover is in
  the DP's search space, so the planned cost is never worse.

Register allocation cooperates through the shared
:class:`~repro.dbt.codegen.BlockAssembler` (guest registers cached in
host registers, liveness write-back), and a lightweight
translation-time analysis checks that guest condition codes the rule
does not materialize are dead before applying it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guest_arm import isa as arm_isa
from repro.isa.instruction import Instruction
from repro.isa.operands import Label
from repro.learning.rule import Binding, Rule
from repro.learning.store import RuleMatch, RuleStore
from repro.minic.compile import CompiledProgram
from repro.obs.profiler import phase
from repro.dbt import codegen
from repro.dbt.codegen import BlockAssembler, tb_label
from repro.dbt.emitter import RuleApplicationError, get_emitter
from repro.dbt.frontend import discover_block, translate_instruction
from repro.dbt.tcg import TcgBlock

__all__ = [
    "RuleApplicationError", "BlockTranslation", "HitProfile",
    "translate_block_with_rules", "instantiate_host", "flags_dead_after",
    "COVER_MODES", "MISS_REASONS", "MAX_GAP_LENGTH",
]

#: Cover policies (``translate_block_with_rules(cover=...)``).
COVER_MODES = ("dp", "greedy")

#: Why a rule lookup failed to cover a guest position (Table 1's
#: translate-time counterpart; ranked by the obs report CLI).
MISS_NO_MATCH = "no_match"       # store had no matching rule
MISS_FLAGS_LIVE = "flags_live"   # condition-code analysis rejected it
MISS_BINDING = "binding"         # binding touches reserved registers
MISS_APPLY_ERROR = "apply_error"  # host-ISA constraint failed at emit
MISS_COST_COVER = "cost_cover"   # a rule matched, but the DP cover
                                 # priced TCG cheaper for this span

MISS_REASONS = (
    MISS_NO_MATCH, MISS_FLAGS_LIVE, MISS_BINDING, MISS_APPLY_ERROR,
    MISS_COST_COVER,
)

#: Longest guest suffix a translation-gap report captures per miss;
#: matches the longest rules the learner produces, so a gap window is
#: exactly the context an online learner needs to close it.
MAX_GAP_LENGTH = 8


@dataclass(frozen=True)
class HitProfile:
    """The profitability evidence of one rule application.

    Captured at translation time: what the rule actually emitted, and
    what TCG *would have* emitted for the same guest instructions (the
    counterfactual).  The engine combines these with per-block
    execution counts to attribute cycles saved (or wasted) per rule —
    the "did this rule pay for its :data:`~repro.dbt.perf.RULE_LOOKUP_COST`"
    question the evaluation turns on.
    """

    rule: Rule
    length: int                #: guest instructions the rule covered
    rule_host_len: int         #: host template length (emit-cost basis)
    host_cycles: float         #: exec cycles/visit of the rule's host code
    #: Exec cycles/visit of the template *body* alone — excludes the
    #: context-dependent surroundings ``host_cycles`` keeps (first-touch
    #: guest-register loads, block-ending write-back and branches).
    #: This is what refines the DP cover's per-rule cost online: it is
    #: a property of the rule, not of where the hit happened, so every
    #: engine converges to the same plan regardless of history.
    body_cycles: float
    tcg_ops: int               #: TCG micro-ops the rule avoided
    tcg_host_len: int          #: host instrs TCG would have emitted
    tcg_host_cycles: float     #: exec cycles/visit of that TCG host code


@dataclass
class BlockTranslation:
    """Result of translating one guest block with rules."""

    host_instrs: list[Instruction]
    guest_instrs: list[Instruction]
    rule_covered: list[bool]
    hit_rules: list[tuple[Rule, int]]
    tcg_op_count: int
    lookup_attempts: int
    miss_reasons: dict[str, int] = field(default_factory=dict)
    hit_profiles: list[HitProfile] = field(default_factory=list)
    cover_mode: str = "greedy"
    #: Modeled exec cycles of the chosen cover plan (DP objective).
    planned_cost: float = 0.0
    #: Same model priced over the greedy cover (DP's upper bound).
    planned_cost_greedy: float = 0.0


def flags_dead_after(rule: Rule, block: list[Instruction],
                     next_index: int) -> bool:
    """Translation-time condition-code analysis (Section 5).

    The rule's host code leaves the guest's env flag slots untouched, so
    every guest flag the rule's guest sequence writes must be dead: not
    read by any following instruction in the block before being written
    again.  Flags are assumed dead across block boundaries (compilers
    set flags immediately before using them).
    """
    pending = set(rule.guest_flags_written)
    if not pending:
        return True
    if rule.has_branch:
        # The rule ends the block; its own branch is the only consumer.
        return True
    for instr in block[next_index:]:
        used = set(arm_isa.used_flags(instr))
        if used & pending:
            return False
        pending -= set(arm_isa.defined_flags(instr))
        if not pending:
            return True
    return True


def instantiate_host(
    rule: Rule,
    binding: Binding,
    assembler: BlockAssembler,
) -> tuple[list[Instruction], str | None]:
    """Materialize the rule's host template into the assembler's vregs.

    Returns (non-branch host instructions appended, taken-branch label
    or None).  Branch instructions are returned to the caller (they
    must go after the block's write-back).

    The per-hit work is one precompiled
    :class:`~repro.dbt.emitter.BoundEmitter` call: operand dispatch,
    host-constraint checks and the host-ISA import all happened once at
    install time.
    """
    return get_emitter(rule)(binding, assembler)


#: Attribute on the program holding { (window signature, ends_block)
#: -> (tcg_ops, host_len, host_cycles) }.  The TCG counterfactual for
#: a covered window depends only on the window's instructions and
#: whether it ends its block (addresses only rename branch labels), so
#: profitability evidence is computed once per distinct window — not
#: per rule application.  Living on the program object, the cache has
#: exactly the program's lifetime (CompiledProgram is unhashable, so a
#: WeakKeyDictionary cannot key it).
_COUNTERFACTUAL_ATTR = "_tcg_counterfactuals"


def _counterfactual_tcg(
    program: CompiledProgram,
    block: list[Instruction],
    start: int,
    length: int,
    guest_addr: int,
) -> tuple[int, int, float]:
    """What TCG would have produced for ``block[start:start+length]``.

    Translates the covered guest instructions through the normal TCG
    path into a throwaway assembler — same ``is_last`` logic as the
    fallback path, so branch rules are compared against the branch
    lowering they displaced.  Returns ``(tcg_ops, host_instrs,
    host_cycles)``.  Memoized per (program, window, ends-block): the
    first application of a window pays one extra translation, repeats
    are a dict hit.
    """
    from repro.dbt.perf import instruction_cycles

    cache = getattr(program, _COUNTERFACTUAL_ATTR, None)
    if cache is None:
        cache = {}
        try:
            object.__setattr__(program, _COUNTERFACTUAL_ATTR, cache)
        except (AttributeError, TypeError):  # slotted/frozen program
            pass
    ends_block = start + length == len(block)
    key = (
        tuple(str(instr) for instr in block[start : start + length]),
        ends_block,
    )
    cached = cache.get(key)
    if cached is not None:
        return cached
    shadow = BlockAssembler()
    ops_total = 0
    for j in range(start, start + length):
        tcg = TcgBlock(guest_start=guest_addr)
        tcg.temp_counter = 50_000 + j * 100  # disjoint from the real path
        translate_instruction(
            program, tcg, block[j], guest_addr + 4 * j,
            is_last=j == len(block) - 1,
        )
        ops_total += len(tcg.ops)
        for op in tcg.ops:
            codegen.lower_tcg_op(shadow, op)
    cycles = sum(instruction_cycles(instr) for instr in shadow.instrs)
    result = (ops_total, len(shadow.instrs), cycles)
    cache[key] = result
    return result


# -- lowest-cost cover planning ------------------------------------------------


@dataclass
class _PositionInfo:
    """Everything the planner learned about one block position."""

    #: Applicable matches (bindable + flags dead + binding admissible +
    #: emitter statically valid), longest first.
    applicable: list[RuleMatch] = field(default_factory=list)
    #: Miss reason when nothing is applicable (None = a rule applies).
    reject_reason: str | None = None


def _survey_positions(
    block: list[Instruction],
    store: RuleStore,
) -> list[_PositionInfo]:
    """One store walk per position: all applicable matches, plus the
    reason the position would miss (for gap capture / Table-1 ranking).
    """
    infos = []
    for i in range(len(block)):
        info = _PositionInfo()
        raw = store.matches_at(block, i)
        if not raw:
            info.reject_reason = MISS_NO_MATCH
        for match in raw:
            if not flags_dead_after(match.rule, block, i + match.length):
                reason = MISS_FLAGS_LIVE
            elif not _binding_applicable(match):
                reason = MISS_BINDING
            elif not get_emitter(match.rule).static_ok:
                reason = MISS_APPLY_ERROR
            else:
                info.applicable.append(match)
                continue
            if info.reject_reason is None:
                info.reject_reason = reason
        infos.append(info)
    return infos


def _rule_plan_cost(match: RuleMatch, cost_hint) -> float:
    """Modeled exec cycles/visit of applying ``match``.

    Seeded from the precompiled emitter's static template cycles;
    ``cost_hint`` (the engine's per-rule profitability attribution)
    overrides with the measured average once the rule has real hits.
    """
    if cost_hint is not None:
        measured = cost_hint(match.rule)
        if measured is not None:
            return measured
    return get_emitter(match.rule).template_cycles


def _plan_cover(
    block: list[Instruction],
    infos: list[_PositionInfo],
    tcg_cost,
    rule_cost,
) -> tuple[list[RuleMatch | None], float, float]:
    """Minimum-modeled-cycle cover by dynamic programming.

    ``best[i]`` is the cheapest cost of translating ``block[i:]``;
    at each position the choice is one TCG-translated instruction or
    any applicable rule match.  Rules win ties (coverage is worth at
    least as much as the model says: covered instructions also skip
    TCG translation work the exec-cycle objective does not price).

    Returns ``(choice, planned, planned_greedy)`` where ``choice[i]``
    is the match to apply at ``i`` (None = TCG) and the costs price the
    DP and greedy covers under the same model.
    """
    n = len(block)
    best = [0.0] * (n + 1)
    choice: list[RuleMatch | None] = [None] * (n + 1)
    for i in range(n - 1, -1, -1):
        cost = tcg_cost(i) + best[i + 1]
        pick = None
        for match in infos[i].applicable:  # longest first
            c = rule_cost(match) + best[i + match.length]
            # Strict improvement replaces; a tie is only taken to
            # upgrade TCG to a rule (among equal rules, longest wins).
            if c < cost - 1e-9 or (pick is None and c <= cost + 1e-9):
                cost, pick = min(cost, c), match
        best[i] = cost
        choice[i] = pick
    # Price the greedy trajectory under the same model (the DP's upper
    # bound, traced for the cover ablation).
    greedy = 0.0
    i = 0
    while i < n:
        applicable = infos[i].applicable
        if applicable:
            match = applicable[0]  # longest-first, same tie-break
            greedy += rule_cost(match)
            i += match.length
        else:
            greedy += tcg_cost(i)
            i += 1
    return choice, best[0], greedy


def translate_block_with_rules(
    program: CompiledProgram,
    start_index: int,
    store: RuleStore | None,
    gap_sink=None,
    cover: str = "dp",
    cost_hint=None,
) -> BlockTranslation:
    """Translate one guest block, using rules where they match.

    ``gap_sink`` (optional) is called with the guest-instruction suffix
    (capped at :data:`MAX_GAP_LENGTH`) at every position the rule table
    failed to cover — the translation-gap capture hook the rule-service
    client uses to drive online learning.

    ``cover`` selects the policy (:data:`COVER_MODES`); ``cost_hint``
    is an optional ``rule -> measured cycles/visit | None`` callback
    (the engine's profitability ledgers) refining the DP cost model.
    """
    if cover not in COVER_MODES:
        raise ValueError(
            f"unknown cover mode {cover!r}; expected one of {COVER_MODES}"
        )
    if cover == "dp" and store is not None and len(store):
        return _translate_dp(program, start_index, store, gap_sink,
                             cost_hint)
    return _translate_greedy(program, start_index, store, gap_sink)


def _translate_greedy(
    program: CompiledProgram,
    start_index: int,
    store: RuleStore | None,
    gap_sink=None,
) -> BlockTranslation:
    """The paper's greedy longest-first cover (Section 4)."""
    from repro.obs.trace import get_tracer

    from repro.dbt.perf import instruction_cycles

    block = discover_block(program, start_index)
    guest_addr = 0x8000 + 4 * start_index
    assembler = BlockAssembler()
    covered = [False] * len(block)
    hit_rules: list[tuple[Rule, int]] = []
    hit_profiles: list[HitProfile] = []
    miss_reasons: dict[str, int] = {}
    tcg_ops_total = 0
    lookups = 0
    tracer = get_tracer()

    i = 0
    ended = False
    # Greedy interleaves matching with emission, so the whole loop is
    # one emit phase (the DP path separates match/cover/emit).
    with phase("dbt.emit"):
        while i < len(block):
            match: RuleMatch | None = None
            reason: str | None = None
            if store is not None:
                lookups += 1
                match = store.match_at(block, i)
                if match is None:
                    reason = MISS_NO_MATCH
                elif not flags_dead_after(
                    match.rule, block, i + match.length
                ):
                    match, reason = None, MISS_FLAGS_LIVE
                elif not _binding_applicable(match):
                    match, reason = None, MISS_BINDING
            if match is not None:
                hit_host_start = len(assembler.instrs)
                try:
                    emitted, branch_cc = instantiate_host(
                        match.rule, match.binding, assembler
                    )
                except RuleApplicationError:
                    match, reason = None, MISS_APPLY_ERROR
                    del assembler.instrs[hit_host_start:]
                else:
                    ended |= _commit_hit(
                        program, block, assembler, match, i, guest_addr,
                        emitted, branch_cc, covered, hit_rules,
                        hit_profiles, tracer, instruction_cycles,
                        hit_host_start,
                    )
                    i += match.length
                    continue
            if reason is not None:
                miss_reasons[reason] = miss_reasons.get(reason, 0) + 1
                if gap_sink is not None:
                    gap_sink(block[i : i + MAX_GAP_LENGTH])
                if tracer.enabled:
                    tracer.event(
                        "dbt.rule.miss", addr=guest_addr + 4 * i,
                        reason=reason,
                    )
            ops, instr_ended = _emit_tcg_instruction(
                program, block, assembler, i, guest_addr
            )
            tcg_ops_total += ops
            ended |= instr_ended
            i += 1
        if not ended:
            assembler.writeback()
            assembler.emit(
                "jmp", Label(tb_label(guest_addr + 4 * len(block)))
            )
        translated = codegen.finalize_block(assembler, guest_addr)
    return BlockTranslation(
        host_instrs=translated.host_instrs,
        guest_instrs=block,
        rule_covered=covered,
        hit_rules=hit_rules,
        tcg_op_count=tcg_ops_total,
        lookup_attempts=lookups,
        miss_reasons=miss_reasons,
        hit_profiles=hit_profiles,
        cover_mode="greedy",
    )


def _translate_dp(
    program: CompiledProgram,
    start_index: int,
    store: RuleStore,
    gap_sink=None,
    cost_hint=None,
) -> BlockTranslation:
    """Lowest-cost cover: survey all matches, DP-plan, then emit."""
    from repro.obs.trace import get_tracer

    from repro.dbt.perf import instruction_cycles

    block = discover_block(program, start_index)
    guest_addr = 0x8000 + 4 * start_index
    n = len(block)
    tracer = get_tracer()

    with phase("dbt.match"):
        infos = _survey_positions(block, store)
    lookups = n  # one indexed walk per position

    def tcg_cost(i: int) -> float:
        _, _, cycles = _counterfactual_tcg(program, block, i, 1, guest_addr)
        return cycles

    def rule_cost(match: RuleMatch) -> float:
        return _rule_plan_cost(match, cost_hint)

    with phase("dbt.cover"):
        choice, planned, planned_greedy = _plan_cover(
            block, infos, tcg_cost, rule_cost
        )

    assembler = BlockAssembler()
    covered = [False] * n
    hit_rules: list[tuple[Rule, int]] = []
    hit_profiles: list[HitProfile] = []
    miss_reasons: dict[str, int] = {}
    tcg_ops_total = 0
    ended = False
    i = 0
    with phase("dbt.emit"):
        while i < n:
            match = choice[i]
            apply_failed = False
            if match is not None:
                hit_host_start = len(assembler.instrs)
                try:
                    emitted, branch_cc = instantiate_host(
                        match.rule, match.binding, assembler
                    )
                except RuleApplicationError:
                    # Statically-valid emitters cannot fail on x86, but
                    # keep the greedy path's per-hit safety net.
                    del assembler.instrs[hit_host_start:]
                    apply_failed = True
                else:
                    ended |= _commit_hit(
                        program, block, assembler, match, i, guest_addr,
                        emitted, branch_cc, covered, hit_rules,
                        hit_profiles, tracer, instruction_cycles,
                        hit_host_start,
                    )
                    i += match.length
                    continue
            info = infos[i]
            if apply_failed:
                reason = MISS_APPLY_ERROR
            elif info.applicable:
                # The cover chose TCG over a live rule on price:
                # traceable, but not a learning gap — the store
                # already has a rule.
                reason = MISS_COST_COVER
            else:
                reason = info.reject_reason or MISS_NO_MATCH
            miss_reasons[reason] = miss_reasons.get(reason, 0) + 1
            if gap_sink is not None and reason != MISS_COST_COVER:
                gap_sink(block[i : i + MAX_GAP_LENGTH])
            if tracer.enabled:
                tracer.event(
                    "dbt.rule.miss", addr=guest_addr + 4 * i,
                    reason=reason,
                )
            ops, instr_ended = _emit_tcg_instruction(
                program, block, assembler, i, guest_addr
            )
            tcg_ops_total += ops
            ended |= instr_ended
            i += 1
        if not ended:
            assembler.writeback()
            assembler.emit("jmp", Label(tb_label(guest_addr + 4 * n)))
        translated = codegen.finalize_block(assembler, guest_addr)
    if tracer.enabled:
        tracer.event(
            "dbt.cover",
            addr=guest_addr,
            mode="dp",
            guest_len=n,
            segments=len(hit_rules),
            planned_cost=round(planned, 3),
            greedy_cost=round(planned_greedy, 3),
        )
    return BlockTranslation(
        host_instrs=translated.host_instrs,
        guest_instrs=block,
        rule_covered=covered,
        hit_rules=hit_rules,
        tcg_op_count=tcg_ops_total,
        lookup_attempts=lookups,
        miss_reasons=miss_reasons,
        hit_profiles=hit_profiles,
        cover_mode="dp",
        planned_cost=planned,
        planned_cost_greedy=planned_greedy,
    )


def _emit_tcg_instruction(
    program: CompiledProgram,
    block: list[Instruction],
    assembler: BlockAssembler,
    i: int,
    guest_addr: int,
) -> tuple[int, bool]:
    """TCG path for one guest instruction; returns (ops, block_ended)."""
    tcg = TcgBlock(guest_start=guest_addr)
    tcg.temp_counter = 10_000 + i * 100  # keep temp names unique
    translate_instruction(
        program, tcg, block[i], guest_addr + 4 * i,
        is_last=i == len(block) - 1,
    )
    ended = False
    for op in tcg.ops:
        codegen.lower_tcg_op(assembler, op)
        if op.op in ("brcond", "goto_tb", "exit_indirect"):
            ended = True
    return len(tcg.ops), ended


def _commit_hit(
    program, block, assembler, match, i, guest_addr, emitted, branch_cc,
    covered, hit_rules, hit_profiles, tracer, instruction_cycles,
    hit_host_start,
) -> bool:
    """Book-keeping shared by both covers after a successful emit."""
    hit_rules.append((match.rule, match.length))
    if tracer.enabled:
        tracer.event(
            "dbt.rule.hit", addr=guest_addr + 4 * i, length=match.length,
        )
    for j in range(i, i + match.length):
        covered[j] = True
    ended = False
    if match.rule.has_branch:
        taken = program.addr_of(match.binding.label)
        fallthrough = guest_addr + 4 * (i + match.length)
        assembler.writeback()
        assembler.emit(branch_cc, Label(tb_label(taken)))
        assembler.emit("jmp", Label(tb_label(fallthrough)))
        ended = True
    # Profitability evidence: the rule's actual host code (including
    # any block-ending writeback + branch it forced) vs. the memoized
    # TCG counterfactual for the same span.
    hit_host = assembler.instrs[hit_host_start:]
    tcg_ops, tcg_len, tcg_cycles = _counterfactual_tcg(
        program, block, i, match.length, guest_addr
    )
    hit_profiles.append(HitProfile(
        rule=match.rule,
        length=match.length,
        rule_host_len=len(match.rule.host),
        host_cycles=sum(
            instruction_cycles(instr) for instr in hit_host
        ),
        body_cycles=sum(
            instruction_cycles(instr) for instr in emitted
        ),
        tcg_ops=tcg_ops,
        tcg_host_len=tcg_len,
        tcg_host_cycles=tcg_cycles,
    ))
    return ended


def _binding_applicable(match: RuleMatch) -> bool:
    """Reject bindings touching registers the DBT handles specially."""
    for guest_reg in match.binding.regs.values():
        if guest_reg == "pc":
            return False
    return True
