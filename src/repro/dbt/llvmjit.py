"""HQEMU-style LLVM-JIT backend model.

Translates TCG ops through an optimizing middle-end (copy propagation,
redundant guest-register load elimination, dead store/temp elimination)
before the normal lowering.  This produces better host code than plain
TCG — but the optimizer is charged a large modeled translation cost,
reproducing the paper's observation that LLVM JIT loses on short
workloads and barely breaks even on long ones (Figures 8/9).

Like the real HQEMU backend, it cannot remove the guest register file
from memory (values still cross block boundaries through the env) and
it has no cross-block scope, which caps its steady-state advantage.
"""

from __future__ import annotations

from repro.dbt.tcg import TcgBlock, TcgOp


def optimize_tcg(ops: list[TcgOp]) -> list[TcgOp]:
    """The -O2-ish TCG-level pipeline."""
    ops = _copy_propagate(ops)
    ops = _eliminate_redundant_reg_loads(ops)
    ops = _dead_code(ops)
    return ops


def _copy_propagate(ops: list[TcgOp]) -> list[TcgOp]:
    """Forward-propagate mov/movi temps (straight-line: blocks only)."""
    values: dict[str, str | int] = {}
    result: list[TcgOp] = []
    for op in ops:
        def subst(value):
            seen = set()
            while isinstance(value, str) and value in values and \
                    value not in seen:
                seen.add(value)
                value = values[value]
            return value

        new_a = subst(op.a)
        new_b = subst(op.b)
        new_c = subst(op.c)
        if new_a is not op.a or new_b is not op.b or new_c is not op.c:
            from dataclasses import replace

            op = replace(op, a=new_a, b=new_b, c=new_c)
        if op.out is not None:
            values.pop(op.out, None)
            stale = [k for k, v in values.items() if v == op.out]
            for key in stale:
                del values[key]
            if op.op == "mov":
                values[op.out] = op.a
            elif op.op == "movi":
                values[op.out] = op.a
        result.append(op)
    return result


def _eliminate_redundant_reg_loads(ops: list[TcgOp]) -> list[TcgOp]:
    """Fuse repeated ld_reg of the same guest register into movs (which
    copy propagation then removes)."""
    current: dict[str, str] = {}
    result: list[TcgOp] = []
    for op in ops:
        if op.op == "ld_reg":
            known = current.get(op.reg)
            if known is not None:
                result.append(TcgOp("mov", out=op.out, a=known))
                continue
            current[op.reg] = op.out
            result.append(op)
            continue
        if op.op == "st_reg" and isinstance(op.a, str):
            current[op.reg] = op.a
        elif op.op == "st_reg":
            current.pop(op.reg, None)
        if op.out is not None:
            for reg, temp in list(current.items()):
                if temp == op.out:
                    del current[reg]
        result.append(op)
    return _copy_propagate(result)


_SIDE_EFFECTS = ("st_reg", "st_flag", "qemu_st", "brcond", "goto_tb",
                 "exit_indirect", "qemu_ld", "cmp_flags")


def _dead_code(ops: list[TcgOp]) -> list[TcgOp]:
    """Drop pure ops with unused results and overwritten env stores."""
    # Dead env stores: a st_reg/st_flag overwritten later in the block
    # with no intervening read or block exit.
    live_ops: list[TcgOp] = []
    last_store: dict[tuple[str, str], int] = {}
    killed: set[int] = set()
    for index, op in enumerate(ops):
        if op.op in ("st_reg", "st_flag"):
            key = (op.op, op.reg or op.flag)
            previous = last_store.get(key)
            if previous is not None:
                killed.add(previous)
            last_store[key] = index
        elif op.op in ("ld_reg", "ld_flag"):
            last_store.pop(("st_reg" if op.op == "ld_reg" else "st_flag",
                            op.reg or op.flag), None)
    live_ops = [op for i, op in enumerate(ops) if i not in killed]

    # Dead temps.
    while True:
        used: set[str] = set()
        for op in live_ops:
            used.update(op.temps_used())
        kept = []
        dropped = False
        for op in live_ops:
            if op.op not in _SIDE_EFFECTS and op.out is not None and \
                    op.out not in used:
                dropped = True
                continue
            kept.append(op)
        live_ops = kept
        if not dropped:
            return live_ops
