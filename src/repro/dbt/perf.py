"""Deterministic cycle model.

We cannot measure wall-clock hardware speedups from a Python-hosted
simulator (see DESIGN.md), so relative performance is computed from a
per-instruction-class cycle model plus a per-backend translation cost
model.  The *shape* of the paper's results — rules beat QEMU on both
short and long workloads, LLVM JIT loses badly on short ones — follows
from measured dynamic instruction counts; only the constants here are
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host_x86 import isa as x86_isa
from repro.isa.instruction import Instruction
from repro.isa.operands import Mem

# Execution cycles per host instruction class.
_CYCLES_MEM = 3.0
_CYCLES_MUL = 3.0
_CYCLES_DIV = 20.0
_CYCLES_BRANCH = 1.5
_CYCLES_ALU = 1.0

# Translation-cost model (same cycle units).
TCG_OP_COST = 60.0          # per TCG micro-op (QEMU's translator)
RULE_LOOKUP_COST = 120.0    # per match_at position (hash probe + longest-
                            # first sequence comparisons, Section 4)
INDEXED_LOOKUP_COST = 15.0  # per match position under the mnemonic-trie
                            # index: one trie walk enumerates every
                            # candidate length, no per-length hash
                            # probes (BENCH_translate.json calibrates
                            # the ratio against the measured speedup)
RULE_EMIT_COST = 30.0       # per host instruction emitted from a rule
LLVMJIT_BLOCK_COST = 2_000.0  # per block: LLVM pass-manager overhead
LLVMJIT_OP_COST = 220.0     # per TCG op fed to LLVM (IR build + opt + isel)
DISPATCH_COST = 12.0        # per block dispatch in the execution loop


def lookup_cost(matcher: str | None) -> float:
    """Per-position rule-lookup cost for a store's matcher mode."""
    return INDEXED_LOOKUP_COST if matcher == "indexed" \
        else RULE_LOOKUP_COST


def instruction_cycles(instr: Instruction) -> float:
    """Execution cost of one host instruction."""
    name = instr.mnemonic
    if name == "idivl":
        return _CYCLES_DIV
    if name == "imull":
        return _CYCLES_MUL
    if name == "leal":
        return _CYCLES_ALU  # address arithmetic, not a memory access
    if x86_isa.is_branch(instr):
        return _CYCLES_BRANCH
    if any(isinstance(op, Mem) for op in instr.operands):
        return _CYCLES_MEM
    return _CYCLES_ALU


@dataclass
class PerfModel:
    """Accumulates execution and translation cycles for one run."""

    exec_cycles: float = 0.0
    translation_cycles: float = 0.0
    dispatches: int = 0

    @property
    def total_cycles(self) -> float:
        return (self.exec_cycles + self.translation_cycles
                + self.dispatches * DISPATCH_COST)


def speedup(baseline: PerfModel, candidate: PerfModel) -> float:
    """Speedup of ``candidate`` over ``baseline`` (>1 is faster)."""
    return baseline.total_cycles / candidate.total_cycles
