"""TCG-like micro-op IR (the QEMU tiny code generator model).

The ARM frontend translates each guest instruction into several TCG
ops; the x86 backend lowers each TCG op into one or more host
instructions.  This two-step, per-op translation is what produces
QEMU's characteristic code expansion (paper Section 1) that learned
rules bypass.

Temps are strings ``%tN``; guest registers and guest condition flags
live in the in-memory CPU env and are accessed via ``ld_reg``/
``st_reg`` / ``ld_flag``/``st_flag`` (the backend caches them in host
registers within a block and writes dirty values back at block ends,
like QEMU's TCG register allocator).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TcgCond(enum.Enum):
    """Comparison conditions for setcond/brcond."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"  # signed
    LE = "le"
    GT = "gt"
    GE = "ge"
    LTU = "ltu"
    LEU = "leu"
    GTU = "gtu"
    GEU = "geu"


#: TCG op names and their operand shapes (documented in TcgOp).
OP_NAMES = (
    "movi", "mov", "add", "sub", "mul", "and", "or", "xor", "shl", "shr",
    "sar", "neg", "not", "ld_reg", "st_reg", "ld_flag", "st_flag",
    "qemu_ld", "qemu_st", "setcond", "movcond", "cmp_flags", "brcond",
    "goto_tb", "exit_indirect",
)


@dataclass
class TcgOp:
    """One TCG micro-op.

    Operand conventions (``out`` is the defined temp):

    ========== ===========================================================
    op         fields used
    ========== ===========================================================
    movi       out, imm
    mov        out, a
    add..sar   out, a, b            (binary ALU; b may be temp or imm)
    neg/not    out, a
    ld_reg     out, reg             (guest register -> temp)
    st_reg     reg, a
    ld_flag    out, flag            (guest N/Z/C/V -> temp, value 0/1)
    st_flag    flag, a
    qemu_ld    out, a (address), size
    qemu_st    a (address), b (value), size
    setcond    out, cond, a, b      (out = a <cond> b ? 1 : 0)
    movcond    out, a (0/1 temp), b (then), c (else)
    cmp_flags  flag (kind: "sub"/"add"/"and"/"xor"), a, b —
               compute the guest NZCV for ``a <kind> b`` into the env
               flags (lowered to one host compare + setcc sequence,
               like QEMU's materialized condition codes)
    brcond     cond, a, b, taken, fallthrough   (guest addresses)
    goto_tb    taken                (guest address)
    exit_indirect  a                (temp holding the guest target addr)
    ========== ===========================================================
    """

    op: str
    out: str | None = None
    a: str | int | None = None
    b: str | int | None = None
    c: str | int | None = None
    reg: str | None = None
    flag: str | None = None
    cond: TcgCond | None = None
    size: int = 4
    taken: int | None = None
    fallthrough: int | None = None

    def temps_used(self) -> tuple[str, ...]:
        used = []
        for value in (self.a, self.b, self.c):
            if isinstance(value, str):
                used.append(value)
        return tuple(used)

    def __str__(self) -> str:
        if self.op == "movi":
            return f"movi {self.out}, {self.a}"
        if self.op == "ld_reg":
            return f"{self.out} = env.{self.reg}"
        if self.op == "st_reg":
            return f"env.{self.reg} = {self.a}"
        if self.op == "ld_flag":
            return f"{self.out} = env.flag_{self.flag}"
        if self.op == "st_flag":
            return f"env.flag_{self.flag} = {self.a}"
        if self.op == "qemu_ld":
            return f"{self.out} = ld{self.size} [{self.a}]"
        if self.op == "qemu_st":
            return f"st{self.size} [{self.a}] = {self.b}"
        if self.op == "setcond":
            return f"{self.out} = {self.a} {self.cond.value} {self.b}"
        if self.op == "brcond":
            return (f"brcond {self.a} {self.cond.value} {self.b} "
                    f"-> {self.taken:#x} / {self.fallthrough:#x}")
        if self.op == "goto_tb":
            return f"goto_tb {self.taken:#x}"
        if self.op == "exit_indirect":
            return f"exit_indirect {self.a}"
        if self.out is not None and self.b is not None:
            return f"{self.out} = {self.a} {self.op} {self.b}"
        if self.out is not None:
            return f"{self.out} = {self.op} {self.a}"
        return self.op


@dataclass
class TcgBlock:
    """The TCG ops of one translation block."""

    guest_start: int  # guest address
    ops: list[TcgOp] = field(default_factory=list)
    temp_counter: int = 0

    def new_temp(self) -> str:
        self.temp_counter += 1
        return f"%t{self.temp_counter}"

    def emit(self, **kwargs) -> TcgOp:
        op = TcgOp(**kwargs)
        self.ops.append(op)
        return op

    def dump(self) -> str:
        return "\n".join(str(op) for op in self.ops)
