"""The DBT system: a QEMU substitute plus the rule-enhanced translator.

Layers:

* :mod:`repro.dbt.machine` — concrete machine state (registers, flags,
  byte-addressed memory) shared by all interpreters.
* :mod:`repro.dbt.direct` — direct guest/host emulators (no
  translation); the correctness oracle for everything above.
* :mod:`repro.dbt.tcg` / :mod:`repro.dbt.frontend` /
  :mod:`repro.dbt.backend_x86` — the QEMU-like translator: ARM decoder
  to TCG micro-ops to x86 host code, with the guest register file kept
  in an in-memory CPU env.
* :mod:`repro.dbt.ruletrans` — the paper's contribution: rule-enhanced
  translation cooperating with TCG.
* :mod:`repro.dbt.llvmjit` — the HQEMU-style optimizing backend model.
* :mod:`repro.dbt.engine` — translation cache, block chaining, host
  execution, dynamic statistics.
* :mod:`repro.dbt.perf` — the cycle model turning instruction counts
  into relative performance.
"""

from repro.dbt.machine import ConcreteState
from repro.dbt.direct import run_arm_program, run_x86_program

__all__ = [
    "ConcreteState",
    "run_arm_program",
    "run_x86_program",
]
