"""ARM guest frontend: decode a guest block into TCG ops.

One guest instruction becomes several TCG micro-ops — register loads,
the operation itself, eager NZCV computation for flag-setting
instructions, register/flag stores — reproducing the expansion that
makes QEMU-translated code slower than rule-translated code.
"""

from __future__ import annotations

from repro.guest_arm.isa import CONDITION_FLAGS, split_mnemonic
from repro.guest_arm.registers import register_number
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg
from repro.minic.compile import CompiledProgram
from repro.dbt.tcg import TcgBlock, TcgCond

_WORD = 4


class FrontendError(Exception):
    """The guest instruction cannot be translated."""


def discover_block(program: CompiledProgram, start_index: int
                   ) -> list[Instruction]:
    """Guest basic block: instructions up to and including the first
    branch (QEMU's translation unit)."""
    from repro.guest_arm import isa as arm_isa

    block: list[Instruction] = []
    index = start_index
    label_positions = set(program.labels.values())
    while index < len(program.code):
        instr = program.code[index]
        block.append(instr)
        if arm_isa.is_branch(instr):
            break
        index += 1
        if index in label_positions:
            break  # a label starts a new block (join point)
    return block


def translate_block(program: CompiledProgram, start_index: int
                    ) -> tuple[TcgBlock, list[Instruction]]:
    """Translate the guest block at ``start_index`` into TCG ops."""
    instrs = discover_block(program, start_index)
    guest_addr = 0x8000 + _WORD * start_index
    block = TcgBlock(guest_start=guest_addr)
    for offset, instr in enumerate(instrs):
        translate_instruction(
            program, block, instr, guest_addr + _WORD * offset,
            is_last=offset == len(instrs) - 1,
        )
    if not block.ops or block.ops[-1].op not in (
        "brcond", "goto_tb", "exit_indirect"
    ):
        # Fall-through into the next block (split at a label).
        block.emit(op="goto_tb", taken=guest_addr + _WORD * len(instrs))
    return block, instrs


def _label_addr(program: CompiledProgram, label: Label) -> int:
    return program.addr_of(label.name)


def translate_instruction(
    program: CompiledProgram,
    block: TcgBlock,
    instr: Instruction,
    pc: int,
    is_last: bool,
) -> None:
    base, cond, sets_flags = split_mnemonic(instr.mnemonic)
    ops = instr.operands

    if base == "b":
        taken = _label_addr(program, ops[0])
        if cond is None:
            block.emit(op="goto_tb", taken=taken)
            return
        _emit_cond_branch(block, cond, taken, pc + _WORD)
        return
    if base == "bl":
        ret = block.new_temp()
        block.emit(op="movi", out=ret, a=pc + _WORD)
        block.emit(op="st_reg", reg="lr", a=ret)
        block.emit(op="goto_tb", taken=_label_addr(program, ops[0]))
        return
    if base == "bx":
        target = block.new_temp()
        block.emit(op="ld_reg", out=target, reg=ops[0].name)
        block.emit(op="exit_indirect", a=target)
        return

    if base == "push":
        _emit_push(block, ops)
        return
    if base == "pop":
        _emit_pop(block, ops)
        return

    if base in ("ldr", "ldrb"):
        addr = _emit_address(block, ops[1])
        out = block.new_temp()
        block.emit(op="qemu_ld", out=out, a=addr,
                   size=4 if base == "ldr" else 1)
        block.emit(op="st_reg", reg=ops[0].name, a=out)
        return
    if base in ("str", "strb"):
        value = block.new_temp()
        block.emit(op="ld_reg", out=value, reg=ops[0].name)
        addr = _emit_address(block, ops[1])
        block.emit(op="qemu_st", a=addr, b=value,
                   size=4 if base == "str" else 1)
        return

    if base in ("cmp", "cmn", "tst", "teq"):
        left = block.new_temp()
        block.emit(op="ld_reg", out=left, reg=ops[0].name)
        right = _emit_operand2(block, ops[1])
        kind = {"cmp": "sub", "cmn": "add", "tst": "and", "teq": "xor"}[base]
        block.emit(op="cmp_flags", flag=kind, a=left, b=right)
        return

    # Data-processing instructions (possibly predicated: QEMU turns
    # conditional execution into a movcond select).
    _emit_data(block, base, ops, sets_flags, pred_cond=cond)


def _emit_operand2(block: TcgBlock, op) -> str | int:
    if isinstance(op, Imm):
        return op.value & 0xFFFFFFFF
    if isinstance(op, Reg):
        temp = block.new_temp()
        block.emit(op="ld_reg", out=temp, reg=op.name)
        return temp
    if isinstance(op, ShiftedReg):
        value = block.new_temp()
        block.emit(op="ld_reg", out=value, reg=op.reg.name)
        shifted = block.new_temp()
        tcg_op = {"lsl": "shl", "lsr": "shr", "asr": "sar"}[op.shift]
        block.emit(op=tcg_op, out=shifted, a=value, b=op.amount)
        return shifted
    raise FrontendError(f"bad operand {op!r}")


def _emit_address(block: TcgBlock, mem: Mem) -> str:
    addr = block.new_temp()
    if mem.base is not None:
        block.emit(op="ld_reg", out=addr, reg=mem.base.name)
    else:
        block.emit(op="movi", out=addr, a=0)
    if mem.index is not None:
        index = block.new_temp()
        block.emit(op="ld_reg", out=index, reg=mem.index.name)
        if mem.scale != 1:
            scaled = block.new_temp()
            block.emit(op="shl", out=scaled, a=index,
                       b=mem.scale.bit_length() - 1)
            index = scaled
        summed = block.new_temp()
        block.emit(op="add", out=summed, a=addr, b=index)
        addr = summed
    if mem.disp:
        disp = block.new_temp()
        block.emit(op="add", out=disp, a=addr, b=mem.disp & 0xFFFFFFFF)
        addr = disp
    return addr


def _emit_data(block: TcgBlock, base: str, ops, sets_flags: bool,
               pred_cond: str | None = None) -> None:
    dest: Reg = ops[0]
    # Predication: evaluate the condition from env flags *before* the
    # operation (our corpus has no flag-setting predicated instrs).
    cond_value = None
    if pred_cond is not None:
        cond_value = emit_condition_value(block, pred_cond)

    out, flag_emitter = _emit_data_value(block, base, ops)

    if cond_value is not None:
        old = block.new_temp()
        block.emit(op="ld_reg", out=old, reg=dest.name)
        selected = block.new_temp()
        block.emit(op="movcond", out=selected, a=cond_value, b=out, c=old)
        block.emit(op="st_reg", reg=dest.name, a=selected)
        return
    block.emit(op="st_reg", reg=dest.name, a=out)
    if sets_flags and flag_emitter is not None:
        flag_emitter()


def _emit_data_value(block: TcgBlock, base: str, ops):
    """Compute a data instruction's result temp; returns
    (temp, flag-update thunk)."""
    if base in ("mov", "mvn"):
        if isinstance(ops[1], Imm):
            out = block.new_temp()
            value = ops[1].value & 0xFFFFFFFF
            if base == "mvn":
                value = ~value & 0xFFFFFFFF
            block.emit(op="movi", out=out, a=value)
        else:
            source = _emit_operand2(block, ops[1])
            out = block.new_temp()
            if base == "mvn":
                block.emit(op="not", out=out, a=source)
            else:
                block.emit(op="mov", out=out, a=source)
        return out, lambda: _emit_nz_flags(block, out)

    if base in ("lsl", "lsr", "asr"):
        value = block.new_temp()
        block.emit(op="ld_reg", out=value, reg=ops[1].name)
        tcg_op = {"lsl": "shl", "lsr": "shr", "asr": "sar"}[base]
        if isinstance(ops[2], Imm):
            amount: str | int = ops[2].value & 31
        else:
            raw = block.new_temp()
            block.emit(op="ld_reg", out=raw, reg=ops[2].name)
            amount = block.new_temp()
            block.emit(op="and", out=amount, a=raw, b=0xFF)
        out = block.new_temp()
        block.emit(op=tcg_op, out=out, a=value, b=amount)
        return out, lambda: _emit_nz_flags(block, out)

    left = block.new_temp()
    block.emit(op="ld_reg", out=left, reg=ops[1].name)
    right = _emit_operand2(block, ops[2])
    out = block.new_temp()
    if base == "add":
        block.emit(op="add", out=out, a=left, b=right)
        return out, lambda: _emit_add_flags(block, left, right, out)
    if base == "sub":
        block.emit(op="sub", out=out, a=left, b=right)
        return out, lambda: _emit_sub_flags(block, left, right, out)
    if base == "rsb":
        block.emit(op="sub", out=out, a=right, b=left)
        return out, lambda: _emit_sub_flags(block, right, left, out)
    if base == "mul":
        block.emit(op="mul", out=out, a=left, b=right)
        return out, lambda: _emit_nz_flags(block, out)
    if base in ("and", "orr", "eor", "bic"):
        if base == "bic":
            inverted = block.new_temp()
            block.emit(op="not", out=inverted, a=right)
            right = inverted
        tcg_op = {"and": "and", "orr": "or", "eor": "xor", "bic": "and"}[base]
        block.emit(op=tcg_op, out=out, a=left, b=right)
        return out, lambda: _emit_nz_flags(block, out)
    raise FrontendError(f"unhandled guest opcode {base!r}")


def _emit_push(block: TcgBlock, ops) -> None:
    regs = sorted((op.name for op in ops if isinstance(op, Reg)),
                  key=register_number)
    sp = block.new_temp()
    block.emit(op="ld_reg", out=sp, reg="sp")
    new_sp = block.new_temp()
    block.emit(op="sub", out=new_sp, a=sp, b=_WORD * len(regs))
    block.emit(op="st_reg", reg="sp", a=new_sp)
    for i, name in enumerate(regs):
        value = block.new_temp()
        block.emit(op="ld_reg", out=value, reg=name)
        slot = block.new_temp()
        block.emit(op="add", out=slot, a=new_sp, b=_WORD * i)
        block.emit(op="qemu_st", a=slot, b=value, size=_WORD)


def _emit_pop(block: TcgBlock, ops) -> None:
    regs = sorted((op.name for op in ops if isinstance(op, Reg)),
                  key=register_number)
    sp = block.new_temp()
    block.emit(op="ld_reg", out=sp, reg="sp")
    pc_temp = None
    for i, name in enumerate(regs):
        slot = block.new_temp()
        block.emit(op="add", out=slot, a=sp, b=_WORD * i)
        value = block.new_temp()
        block.emit(op="qemu_ld", out=value, a=slot, size=_WORD)
        if name == "pc":
            pc_temp = value
        else:
            block.emit(op="st_reg", reg=name, a=value)
    new_sp = block.new_temp()
    block.emit(op="add", out=new_sp, a=sp, b=_WORD * len(regs))
    block.emit(op="st_reg", reg="sp", a=new_sp)
    if pc_temp is not None:
        block.emit(op="exit_indirect", a=pc_temp)


# -- flags -------------------------------------------------------------------


def _emit_nz_flags(block: TcgBlock, result: str) -> None:
    n = block.new_temp()
    block.emit(op="setcond", out=n, cond=TcgCond.LT, a=result, b=0)
    block.emit(op="st_flag", flag="N", a=n)
    z = block.new_temp()
    block.emit(op="setcond", out=z, cond=TcgCond.EQ, a=result, b=0)
    block.emit(op="st_flag", flag="Z", a=z)


def _emit_add_flags(block: TcgBlock, a, b, result: str) -> None:
    _emit_nz_flags(block, result)
    carry = block.new_temp()
    block.emit(op="setcond", out=carry, cond=TcgCond.LTU, a=result, b=a)
    block.emit(op="st_flag", flag="C", a=carry)
    _emit_overflow(block, a, b, result, for_sub=False)


def _emit_sub_flags(block: TcgBlock, a, b, result: str) -> None:
    _emit_nz_flags(block, result)
    no_borrow = block.new_temp()
    block.emit(op="setcond", out=no_borrow, cond=TcgCond.GEU, a=a, b=b)
    block.emit(op="st_flag", flag="C", a=no_borrow)
    _emit_overflow(block, a, b, result, for_sub=True)


def _emit_overflow(block: TcgBlock, a, b, result: str, for_sub: bool) -> None:
    ab = block.new_temp()
    block.emit(op="xor", out=ab, a=a, b=b)
    if not for_sub:
        flipped = block.new_temp()
        block.emit(op="not", out=flipped, a=ab)
        ab = flipped
    ares = block.new_temp()
    block.emit(op="xor", out=ares, a=a, b=result)
    meet = block.new_temp()
    block.emit(op="and", out=meet, a=ab, b=ares)
    v = block.new_temp()
    block.emit(op="setcond", out=v, cond=TcgCond.LT, a=meet, b=0)
    block.emit(op="st_flag", flag="V", a=v)


# -- condition branches ---------------------------------------------------------


def _emit_cond_branch(block: TcgBlock, cond: str, taken: int,
                      fallthrough: int) -> None:
    """Materialize the ARM condition from env flags, then brcond."""
    value = emit_condition_value(block, cond)
    block.emit(op="brcond", cond=TcgCond.NE, a=value, b=0,
               taken=taken, fallthrough=fallthrough)


def emit_condition_value(block: TcgBlock, cond: str) -> str:
    """A 0/1 temp holding an ARM condition evaluated from env flags."""
    flags = {}
    for name in CONDITION_FLAGS[cond]:
        temp = block.new_temp()
        block.emit(op="ld_flag", out=temp, flag=name)
        flags[name] = temp

    def bool_not(temp: str) -> str:
        out = block.new_temp()
        block.emit(op="xor", out=out, a=temp, b=1)
        return out

    def bool_and(x: str, y: str) -> str:
        out = block.new_temp()
        block.emit(op="and", out=out, a=x, b=y)
        return out

    def bool_or(x: str, y: str) -> str:
        out = block.new_temp()
        block.emit(op="or", out=out, a=x, b=y)
        return out

    def bool_xor(x: str, y: str) -> str:
        out = block.new_temp()
        block.emit(op="xor", out=out, a=x, b=y)
        return out

    if cond == "eq":
        return flags["Z"]
    if cond == "ne":
        return bool_not(flags["Z"])
    if cond == "mi":
        return flags["N"]
    if cond == "pl":
        return bool_not(flags["N"])
    if cond == "hs":
        return flags["C"]
    if cond == "lo":
        return bool_not(flags["C"])
    if cond == "hi":
        return bool_and(flags["C"], bool_not(flags["Z"]))
    if cond == "ls":
        return bool_or(bool_not(flags["C"]), flags["Z"])
    if cond == "ge":
        return bool_not(bool_xor(flags["N"], flags["V"]))
    if cond == "lt":
        return bool_xor(flags["N"], flags["V"])
    if cond == "gt":
        return bool_and(bool_not(flags["Z"]),
                        bool_not(bool_xor(flags["N"], flags["V"])))
    if cond == "le":
        return bool_or(flags["Z"], bool_xor(flags["N"], flags["V"]))
    raise FrontendError(f"unknown condition {cond!r}")
