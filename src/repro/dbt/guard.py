"""Differential execution guard: self-healing rule quarantine.

Learned rules are *verified* before installation (symbolic execution +
SAT/BDD, Section 3.3), so in the paper's threat model they cannot be
wrong.  In practice a deployed DBT also has to survive everything the
proof did not cover: a corrupted rule file on disk, a stale cache
replaying verdicts across a semantics change, or a bug in the
rule-translation glue itself.  The guard is the engine's last line of
defense for exactly those cases.

Mechanism (opt-in via ``DBTEngine(guard=GuardPolicy(...))``, rules mode
only): for a sampled subset of dispatches of rule-covered blocks, the
engine executes the rule-translated block and a TCG-only reference
translation of the same guest block on *copies* of the machine state
and compares the results — the next guest pc and every memory effect
(guest registers and flags live in env memory, so this covers the full
architectural state).  On divergence the block's rules are quarantined
(removed from the :class:`~repro.learning.store.RuleStore`), every
cached block built from them is invalidated, and the block is
retranslated — degrading those blocks to baseline TCG correctness at
baseline TCG speed instead of computing a wrong answer.

The comparison deliberately ignores two things:

* the host's own registers/flags — both translations are free to use
  scratch state differently; only guest-visible effects matter;
* the guest condition-code slots (``ENV_BASE + FLAG_OFFSET``) — a rule
  may legitimately skip materializing guest flags its translation-time
  liveness analysis (Section 5) proved dead, while TCG always writes
  them.  A rule that *wrongly* skips live flags still diverges later,
  at the first block whose visible outputs consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dbt.codegen import (
    ENV_BASE,
    FLAG_OFFSET,
    NEXT_PC_OFFSET,
    REG_OFFSET,
)
from repro.dbt.machine import ConcreteState

#: Byte addresses of the guest condition-code slots in the CPU env.
FLAG_SLOT_ADDRS = frozenset(
    ENV_BASE + offset + i
    for offset in FLAG_OFFSET.values()
    for i in range(4)
)

#: The guest-architectural bytes of the CPU env: the register file and
#: the next-pc slot.  Everything else at/above ``ENV_BASE`` (the flag
#: slots, TCG's spill area) is translator-private scratch that the two
#: translations legitimately use differently.
ARCH_ENV_ADDRS = frozenset(
    ENV_BASE + offset + i
    for offset in list(REG_OFFSET.values()) + [NEXT_PC_OFFSET]
    for i in range(4)
)


@dataclass(frozen=True)
class GuardPolicy:
    """When to differentially check a rule-covered block.

    ``check_first`` checks the first N dispatches of every such block
    (cheap: most rules are exercised on their very first execution);
    ``check_interval > 0`` additionally re-checks every Nth dispatch
    thereafter, which catches data-dependent divergence at a bounded
    steady-state cost.
    """

    check_first: int = 1
    check_interval: int = 0

    def should_check(self, exec_count: int) -> bool:
        """``exec_count`` is the block's dispatch count so far (the
        pending dispatch is number ``exec_count + 1``)."""
        if exec_count < self.check_first:
            return True
        if self.check_interval > 0:
            return (exec_count + 1) % self.check_interval == 0
        return False


@dataclass
class GuardStats:
    checks: int = 0
    divergences: int = 0
    rules_quarantined: int = 0
    blocks_invalidated: int = 0
    retranslations: int = 0

    def count_fields(self) -> dict:
        return {
            "checks": self.checks,
            "divergences": self.divergences,
            "rules_quarantined": self.rules_quarantined,
            "blocks_invalidated": self.blocks_invalidated,
            "retranslations": self.retranslations,
        }


def copy_state(state: ConcreteState) -> ConcreteState:
    """Independent copy for a trial execution."""
    return ConcreteState(
        regs=dict(state.regs),
        flags=dict(state.flags),
        memory=dict(state.memory),
    )


def _visible_memory(state: ConcreteState) -> dict[int, int]:
    """Memory normalized for comparison: zero bytes are identical to
    absent bytes; of the CPU env only the guest-architectural bytes
    participate (see module docstring)."""
    return {
        addr: value
        for addr, value in state.memory.items()
        if value != 0 and (addr < ENV_BASE or addr in ARCH_ENV_ADDRS)
    }


def states_agree(trial: ConcreteState, reference: ConcreteState) -> bool:
    """Do two post-block states agree on every guest-visible effect?"""
    return _visible_memory(trial) == _visible_memory(reference)
