"""Concrete machine state for the interpreters and the DBT host CPU."""

from __future__ import annotations

from dataclasses import dataclass, field

_MASK = 0xFFFFFFFF


@dataclass
class ConcreteState:
    """Registers/flags/byte-addressed memory over Python ints.

    Implements the :class:`repro.isa.state.MachineState` protocol for
    the :class:`repro.isa.alu.ConcreteALU`.
    """

    regs: dict[str, int] = field(default_factory=dict)
    flags: dict[str, int] = field(default_factory=dict)
    memory: dict[int, int] = field(default_factory=dict)

    def get_reg(self, name: str) -> int:
        return self.regs.get(name, 0)

    def set_reg(self, name: str, value: int) -> None:
        self.regs[name] = value & _MASK

    def get_flag(self, name: str) -> int:
        return self.flags.get(name, 0)

    def set_flag(self, name: str, value: int) -> None:
        self.flags[name] = value & 1

    def load(self, addr: int, size: int) -> int:
        addr &= _MASK
        memory = self.memory
        if size == 4:
            return (
                memory.get(addr, 0)
                | memory.get(addr + 1, 0) << 8
                | memory.get(addr + 2, 0) << 16
                | memory.get(addr + 3, 0) << 24
            )
        if size == 1:
            return memory.get(addr, 0)
        value = 0
        for i in range(size):
            value |= memory.get(addr + i, 0) << (8 * i)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        addr &= _MASK
        memory = self.memory
        if size == 4:
            memory[addr] = value & 0xFF
            memory[addr + 1] = (value >> 8) & 0xFF
            memory[addr + 2] = (value >> 16) & 0xFF
            memory[addr + 3] = (value >> 24) & 0xFF
            return
        if size == 1:
            memory[addr] = value & 0xFF
            return
        for i in range(size):
            memory[addr + i] = (value >> (8 * i)) & 0xFF
