"""Closure-compiled host-code execution (the engine's fast path).

The generic path interprets every host instruction through the
single-source semantics; that is the oracle, but it costs several
dict/dataclass hops per instruction.  For the benchmark harness each
translated block is instead *pre-compiled* into a list of Python
closures — one per host instruction — operating directly on the
register/flag/memory dicts.  A differential test
(``tests/dbt/test_fastexec.py``) checks the two paths instruction by
instruction.

Each step closure returns ``None`` to fall through or a branch-target
token (the ``Label`` name) when a (taken) control transfer occurs.
"""

from __future__ import annotations

from typing import Callable

from repro.host_x86.isa import CMOV_OPS, CONDITION_FLAGS, JCC_OPS, SETCC_OPS
from repro.host_x86.registers import is_low8, parent_of
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg

_MASK = 0xFFFFFFFF

Step = Callable[[dict, dict, dict], str | None]


class FastExecError(Exception):
    """An instruction form the fast path cannot compile."""


def _reader(op) -> Callable[[dict, dict, dict], int]:
    """Closure producing a 32-bit source value."""
    if isinstance(op, Imm):
        value = op.value & _MASK
        return lambda regs, flags, mem: value
    if isinstance(op, Reg):
        if is_low8(op.name):
            parent = parent_of(op.name)
            return lambda regs, flags, mem: regs.get(parent, 0) & 0xFF
        name = op.name
        return lambda regs, flags, mem: regs.get(name, 0)
    if isinstance(op, Mem):
        addr = _addr_fn(op)
        return lambda regs, flags, mem: (
            mem.get((a := addr(regs)), 0)
            | mem.get(a + 1, 0) << 8
            | mem.get(a + 2, 0) << 16
            | mem.get(a + 3, 0) << 24
        )
    raise FastExecError(f"unreadable operand {op!r}")


def _byte_reader(op) -> Callable[[dict, dict, dict], int]:
    if isinstance(op, Imm):
        value = op.value & 0xFF
        return lambda regs, flags, mem: value
    if isinstance(op, Reg):
        parent = parent_of(op.name)
        return lambda regs, flags, mem: regs.get(parent, 0) & 0xFF
    if isinstance(op, Mem):
        addr = _addr_fn(op)
        return lambda regs, flags, mem: mem.get(addr(regs), 0)
    raise FastExecError(f"unreadable byte operand {op!r}")


def _addr_fn(mem_op: Mem) -> Callable[[dict], int]:
    base = mem_op.base.name if mem_op.base else None
    index = mem_op.index.name if mem_op.index else None
    scale = mem_op.scale
    disp = mem_op.disp & _MASK
    if base and index:
        return lambda regs: (
            regs.get(base, 0) + regs.get(index, 0) * scale + disp
        ) & _MASK
    if base:
        return lambda regs: (regs.get(base, 0) + disp) & _MASK
    if index:
        return lambda regs: (regs.get(index, 0) * scale + disp) & _MASK
    return lambda regs: disp


def _writer(op) -> Callable[[dict, dict, dict, int], None]:
    """Closure storing a 32-bit value into a destination."""
    if isinstance(op, Reg):
        if is_low8(op.name):
            parent = parent_of(op.name)

            def write_low8(regs, flags, mem, value):
                regs[parent] = (regs.get(parent, 0) & 0xFFFFFF00) | (
                    value & 0xFF
                )

            return write_low8
        name = op.name
        def write_reg(regs, flags, mem, value):
            regs[name] = value
        return write_reg
    if isinstance(op, Mem):
        addr = _addr_fn(op)

        def write_mem(regs, flags, mem, value):
            a = addr(regs)
            mem[a] = value & 0xFF
            mem[a + 1] = (value >> 8) & 0xFF
            mem[a + 2] = (value >> 16) & 0xFF
            mem[a + 3] = (value >> 24) & 0xFF

        return write_mem
    raise FastExecError(f"unwritable operand {op!r}")


def _byte_writer(op) -> Callable[[dict, dict, dict, int], None]:
    if isinstance(op, Reg):
        parent = parent_of(op.name)

        def write_low8(regs, flags, mem, value):
            regs[parent] = (regs.get(parent, 0) & 0xFFFFFF00) | (value & 0xFF)

        return write_low8
    if isinstance(op, Mem):
        addr = _addr_fn(op)

        def write_mem(regs, flags, mem, value):
            mem[addr(regs)] = value & 0xFF

        return write_mem
    raise FastExecError(f"unwritable byte operand {op!r}")


def _cond_fn(cc: str) -> Callable[[dict], bool]:
    if cc == "o":
        return lambda flags: flags.get("OF", 0) == 1
    if cc == "no":
        return lambda flags: flags.get("OF", 0) == 0
    if cc == "e":
        return lambda flags: flags.get("ZF", 0) == 1
    if cc == "ne":
        return lambda flags: flags.get("ZF", 0) == 0
    if cc == "s":
        return lambda flags: flags.get("SF", 0) == 1
    if cc == "ns":
        return lambda flags: flags.get("SF", 0) == 0
    if cc == "b":
        return lambda flags: flags.get("CF", 0) == 1
    if cc == "ae":
        return lambda flags: flags.get("CF", 0) == 0
    if cc == "a":
        return lambda flags: flags.get("CF", 0) == 0 and \
            flags.get("ZF", 0) == 0
    if cc == "be":
        return lambda flags: flags.get("CF", 0) == 1 or \
            flags.get("ZF", 0) == 1
    if cc == "l":
        return lambda flags: flags.get("SF", 0) != flags.get("OF", 0)
    if cc == "ge":
        return lambda flags: flags.get("SF", 0) == flags.get("OF", 0)
    if cc == "g":
        return lambda flags: flags.get("ZF", 0) == 0 and \
            flags.get("SF", 0) == flags.get("OF", 0)
    if cc == "le":
        return lambda flags: flags.get("ZF", 0) == 1 or \
            flags.get("SF", 0) != flags.get("OF", 0)
    raise FastExecError(f"unknown condition {cc!r}")


def compile_instruction(instr: Instruction) -> Step:
    """Compile one host instruction into a step closure."""
    name = instr.mnemonic
    ops = instr.operands

    if name == "movl":
        read = _reader(ops[0])
        write = _writer(ops[1])

        def step_movl(regs, flags, mem):
            write(regs, flags, mem, read(regs, flags, mem))
        return step_movl

    if name in ("addl", "subl", "imull", "andl", "orl", "xorl"):
        read_src = _reader(ops[0])
        read_dst = _reader(ops[1])
        write = _writer(ops[1])
        if name == "addl":
            def step_addl(regs, flags, mem):
                dst = read_dst(regs, flags, mem)
                src = read_src(regs, flags, mem)
                result = (dst + src) & _MASK
                write(regs, flags, mem, result)
                flags["SF"] = result >> 31
                flags["ZF"] = 1 if result == 0 else 0
                flags["CF"] = 1 if result < dst else 0
                flags["OF"] = ((dst ^ result) & ~(dst ^ src)) >> 31 & 1
            return step_addl
        if name == "subl":
            def step_subl(regs, flags, mem):
                dst = read_dst(regs, flags, mem)
                src = read_src(regs, flags, mem)
                result = (dst - src) & _MASK
                write(regs, flags, mem, result)
                flags["SF"] = result >> 31
                flags["ZF"] = 1 if result == 0 else 0
                flags["CF"] = 1 if dst < src else 0
                flags["OF"] = ((dst ^ src) & (dst ^ result)) >> 31 & 1
            return step_subl
        if name == "imull":
            def step_imull(regs, flags, mem):
                dst = read_dst(regs, flags, mem)
                src = read_src(regs, flags, mem)
                sd = dst - (1 << 32) if dst >> 31 else dst
                ss = src - (1 << 32) if src >> 31 else src
                product = sd * ss
                write(regs, flags, mem, product & _MASK)
                overflow = 0 if -(1 << 31) <= product < (1 << 31) else 1
                flags["OF"] = overflow
                flags["CF"] = overflow
            return step_imull
        pyop = {"andl": "&", "orl": "|", "xorl": "^"}[name]

        def step_logic(regs, flags, mem, _op=pyop):
            dst = read_dst(regs, flags, mem)
            src = read_src(regs, flags, mem)
            if _op == "&":
                result = dst & src
            elif _op == "|":
                result = dst | src
            else:
                result = dst ^ src
            write(regs, flags, mem, result)
            flags["SF"] = result >> 31
            flags["ZF"] = 1 if result == 0 else 0
            flags["CF"] = 0
            flags["OF"] = 0
        return step_logic

    if name in ("cmpl", "testl"):
        read_src = _reader(ops[0])
        read_dst = _reader(ops[1])
        if name == "cmpl":
            def step_cmpl(regs, flags, mem):
                dst = read_dst(regs, flags, mem)
                src = read_src(regs, flags, mem)
                result = (dst - src) & _MASK
                flags["SF"] = result >> 31
                flags["ZF"] = 1 if result == 0 else 0
                flags["CF"] = 1 if dst < src else 0
                flags["OF"] = ((dst ^ src) & (dst ^ result)) >> 31 & 1
            return step_cmpl

        def step_testl(regs, flags, mem):
            result = read_dst(regs, flags, mem) & read_src(regs, flags, mem)
            flags["SF"] = result >> 31
            flags["ZF"] = 1 if result == 0 else 0
            flags["CF"] = 0
            flags["OF"] = 0
        return step_testl

    if name == "leal":
        addr = _addr_fn(ops[0])
        write = _writer(ops[1])

        def step_leal(regs, flags, mem):
            write(regs, flags, mem, addr(regs))
        return step_leal

    if name in ("movzbl", "movsbl"):
        read = _byte_reader(ops[0])
        write = _writer(ops[1])
        signed = name == "movsbl"

        def step_movxbl(regs, flags, mem):
            value = read(regs, flags, mem)
            if signed and value & 0x80:
                value |= 0xFFFFFF00
            write(regs, flags, mem, value)
        return step_movxbl

    if name == "movb":
        read = _byte_reader(ops[0])
        write = _byte_writer(ops[1])

        def step_movb(regs, flags, mem):
            write(regs, flags, mem, read(regs, flags, mem))
        return step_movb

    if name in ("negl", "notl", "incl", "decl"):
        read = _reader(ops[0])
        write = _writer(ops[0])
        if name == "negl":
            def step_negl(regs, flags, mem):
                value = read(regs, flags, mem)
                result = (-value) & _MASK
                write(regs, flags, mem, result)
                flags["SF"] = result >> 31
                flags["ZF"] = 1 if result == 0 else 0
                flags["CF"] = 1 if 0 < value else 0
                flags["OF"] = (value & result) >> 31 & 1
            return step_negl
        if name == "notl":
            def step_notl(regs, flags, mem):
                write(regs, flags, mem, ~read(regs, flags, mem) & _MASK)
            return step_notl
        delta = 1 if name == "incl" else -1

        def step_incdec(regs, flags, mem, _d=delta):
            value = read(regs, flags, mem)
            result = (value + _d) & _MASK
            write(regs, flags, mem, result)
            flags["SF"] = result >> 31
            flags["ZF"] = 1 if result == 0 else 0
            if _d == 1:
                flags["OF"] = 1 if value == 0x7FFFFFFF else 0
            else:
                flags["OF"] = 1 if value == 0x80000000 else 0
        return step_incdec

    if name in ("shll", "shrl", "sarl"):
        return _compile_shift(name, ops)

    if name in SETCC_OPS:
        cond = _cond_fn(name[3:])
        write = _byte_writer(ops[0])

        def step_setcc(regs, flags, mem):
            write(regs, flags, mem, 1 if cond(flags) else 0)
        return step_setcc

    if name in CMOV_OPS:
        cond = _cond_fn(name[4:])
        read = _reader(ops[0])
        write = _writer(ops[1])

        def step_cmov(regs, flags, mem):
            if cond(flags):
                write(regs, flags, mem, read(regs, flags, mem))
        return step_cmov

    if name in JCC_OPS and isinstance(ops[0], Label):
        cond = _cond_fn(name[1:])
        target = ops[0].name

        def step_jcc(regs, flags, mem):
            return target if cond(flags) else None
        return step_jcc

    if name == "jmp" and isinstance(ops[0], Label):
        target = ops[0].name

        def step_jmp(regs, flags, mem):
            return target
        return step_jmp

    if name == "cltd":
        def step_cltd(regs, flags, mem):
            regs["edx"] = _MASK if regs.get("eax", 0) >> 31 else 0
        return step_cltd

    if name == "idivl":
        read = _reader(ops[0])

        def step_idivl(regs, flags, mem):
            lo = regs.get("eax", 0)
            hi = regs.get("edx", 0)
            dividend = (hi << 32) | lo
            if dividend >> 63:
                dividend -= 1 << 64
            divisor = read(regs, flags, mem)
            if divisor >> 31:
                divisor -= 1 << 32
            if divisor == 0:
                regs["eax"] = _MASK
                regs["edx"] = lo
                return None
            quotient = abs(dividend) // abs(divisor)
            if (dividend < 0) != (divisor < 0):
                quotient = -quotient
            remainder = dividend - quotient * divisor
            regs["eax"] = quotient & _MASK
            regs["edx"] = remainder & _MASK
        return step_idivl

    raise FastExecError(f"fast path cannot compile {instr}")


def _compile_shift(name: str, ops) -> Step:
    dest_read = _reader(ops[1])
    dest_write = _writer(ops[1])
    if isinstance(ops[0], Imm):
        count = ops[0].value & 31

        def step_shift_imm(regs, flags, mem):
            if count == 0:
                return None
            value = dest_read(regs, flags, mem)
            if name == "shll":
                result = (value << count) & _MASK
                last_out = (value >> (32 - count)) & 1
            elif name == "shrl":
                result = value >> count
                last_out = (value >> (count - 1)) & 1
            else:
                signed = value - (1 << 32) if value >> 31 else value
                result = (signed >> count) & _MASK
                last_out = (signed >> (count - 1)) & 1
            dest_write(regs, flags, mem, result)
            flags["SF"] = result >> 31
            flags["ZF"] = 1 if result == 0 else 0
            flags["CF"] = last_out
        return step_shift_imm

    def step_shift_cl(regs, flags, mem):
        count = regs.get("ecx", 0) & 31
        if count == 0:
            return None
        value = dest_read(regs, flags, mem)
        if name == "shll":
            result = (value << count) & _MASK
            last_out = (value >> (32 - count)) & 1
        elif name == "shrl":
            result = value >> count
            last_out = (value >> (count - 1)) & 1
        else:
            signed = value - (1 << 32) if value >> 31 else value
            result = (signed >> count) & _MASK
            last_out = (signed >> (count - 1)) & 1
        dest_write(regs, flags, mem, result)
        flags["SF"] = result >> 31
        flags["ZF"] = 1 if result == 0 else 0
        flags["CF"] = last_out
    return step_shift_cl


def compile_block(instrs: list[Instruction]) -> list[Step]:
    """Compile a translated block's host code into step closures."""
    return [compile_instruction(instr) for instr in instrs]
