"""The DBT execution engine: translation cache, dispatch loop, stats.

Three backends share the engine (paper Section 6):

* ``"qemu"``    — the baseline: every guest instruction through TCG,
* ``"rules"``   — the paper's system: learned rules + TCG fallback,
* ``"llvmjit"`` — the HQEMU-style comparison: TCG ops through an
  optimizing middle-end with heavy translation cost.

Guest architectural state (r0-r15, NZCV) lives in the in-memory CPU env
at ``ENV_BASE``; translated host code reads/writes it there, and the
engine itself only touches it between blocks (dispatch, HALT check).

Statistics come in two explicit views (instead of the old implicit
reset-on-``run()`` convention):

* ``engine.lifetime`` — everything since engine construction:
  translation-side counters grow with the translation cache and
  dynamic counters sum over every completed run.
* ``engine.last_run`` — exactly one run: dynamic counters for the most
  recent completed ``run()`` plus the translation work that run itself
  triggered (zero blocks on a warm cache).

``engine.stats`` (and ``DBTRunResult.stats``) is the conventional
evaluation view the figures consume: cumulative translation-side
counters (a warm DBT process keeps its cache) combined with the most
recent run's dynamic counters.  It is a snapshot, not a live object.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.host_x86 import execute as execute_x86
from repro.isa.alu import ConcreteALU
from repro.isa.operands import Label
from repro.learning.store import RuleStore
from repro.minic.compile import (
    CODE_BASE,
    HALT_ADDRESS,
    STACK_TOP,
    CompiledProgram,
)
from repro.obs.metrics import get_metrics
from repro.obs.profiler import phase
from repro.obs.trace import get_tracer
from repro.dbt import codegen, perf
from repro.dbt.codegen import (
    ENV_BASE,
    EXIT_LABEL,
    FLAG_OFFSET,
    NEXT_PC_OFFSET,
    REG_OFFSET,
    TranslatedBlock,
)
from repro.dbt.frontend import translate_block
from repro.dbt.guard import GuardPolicy, GuardStats, copy_state, states_agree
from repro.dbt.llvmjit import optimize_tcg
from repro.dbt.machine import ConcreteState
from repro.dbt.perf import PerfModel, instruction_cycles
from repro.dbt.ruletrans import COVER_MODES, translate_block_with_rules

_ALU = ConcreteALU()

MODES = ("qemu", "rules", "llvmjit")

_ENGINE_IDS = itertools.count()


class DBTError(Exception):
    """Engine-level failure (bad mode, runaway guest, ...)."""


@dataclass
class DBTStats:
    """Everything the evaluation figures need from one stats view."""

    dynamic_host_instructions: int = 0
    dynamic_guest_instructions: int = 0
    dynamic_rule_guest_instructions: int = 0
    static_guest_instructions: int = 0
    static_rule_guest_instructions: int = 0
    translated_blocks: int = 0
    hit_rule_lengths: dict[int, int] = field(default_factory=dict)
    hit_rules: set = field(default_factory=set)
    rule_miss_reasons: dict[str, int] = field(default_factory=dict)
    perf: PerfModel = field(default_factory=PerfModel)

    @property
    def static_coverage(self) -> float:
        """S_p from the paper (Figure 11)."""
        if not self.static_guest_instructions:
            return 0.0
        return (self.static_rule_guest_instructions
                / self.static_guest_instructions)

    @property
    def dynamic_coverage(self) -> float:
        """D_p from the paper (Figure 11)."""
        if not self.dynamic_guest_instructions:
            return 0.0
        return (self.dynamic_rule_guest_instructions
                / self.dynamic_guest_instructions)

    def count_fields(self) -> dict:
        """Flat numeric summary (trace payloads, reconciliation)."""
        return {
            "dynamic_host_instructions": self.dynamic_host_instructions,
            "dynamic_guest_instructions": self.dynamic_guest_instructions,
            "dynamic_rule_guest_instructions":
                self.dynamic_rule_guest_instructions,
            "static_guest_instructions": self.static_guest_instructions,
            "static_rule_guest_instructions":
                self.static_rule_guest_instructions,
            "translated_blocks": self.translated_blocks,
            "dispatches": self.perf.dispatches,
            "exec_cycles": self.perf.exec_cycles,
            "translation_cycles": self.perf.translation_cycles,
        }


@dataclass
class RuleProfile:
    """Lifetime profitability ledger for one learned rule.

    Translation-time entries accrue every time the rule is
    instantiated into a block (re-translations after invalidation
    re-pay, which is correct — the costs really recur); execution-time
    entries accrue per dispatch of a block containing the hit.  The
    cycle model is :mod:`repro.dbt.perf`'s; "saved" always means
    *relative to the TCG counterfactual captured at the hit site*.

    Lookup-cost attribution: every successful hit is charged exactly
    one :data:`~repro.dbt.perf.RULE_LOOKUP_COST` probe.  Probes that
    missed are real cost too, but belong to no rule — they are the
    store's overhead, already visible in ``translation_cycles``.
    """

    digest: str
    rule: object
    hits: int = 0                  #: translate-time instantiations
    exec_hits: int = 0             #: dispatches of blocks with this hit
    guest_covered: int = 0         #: guest instrs covered, translate-time
    host_emitted: int = 0          #: host template instrs emitted
    tcg_ops_avoided: int = 0       #: TCG micro-ops never generated
    translation_cycles_saved: float = 0.0
    exec_cycles_saved: float = 0.0
    #: Measured template-body cycles/visit summed over hits: the
    #: attribution signal that refines the DP cover's per-rule cost
    #: online.  Body cycles only (no first-touch register loads, no
    #: block-ending write-back) — a property of the rule itself, so
    #: engines with different translation histories still plan
    #: identical covers (the online/offline coverage-parity contract).
    host_cycles_observed: float = 0.0

    @property
    def mean_host_cycles(self) -> float | None:
        """Average measured cycles/visit (None before the first hit)."""
        if not self.hits:
            return None
        return self.host_cycles_observed / self.hits

    @property
    def lookup_cost(self) -> float:
        return perf.RULE_LOOKUP_COST * self.hits

    @property
    def cycles_saved(self) -> float:
        return self.translation_cycles_saved + self.exec_cycles_saved

    @property
    def net_cycles(self) -> float:
        return self.cycles_saved - self.lookup_cost

    @property
    def profitable(self) -> bool:
        return self.net_cycles > 0

    def count_fields(self) -> dict:
        """Flat numeric summary (trace payloads, report tables)."""
        return {
            "digest": self.digest,
            "hits": self.hits,
            "exec_hits": self.exec_hits,
            "guest_covered": self.guest_covered,
            "host_emitted": self.host_emitted,
            "tcg_ops_avoided": self.tcg_ops_avoided,
            "translation_cycles_saved": self.translation_cycles_saved,
            "exec_cycles_saved": self.exec_cycles_saved,
            "host_cycles_observed": self.host_cycles_observed,
            "lookup_cost": self.lookup_cost,
            "cycles_saved": self.cycles_saved,
            "net_cycles": self.net_cycles,
            "profitable": self.profitable,
        }


@dataclass
class DBTRunResult:
    return_value: int
    stats: DBTStats


class DBTEngine:
    """Translate-and-run loop over a guest (ARM) program image."""

    def __init__(
        self,
        program: CompiledProgram,
        mode: str = "qemu",
        rule_store: RuleStore | None = None,
        fast: bool = True,
        guard: GuardPolicy | None = None,
        gap_sink=None,
        cover: str = "dp",
    ) -> None:
        if mode not in MODES:
            raise DBTError(f"unknown mode {mode!r}")
        if cover not in COVER_MODES:
            raise DBTError(f"unknown cover mode {cover!r}")
        if program.options.target != "arm":
            raise DBTError("the DBT emulates ARM guests")
        if guard is not None and mode != "rules":
            raise DBTError(
                "the differential guard cross-checks learned rules; "
                f"it has nothing to check in {mode!r} mode"
            )
        if mode == "rules" and rule_store is None:
            rule_store = RuleStore()
        if rule_store is not None and len(rule_store) and \
                rule_store.direction != "arm-x86":
            raise DBTError(
                "the DBT executes ARM guests: rule store direction "
                f"{rule_store.direction!r} is not applicable"
            )
        self.program = program
        self.mode = mode
        self.rule_store = rule_store
        #: Cover policy for rules-mode translation: ``"dp"`` (lowest
        #: modeled-cycle cover) or ``"greedy"`` (paper Section 4).
        self.cover = cover
        self.fast = fast
        self.guard = guard
        self.guard_stats = GuardStats()
        #: Translation-gap capture hook: called with the uncovered
        #: guest suffix at every rule-table miss (rules mode only).
        self.gap_sink = gap_sink
        #: Per-dispatch hook ``tick(engine)``; the rule-service client
        #: installs one to report gaps / pull deltas mid-run.
        self.tick = None
        #: Rules the guard caught diverging from the TCG reference.
        self.quarantined_rules: set = set()
        self.engine_id = next(_ENGINE_IDS)
        self._cache: dict[int, TranslatedBlock] = {}
        self._cycles_cache: dict[int, list[float]] = {}
        self._steps_cache: dict[int, list] = {}
        #: TCG-only reference translations (guard comparisons).
        self._ref_cache: dict[int, tuple] = {}
        #: Blocks invalidated mid-run after executing: their dynamic
        #: counters must still be accounted at run end.
        self._retired_blocks: list[TranslatedBlock] = []
        self._runs_completed = 0
        #: Lifetime per-rule profitability ledgers, keyed by Rule
        #: (identity excludes provenance, so re-learned equal rules
        #: share one ledger).
        self.rule_profiles: dict = {}
        #: Cumulative since construction (never reset).
        self.lifetime = DBTStats()
        #: The most recent completed run (empty before the first).
        self.last_run = DBTStats()
        # Accumulator for the run in progress.
        self._active: DBTStats | None = None

    # -- stats views -----------------------------------------------------------

    @property
    def stats(self) -> DBTStats:
        """The conventional evaluation view: cumulative translation
        counters (the cache is warm across runs) + the most recent
        run's dynamic counters.  A detached snapshot."""
        lifetime, last = self.lifetime, self.last_run
        return DBTStats(
            dynamic_host_instructions=last.dynamic_host_instructions,
            dynamic_guest_instructions=last.dynamic_guest_instructions,
            dynamic_rule_guest_instructions=(
                last.dynamic_rule_guest_instructions
            ),
            static_guest_instructions=lifetime.static_guest_instructions,
            static_rule_guest_instructions=(
                lifetime.static_rule_guest_instructions
            ),
            translated_blocks=lifetime.translated_blocks,
            hit_rule_lengths=dict(lifetime.hit_rule_lengths),
            hit_rules=set(lifetime.hit_rules),
            rule_miss_reasons=dict(lifetime.rule_miss_reasons),
            perf=PerfModel(
                exec_cycles=last.perf.exec_cycles,
                translation_cycles=lifetime.perf.translation_cycles,
                dispatches=last.perf.dispatches,
            ),
        )

    def _translation_views(self) -> tuple[DBTStats, ...]:
        if self._active is not None:
            return (self.lifetime, self._active)
        return (self.lifetime,)

    # -- translation -----------------------------------------------------------

    def translate(self, guest_addr: int) -> TranslatedBlock:
        cached = self._cache.get(guest_addr)
        if cached is not None:
            return cached
        with phase("dbt.translate"):
            return self._translate_miss(guest_addr)

    def _translate_miss(self, guest_addr: int) -> TranslatedBlock:
        translate_t0 = time.perf_counter()
        start_index = self.program.index_of_addr(guest_addr)
        miss_reasons: dict[str, int] = {}
        if self.mode == "rules":
            result = translate_block_with_rules(
                self.program, start_index, self.rule_store,
                gap_sink=self.gap_sink,
                cover=self.cover,
                cost_hint=self._rule_cost_hint,
            )
            tb = TranslatedBlock(guest_addr, result.host_instrs)
            tb.guest_length = len(result.guest_instrs)
            tb.rule_covered = result.rule_covered
            tb.hit_rules = result.hit_rules
            tb.hit_profiles = result.hit_profiles
            for profile in result.hit_profiles:
                self._account_hit(profile)
            tb.translation_cost = (
                perf.TCG_OP_COST * result.tcg_op_count
                + perf.lookup_cost(self.rule_store.matcher)
                * result.lookup_attempts
                + perf.RULE_EMIT_COST
                * sum(len(rule.host) for rule, _ in result.hit_rules)
            )
            miss_reasons = result.miss_reasons
            for view in self._translation_views():
                for rule, length in result.hit_rules:
                    view.hit_rules.add(rule)
                    view.hit_rule_lengths[length] = (
                        view.hit_rule_lengths.get(length, 0) + 1
                    )
                for reason, count in miss_reasons.items():
                    view.rule_miss_reasons[reason] = (
                        view.rule_miss_reasons.get(reason, 0) + count
                    )
        else:
            tcg_block, guest_instrs = translate_block(
                self.program, start_index
            )
            ops = tcg_block.ops
            if self.mode == "llvmjit":
                cost = (perf.LLVMJIT_BLOCK_COST
                        + perf.LLVMJIT_OP_COST * len(ops))
                ops = optimize_tcg(ops)
            else:
                cost = perf.TCG_OP_COST * len(ops)
            assembler = codegen.BlockAssembler()
            for op in ops:
                codegen.lower_tcg_op(assembler, op,
                                     optimized=self.mode == "llvmjit")
            translated = codegen.finalize_block(assembler, guest_addr)
            tb = TranslatedBlock(guest_addr, translated.host_instrs)
            tb.guest_length = len(guest_instrs)
            tb.rule_covered = [False] * len(guest_instrs)
            tb.translation_cost = cost
        self._cache[guest_addr] = tb
        self._cycles_cache[guest_addr] = [
            instruction_cycles(instr) for instr in tb.host_instrs
        ]
        if self.fast:
            from repro.dbt.fastexec import compile_block

            self._steps_cache[guest_addr] = compile_block(tb.host_instrs)
        covered = sum(tb.rule_covered)
        for view in self._translation_views():
            view.translated_blocks += 1
            view.static_guest_instructions += tb.guest_length
            view.static_rule_guest_instructions += covered
            view.perf.translation_cycles += tb.translation_cost
        metrics = get_metrics()
        metrics.inc("dbt.blocks.translated")
        metrics.observe_sketch(
            "dbt.translate.ms",
            (time.perf_counter() - translate_t0) * 1000.0,
        )
        if self.mode == "rules":
            metrics.inc("dbt.rule.hits", len(tb.hit_rules))
            for _, length in tb.hit_rules:
                metrics.observe("dbt.rule.hit_length", length)
            for reason, count in miss_reasons.items():
                metrics.inc(f"dbt.rule.miss.{reason}", count)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "dbt.translate",
                engine=self.engine_id,
                mode=self.mode,
                addr=guest_addr,
                guest_len=tb.guest_length,
                covered=covered,
                cost=tb.translation_cost,
                hit_lengths=[length for _, length in tb.hit_rules],
                miss_reasons=miss_reasons,
            )
        return tb

    # -- per-rule profitability --------------------------------------------------

    def _rule_profile(self, rule) -> RuleProfile:
        profile = self.rule_profiles.get(rule)
        if profile is None:
            from repro.learning.serialize import rule_digest

            profile = self.rule_profiles[rule] = RuleProfile(
                digest=rule_digest(rule), rule=rule
            )
        return profile

    def _account_hit(self, hit) -> None:
        """Fold one translate-time rule application into its ledger."""
        profile = self._rule_profile(hit.rule)
        profile.hits += 1
        profile.guest_covered += hit.length
        profile.host_emitted += hit.rule_host_len
        profile.tcg_ops_avoided += hit.tcg_ops
        profile.host_cycles_observed += hit.body_cycles
        profile.translation_cycles_saved += (
            perf.TCG_OP_COST * hit.tcg_ops
            - perf.RULE_EMIT_COST * hit.rule_host_len
        )

    def _rule_cost_hint(self, rule) -> float | None:
        """Measured cycles/visit for the DP cover's cost model (None
        until the rule has been instantiated at least once — the
        planner then falls back to the emitter's static template
        cycles)."""
        profile = self.rule_profiles.get(rule)
        if profile is None:
            return None
        return profile.mean_host_cycles

    def rule_profitability(self) -> list[RuleProfile]:
        """Lifetime per-rule ledgers, most profitable first."""
        return sorted(
            self.rule_profiles.values(),
            key=lambda p: (-p.net_cycles, p.digest),
        )

    # -- execution ---------------------------------------------------------------

    def _env_write(self, state: ConcreteState, offset: int, value: int) -> None:
        state.store(ENV_BASE + offset, value & 0xFFFFFFFF, 4)

    def _env_read(self, state: ConcreteState, offset: int) -> int:
        return state.load(ENV_BASE + offset, 4)

    def run(self, args: tuple[int, ...] = (),
            block_limit: int = 50_000_000) -> DBTRunResult:
        """Emulate the guest program's ``main`` until it returns.

        Repeated ``run()`` calls on one engine reuse the translation
        cache; each run accumulates into a fresh ``last_run`` view and
        folds into ``lifetime``, so back-to-back runs never
        double-count.  The returned ``stats`` snapshot is the
        conventional hybrid view (see the module docstring).
        """
        self._active = DBTStats()
        self._retired_blocks = []
        for tb in self._cache.values():
            tb.exec_count = 0
            tb.exec_cycles = 0.0
        state = ConcreteState(memory=dict(self.program.initial_memory()))
        self._env_write(state, REG_OFFSET["sp"], STACK_TOP)
        self._env_write(state, REG_OFFSET["lr"], HALT_ADDRESS)
        for i, arg in enumerate(args):
            self._env_write(state, REG_OFFSET[f"r{i}"], arg)
        guest_pc = self.program.addr_of(self.program.entry)
        active = self._active
        executed_blocks = 0
        try:
            with phase("dbt.exec"):
                while guest_pc != HALT_ADDRESS:
                    if executed_blocks >= block_limit:
                        raise DBTError("block limit exceeded")
                    executed_blocks += 1
                    if self.tick is not None:
                        self.tick(self)
                    tb = self.translate(guest_pc)
                    if (
                        self.guard is not None
                        and tb.hit_rules
                        and self.guard.should_check(tb.exec_count)
                    ):
                        tb = self._guard_check(tb, state)
                    tb.exec_count += 1
                    active.perf.dispatches += 1
                    guest_pc = self._run_block(tb, state)
        finally:
            self._finalize_run()
        return_value = self._env_read(state, REG_OFFSET["r0"])
        self._emit_run_records(return_value)
        return DBTRunResult(return_value, self.stats)

    def _run_block(self, tb: TranslatedBlock, state: ConcreteState) -> int:
        if self.fast:
            return self._run_block_fast(tb, state)
        instrs = tb.host_instrs
        cycles = self._cycles_cache[tb.guest_start]
        active = self._active
        index = 0
        count = 0
        cycle_sum = 0.0
        while index < len(instrs):
            instr = instrs[index]
            count += 1
            cycle_sum += cycles[index]
            outcome = execute_x86(instr, state, _ALU)
            branch = outcome.branch
            if branch is None or not branch.cond:
                index += 1
                continue
            active.dynamic_host_instructions += count
            active.perf.exec_cycles += cycle_sum
            tb.exec_cycles += cycle_sum
            target = branch.target
            if isinstance(target, Label):
                name = target.name
                if name == EXIT_LABEL:
                    return self._env_read(state, NEXT_PC_OFFSET)
                if name.startswith("TB@"):
                    return int(name[3:], 16)
            raise DBTError(f"unexpected host branch target {target!r}")
        raise DBTError(
            f"translated block {tb.guest_start:#x} fell off its end"
        )

    def _run_block_fast(self, tb: TranslatedBlock, state: ConcreteState) -> int:
        steps = self._steps_cache[tb.guest_start]
        cycles = self._cycles_cache[tb.guest_start]
        active = self._active
        regs, flags, mem = state.regs, state.flags, state.memory
        index = 0
        count = 0
        cycle_sum = 0.0
        n = len(steps)
        while index < n:
            count += 1
            cycle_sum += cycles[index]
            target = steps[index](regs, flags, mem)
            if target is None:
                index += 1
                continue
            active.dynamic_host_instructions += count
            active.perf.exec_cycles += cycle_sum
            tb.exec_cycles += cycle_sum
            if target == EXIT_LABEL:
                return self._env_read(state, NEXT_PC_OFFSET)
            if target.startswith("TB@"):
                return int(target[3:], 16)
            raise DBTError(f"unexpected host branch target {target!r}")
        raise DBTError(
            f"translated block {tb.guest_start:#x} fell off its end"
        )

    # -- differential guard ------------------------------------------------------

    def _guard_check(self, tb: TranslatedBlock,
                     state: ConcreteState) -> TranslatedBlock:
        """Cross-check a rule-covered block against its TCG reference.

        On divergence the block's rules are quarantined, every cached
        block built from them is invalidated, and the block is
        retranslated; the loop repeats until the (re)translation agrees
        with the reference or uses no rules at all.  Returns the block
        the dispatch loop should actually execute.
        """
        metrics = get_metrics()
        while tb.hit_rules:
            self.guard_stats.checks += 1
            metrics.inc("dbt.guard.checks")
            trial = copy_state(state)
            reference = copy_state(state)
            trial_pc = self._exec_block_raw(
                tb.host_instrs,
                self._steps_cache.get(tb.guest_start) if self.fast else None,
                trial,
            )
            ref_instrs, ref_steps = self._reference_block(tb.guest_start)
            ref_pc = self._exec_block_raw(ref_instrs, ref_steps, reference)
            if trial_pc == ref_pc and states_agree(trial, reference):
                return tb
            suspects = {
                rule for rule, _ in tb.hit_rules
                if rule not in self.quarantined_rules
            }
            if not suspects:
                # Divergence with nothing left to quarantine means the
                # baseline itself is inconsistent — not recoverable.
                raise DBTError(
                    f"guard divergence at {tb.guest_start:#x} with no "
                    "quarantinable rules"
                )
            for rule in suspects:
                self.rule_store.remove(rule)
                self.quarantined_rules.add(rule)
            invalidated = self._invalidate_rule_blocks(suspects)
            self.guard_stats.divergences += 1
            self.guard_stats.rules_quarantined += len(suspects)
            self.guard_stats.retranslations += 1
            metrics.inc("dbt.guard.divergences")
            metrics.inc("dbt.guard.quarantined_rules", len(suspects))
            metrics.inc("dbt.guard.invalidated_blocks", invalidated)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "dbt.guard.divergence",
                    engine=self.engine_id,
                    addr=tb.guest_start,
                    trial_pc=trial_pc,
                    ref_pc=ref_pc,
                    quarantined=len(suspects),
                    invalidated=invalidated,
                )
            tb = self.translate(tb.guest_start)
        return tb

    def _exec_block_raw(self, instrs, steps, state: ConcreteState) -> int:
        """Execute one translated block on ``state`` with no stats
        side effects; return the next guest pc."""
        if steps is not None:
            regs, flags, mem = state.regs, state.flags, state.memory
            index = 0
            n = len(steps)
            while index < n:
                target = steps[index](regs, flags, mem)
                if target is None:
                    index += 1
                    continue
                if target == EXIT_LABEL:
                    return self._env_read(state, NEXT_PC_OFFSET)
                if target.startswith("TB@"):
                    return int(target[3:], 16)
                raise DBTError(
                    f"unexpected host branch target {target!r}"
                )
        else:
            index = 0
            while index < len(instrs):
                outcome = execute_x86(instrs[index], state, _ALU)
                branch = outcome.branch
                if branch is None or not branch.cond:
                    index += 1
                    continue
                target = branch.target
                if isinstance(target, Label):
                    name = target.name
                    if name == EXIT_LABEL:
                        return self._env_read(state, NEXT_PC_OFFSET)
                    if name.startswith("TB@"):
                        return int(name[3:], 16)
                raise DBTError(
                    f"unexpected host branch target {target!r}"
                )
        raise DBTError("guard trial block fell off its end")

    def _reference_block(self, guest_addr: int) -> tuple:
        """A pure-TCG translation of the guest block at ``guest_addr``
        (the guard's ground truth), cached separately from the main
        translation cache and charged to no stats view."""
        cached = self._ref_cache.get(guest_addr)
        if cached is not None:
            return cached
        start_index = self.program.index_of_addr(guest_addr)
        tcg_block, _ = translate_block(self.program, start_index)
        assembler = codegen.BlockAssembler()
        for op in tcg_block.ops:
            codegen.lower_tcg_op(assembler, op)
        translated = codegen.finalize_block(assembler, guest_addr)
        steps = None
        if self.fast:
            from repro.dbt.fastexec import compile_block

            steps = compile_block(translated.host_instrs)
        reference = (translated.host_instrs, steps)
        self._ref_cache[guest_addr] = reference
        return reference

    def _retire_blocks(self, doomed: list[int]) -> int:
        """Drop cached blocks by guest address (shared by the guard's
        quarantine path and hot-install).

        Blocks that already executed this run are retired, not
        forgotten: their dynamic counters still belong to the run."""
        for addr in doomed:
            tb = self._cache.pop(addr)
            self._cycles_cache.pop(addr, None)
            self._steps_cache.pop(addr, None)
            if tb.exec_count:
                self._retired_blocks.append(tb)
        return len(doomed)

    def _invalidate_rule_blocks(self, rules: set) -> int:
        """Drop every cached block translated with any of ``rules``."""
        doomed = [
            addr for addr, tb in self._cache.items()
            if any(rule in rules for rule, _ in tb.hit_rules)
        ]
        self._retire_blocks(doomed)
        self.guard_stats.blocks_invalidated += len(doomed)
        return len(doomed)

    # -- hot install ---------------------------------------------------------

    def hot_install(self, rules, source: str = "direct",
                    digest: str | None = None) -> tuple[int, int]:
        """Install freshly served rules into the live store mid-run.

        Exact duplicates are skipped by the store's idempotent
        :meth:`~repro.learning.store.RuleStore.install`, and rules the
        guard has quarantined this engine's lifetime are never
        re-admitted.  Cached blocks whose uncovered guest instructions
        contain a newly installed rule's mnemonic window are
        invalidated (through the same retire machinery the guard uses)
        so their next dispatch retranslates with the new rules.

        ``digest`` names the served bundle these rules came from; it is
        carried on the ``dbt.hot_install`` trace record so the report
        layer can join an install back to the publish (and, through the
        gap's trace id, to the miss that caused it).

        Returns ``(installed, invalidated)`` counts.
        """
        if self.mode != "rules":
            raise DBTError(
                f"hot-install needs a rules-mode engine, not {self.mode!r}"
            )
        offered = list(rules)
        fresh = [
            rule for rule in offered if rule not in self.quarantined_rules
        ]
        installed = self.rule_store.install(fresh)
        invalidated = 0
        if installed:
            windows = {
                tuple(i.mnemonic for i in rule.guest) for rule in installed
            }
            doomed = [
                addr for addr, tb in self._cache.items()
                if not all(tb.rule_covered)
                and self._block_matches_windows(addr, windows)
            ]
            invalidated = self._retire_blocks(doomed)
        metrics = get_metrics()
        metrics.inc("dbt.hot_install.offered", len(offered))
        metrics.inc("dbt.hot_install.rules", len(installed))
        metrics.inc("dbt.hot_install.blocks_invalidated", invalidated)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "dbt.hot_install",
                engine=self.engine_id,
                source=source,
                digest=digest,
                offered=len(offered),
                installed=len(installed),
                invalidated=invalidated,
            )
        return len(installed), invalidated

    def _block_matches_windows(self, guest_addr: int,
                               windows: set[tuple]) -> bool:
        """Could any mnemonic window cover part of this cached block?"""
        from repro.dbt.frontend import discover_block

        block = discover_block(
            self.program, self.program.index_of_addr(guest_addr)
        )
        mnemonics = tuple(instr.mnemonic for instr in block)
        for window in windows:
            span = len(window)
            if span > len(mnemonics):
                continue
            for start in range(len(mnemonics) - span + 1):
                if mnemonics[start : start + span] == window:
                    return True
        return False

    def _finalize_run(self) -> None:
        """Derive the run's guest-side dynamic counters, publish it as
        ``last_run`` and fold it into ``lifetime``."""
        active = self._active
        if active is None:
            return
        self._active = None
        for tb in list(self._cache.values()) + self._retired_blocks:
            active.dynamic_guest_instructions += \
                tb.exec_count * tb.guest_length
            active.dynamic_rule_guest_instructions += \
                tb.exec_count * sum(tb.rule_covered)
            if tb.exec_count:
                for hit in tb.hit_profiles:
                    profile = self._rule_profile(hit.rule)
                    profile.exec_hits += tb.exec_count
                    profile.exec_cycles_saved += (
                        (hit.tcg_host_cycles - hit.host_cycles)
                        * tb.exec_count
                    )
        lifetime = self.lifetime
        lifetime.dynamic_host_instructions += \
            active.dynamic_host_instructions
        lifetime.dynamic_guest_instructions += \
            active.dynamic_guest_instructions
        lifetime.dynamic_rule_guest_instructions += \
            active.dynamic_rule_guest_instructions
        lifetime.perf.exec_cycles += active.perf.exec_cycles
        lifetime.perf.dispatches += active.perf.dispatches
        self.last_run = active
        self._runs_completed += 1

    def _emit_run_records(self, return_value: int) -> None:
        metrics = get_metrics()
        metrics.inc("dbt.runs")
        metrics.inc("dbt.dispatches", self.last_run.perf.dispatches)
        metrics.inc("dbt.dynamic_host_instructions",
                    self.last_run.dynamic_host_instructions)
        tracer = get_tracer()
        if not tracer.enabled:
            return
        for tb in list(self._cache.values()) + self._retired_blocks:
            if not tb.exec_count:
                continue
            tracer.event(
                "dbt.block",
                engine=self.engine_id,
                addr=tb.guest_start,
                exec_count=tb.exec_count,
                exec_cycles=tb.exec_cycles,
                guest_len=tb.guest_length,
                covered=sum(tb.rule_covered),
            )
        # Lifetime-cumulative per-rule ledgers; the report aggregator
        # keeps the last record per (engine, digest), so repeated runs
        # on one engine never double-count.
        for profile in self.rule_profitability():
            tracer.event(
                "dbt.rule_profile",
                engine=self.engine_id,
                **profile.count_fields(),
            )
        tracer.event(
            "dbt.run",
            engine=self.engine_id,
            mode=self.mode,
            run=self._runs_completed,
            return_value=return_value,
            lifetime=self.lifetime.count_fields(),
            last_run=self.last_run.count_fields(),
        )


def run_dbt(
    program: CompiledProgram,
    mode: str = "qemu",
    rule_store: RuleStore | None = None,
    args: tuple[int, ...] = (),
    guard: GuardPolicy | None = None,
) -> DBTRunResult:
    """Convenience wrapper: build an engine and run to completion."""
    return DBTEngine(program, mode, rule_store, guard=guard).run(args)
