"""The DBT execution engine: translation cache, dispatch loop, stats.

Three backends share the engine (paper Section 6):

* ``"qemu"``    — the baseline: every guest instruction through TCG,
* ``"rules"``   — the paper's system: learned rules + TCG fallback,
* ``"llvmjit"`` — the HQEMU-style comparison: TCG ops through an
  optimizing middle-end with heavy translation cost.

Guest architectural state (r0-r15, NZCV) lives in the in-memory CPU env
at ``ENV_BASE``; translated host code reads/writes it there, and the
engine itself only touches it between blocks (dispatch, HALT check).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host_x86 import execute as execute_x86
from repro.isa.alu import ConcreteALU
from repro.isa.operands import Label
from repro.learning.store import RuleStore
from repro.minic.compile import (
    CODE_BASE,
    HALT_ADDRESS,
    STACK_TOP,
    CompiledProgram,
)
from repro.dbt import codegen, perf
from repro.dbt.codegen import (
    ENV_BASE,
    EXIT_LABEL,
    FLAG_OFFSET,
    NEXT_PC_OFFSET,
    REG_OFFSET,
    TranslatedBlock,
)
from repro.dbt.frontend import translate_block
from repro.dbt.llvmjit import optimize_tcg
from repro.dbt.machine import ConcreteState
from repro.dbt.perf import PerfModel, instruction_cycles
from repro.dbt.ruletrans import translate_block_with_rules

_ALU = ConcreteALU()

MODES = ("qemu", "rules", "llvmjit")


class DBTError(Exception):
    """Engine-level failure (bad mode, runaway guest, ...)."""


@dataclass
class DBTStats:
    """Everything the evaluation figures need from one run."""

    dynamic_host_instructions: int = 0
    dynamic_guest_instructions: int = 0
    dynamic_rule_guest_instructions: int = 0
    static_guest_instructions: int = 0
    static_rule_guest_instructions: int = 0
    translated_blocks: int = 0
    hit_rule_lengths: dict[int, int] = field(default_factory=dict)
    hit_rules: set = field(default_factory=set)
    perf: PerfModel = field(default_factory=PerfModel)

    @property
    def static_coverage(self) -> float:
        """S_p from the paper (Figure 11)."""
        if not self.static_guest_instructions:
            return 0.0
        return (self.static_rule_guest_instructions
                / self.static_guest_instructions)

    @property
    def dynamic_coverage(self) -> float:
        """D_p from the paper (Figure 11)."""
        if not self.dynamic_guest_instructions:
            return 0.0
        return (self.dynamic_rule_guest_instructions
                / self.dynamic_guest_instructions)


@dataclass
class DBTRunResult:
    return_value: int
    stats: DBTStats


class DBTEngine:
    """Translate-and-run loop over a guest (ARM) program image."""

    def __init__(
        self,
        program: CompiledProgram,
        mode: str = "qemu",
        rule_store: RuleStore | None = None,
        fast: bool = True,
    ) -> None:
        if mode not in MODES:
            raise DBTError(f"unknown mode {mode!r}")
        if program.options.target != "arm":
            raise DBTError("the DBT emulates ARM guests")
        if mode == "rules" and rule_store is None:
            rule_store = RuleStore()
        if rule_store is not None and len(rule_store) and \
                rule_store.direction != "arm-x86":
            raise DBTError(
                "the DBT executes ARM guests: rule store direction "
                f"{rule_store.direction!r} is not applicable"
            )
        self.program = program
        self.mode = mode
        self.rule_store = rule_store
        self.fast = fast
        self._cache: dict[int, TranslatedBlock] = {}
        self._cycles_cache: dict[int, list[float]] = {}
        self._steps_cache: dict[int, list] = {}
        self._has_run = False
        self.stats = DBTStats()

    # -- translation -----------------------------------------------------------

    def translate(self, guest_addr: int) -> TranslatedBlock:
        cached = self._cache.get(guest_addr)
        if cached is not None:
            return cached
        start_index = self.program.index_of_addr(guest_addr)
        if self.mode == "rules":
            result = translate_block_with_rules(
                self.program, start_index, self.rule_store
            )
            tb = TranslatedBlock(guest_addr, result.host_instrs)
            tb.guest_length = len(result.guest_instrs)
            tb.rule_covered = result.rule_covered
            tb.hit_rules = result.hit_rules
            tb.translation_cost = (
                perf.TCG_OP_COST * result.tcg_op_count
                + perf.RULE_LOOKUP_COST * result.lookup_attempts
                + perf.RULE_EMIT_COST
                * sum(len(rule.host) for rule, _ in result.hit_rules)
            )
            for rule, length in result.hit_rules:
                self.stats.hit_rules.add(rule)
                self.stats.hit_rule_lengths[length] = (
                    self.stats.hit_rule_lengths.get(length, 0) + 1
                )
        else:
            tcg_block, guest_instrs = translate_block(
                self.program, start_index
            )
            ops = tcg_block.ops
            if self.mode == "llvmjit":
                cost = (perf.LLVMJIT_BLOCK_COST
                        + perf.LLVMJIT_OP_COST * len(ops))
                ops = optimize_tcg(ops)
            else:
                cost = perf.TCG_OP_COST * len(ops)
            assembler = codegen.BlockAssembler()
            for op in ops:
                codegen.lower_tcg_op(assembler, op,
                                     optimized=self.mode == "llvmjit")
            translated = codegen.finalize_block(assembler, guest_addr)
            tb = TranslatedBlock(guest_addr, translated.host_instrs)
            tb.guest_length = len(guest_instrs)
            tb.rule_covered = [False] * len(guest_instrs)
            tb.translation_cost = cost
        self._cache[guest_addr] = tb
        self._cycles_cache[guest_addr] = [
            instruction_cycles(instr) for instr in tb.host_instrs
        ]
        if self.fast:
            from repro.dbt.fastexec import compile_block

            self._steps_cache[guest_addr] = compile_block(tb.host_instrs)
        self.stats.translated_blocks += 1
        self.stats.static_guest_instructions += tb.guest_length
        self.stats.static_rule_guest_instructions += sum(tb.rule_covered)
        self.stats.perf.translation_cycles += tb.translation_cost
        return tb

    # -- execution ---------------------------------------------------------------

    def _env_write(self, state: ConcreteState, offset: int, value: int) -> None:
        state.store(ENV_BASE + offset, value & 0xFFFFFFFF, 4)

    def _env_read(self, state: ConcreteState, offset: int) -> int:
        return state.load(ENV_BASE + offset, 4)

    def run(self, args: tuple[int, ...] = (),
            block_limit: int = 50_000_000) -> DBTRunResult:
        """Emulate the guest program's ``main`` until it returns.

        Repeated ``run()`` calls on one engine reuse the translation
        cache but reset the *dynamic* statistics first, so ``stats``
        always describes the most recent run (translation-side stats —
        translated blocks, static counts, translation cycles — stay
        cumulative with the cache, exactly like a warm DBT process).
        """
        if self._has_run:
            self._reset_dynamic_stats()
        self._has_run = True
        state = ConcreteState(memory=dict(self.program.initial_memory()))
        self._env_write(state, REG_OFFSET["sp"], STACK_TOP)
        self._env_write(state, REG_OFFSET["lr"], HALT_ADDRESS)
        for i, arg in enumerate(args):
            self._env_write(state, REG_OFFSET[f"r{i}"], arg)
        guest_pc = self.program.addr_of(self.program.entry)
        stats = self.stats
        executed_blocks = 0
        while guest_pc != HALT_ADDRESS:
            if executed_blocks >= block_limit:
                raise DBTError("block limit exceeded")
            executed_blocks += 1
            tb = self.translate(guest_pc)
            tb.exec_count += 1
            stats.perf.dispatches += 1
            guest_pc = self._run_block(tb, state)
        self._finalize_dynamic_stats()
        return DBTRunResult(
            self._env_read(state, REG_OFFSET["r0"]), stats
        )

    def _run_block(self, tb: TranslatedBlock, state: ConcreteState) -> int:
        if self.fast:
            return self._run_block_fast(tb, state)
        instrs = tb.host_instrs
        cycles = self._cycles_cache[tb.guest_start]
        stats = self.stats
        index = 0
        while index < len(instrs):
            instr = instrs[index]
            stats.dynamic_host_instructions += 1
            stats.perf.exec_cycles += cycles[index]
            outcome = execute_x86(instr, state, _ALU)
            branch = outcome.branch
            if branch is None or not branch.cond:
                index += 1
                continue
            target = branch.target
            if isinstance(target, Label):
                name = target.name
                if name == EXIT_LABEL:
                    return self._env_read(state, NEXT_PC_OFFSET)
                if name.startswith("TB@"):
                    return int(name[3:], 16)
            raise DBTError(f"unexpected host branch target {target!r}")
        raise DBTError(
            f"translated block {tb.guest_start:#x} fell off its end"
        )

    def _run_block_fast(self, tb: TranslatedBlock, state: ConcreteState) -> int:
        steps = self._steps_cache[tb.guest_start]
        cycles = self._cycles_cache[tb.guest_start]
        stats = self.stats
        regs, flags, mem = state.regs, state.flags, state.memory
        index = 0
        count = 0
        cycle_sum = 0.0
        n = len(steps)
        while index < n:
            count += 1
            cycle_sum += cycles[index]
            target = steps[index](regs, flags, mem)
            if target is None:
                index += 1
                continue
            stats.dynamic_host_instructions += count
            stats.perf.exec_cycles += cycle_sum
            if target == EXIT_LABEL:
                return self._env_read(state, NEXT_PC_OFFSET)
            if target.startswith("TB@"):
                return int(target[3:], 16)
            raise DBTError(f"unexpected host branch target {target!r}")
        raise DBTError(
            f"translated block {tb.guest_start:#x} fell off its end"
        )

    def _reset_dynamic_stats(self) -> None:
        """Zero everything a single run accumulates, so back-to-back
        ``run()`` calls never double-count (regression: ``stats`` used
        to mix execution counts of every run with exec_counts that
        ``_finalize_dynamic_stats`` re-derives from scratch)."""
        stats = self.stats
        stats.dynamic_host_instructions = 0
        stats.dynamic_guest_instructions = 0
        stats.dynamic_rule_guest_instructions = 0
        stats.perf.exec_cycles = 0.0
        stats.perf.dispatches = 0
        for tb in self._cache.values():
            tb.exec_count = 0

    def _finalize_dynamic_stats(self) -> None:
        stats = self.stats
        stats.dynamic_guest_instructions = 0
        stats.dynamic_rule_guest_instructions = 0
        for tb in self._cache.values():
            stats.dynamic_guest_instructions += \
                tb.exec_count * tb.guest_length
            stats.dynamic_rule_guest_instructions += \
                tb.exec_count * sum(tb.rule_covered)


def run_dbt(
    program: CompiledProgram,
    mode: str = "qemu",
    rule_store: RuleStore | None = None,
    args: tuple[int, ...] = (),
) -> DBTRunResult:
    """Convenience wrapper: build an engine and run to completion."""
    return DBTEngine(program, mode, rule_store).run(args)
