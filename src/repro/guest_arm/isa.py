"""ARM32 opcode metadata: mnemonic structure, defs/uses, flags.

Mnemonics follow UAL: a base opcode, an optional condition suffix, and
an optional ``s`` (set-flags) suffix, e.g. ``subs``, ``movne``, ``ble``.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg

# Base opcode groups (operand shapes).
DATA3 = ("add", "sub", "rsb", "and", "orr", "eor", "bic")  # rd, rn, op2
MULDIV = ("mul", "sdiv", "udiv")  # rd, rn, rm
SHIFTS = ("lsl", "lsr", "asr")  # rd, rm, #imm|rs
MOVES = ("mov", "mvn")  # rd, op2
COMPARES = ("cmp", "cmn", "tst", "teq")  # rn, op2
LOADS = ("ldr", "ldrb")
STORES = ("str", "strb")
BRANCHES = ("b", "bl", "bx")
STACK = ("push", "pop")

BASE_OPCODES = (
    DATA3 + MULDIV + SHIFTS + MOVES + COMPARES + LOADS + STORES + BRANCHES + STACK
)

CONDITIONS = ("eq", "ne", "hs", "lo", "mi", "pl", "hi", "ls", "ge", "lt", "gt", "le")

# Flags each condition reads.
CONDITION_FLAGS: dict[str, tuple[str, ...]] = {
    "eq": ("Z",),
    "ne": ("Z",),
    "mi": ("N",),
    "pl": ("N",),
    "lo": ("C",),
    "hs": ("C",),
    "hi": ("C", "Z"),
    "ls": ("C", "Z"),
    "ge": ("N", "V"),
    "lt": ("N", "V"),
    "gt": ("N", "Z", "V"),
    "le": ("N", "Z", "V"),
}

_OPCODE_IDS = {name: index + 1 for index, name in enumerate(BASE_OPCODES)}


def split_mnemonic(mnemonic: str) -> tuple[str, str | None, bool]:
    """Split a UAL mnemonic into (base, condition, set_flags).

    ``bls`` parses as ``b`` + ``ls`` (branch if lower-or-same), never as
    ``bl`` + ``s``; ``bl`` alone is the call instruction.
    """
    mnemonic = mnemonic.lower()
    if mnemonic.startswith("b") and mnemonic[1:] in CONDITIONS:
        return "b", mnemonic[1:], False
    if mnemonic in BASE_OPCODES:
        return mnemonic, None, False
    # base + cond (+ optional s is not valid ARM order; UAL is base+s+cond,
    # but compilers emit e.g. "movne", "addeq"; we accept base+cond and
    # base+s forms).
    for base in BASE_OPCODES:
        if not mnemonic.startswith(base):
            continue
        rest = mnemonic[len(base):]
        if rest == "s":
            return base, None, True
        if rest in CONDITIONS:
            return base, rest, False
        if rest.startswith("s") and rest[1:] in CONDITIONS:
            return base, rest[1:], True
    raise ValueError(f"unknown ARM mnemonic {mnemonic!r}")


def opcode_id(instr: Instruction) -> int:
    """Stable small integer for the base opcode (rule-store hash key)."""
    base, _, _ = split_mnemonic(instr.mnemonic)
    return _OPCODE_IDS[base]


def is_branch(instr: Instruction) -> bool:
    base, _, _ = split_mnemonic(instr.mnemonic)
    if base in BRANCHES:
        return True
    if base == "pop":
        return any(isinstance(op, Reg) and op.name == "pc" for op in instr.operands)
    return False


def is_call(instr: Instruction) -> bool:
    base, _, _ = split_mnemonic(instr.mnemonic)
    return base == "bl"


def is_return(instr: Instruction) -> bool:
    base, _, _ = split_mnemonic(instr.mnemonic)
    if base == "bx":
        return bool(instr.operands) and instr.operands[0] == Reg("lr")
    if base == "pop":
        return any(isinstance(op, Reg) and op.name == "pc" for op in instr.operands)
    return False


def is_indirect_branch(instr: Instruction) -> bool:
    base, _, _ = split_mnemonic(instr.mnemonic)
    return base == "bx" or (base == "pop" and is_return(instr))


def is_predicated(instr: Instruction) -> bool:
    """True for conditionally-executed non-branch instructions."""
    base, cond, _ = split_mnemonic(instr.mnemonic)
    return cond is not None and base != "b"


def branch_condition(instr: Instruction) -> str | None:
    """Condition suffix of a conditional branch (None if unconditional
    or not a branch)."""
    base, cond, _ = split_mnemonic(instr.mnemonic)
    if base == "b":
        return cond
    return None


def _operand_registers(op) -> tuple[str, ...]:
    if isinstance(op, Reg):
        return (op.name,)
    if isinstance(op, ShiftedReg):
        return (op.reg.name,)
    if isinstance(op, Mem):
        return tuple(reg.name for reg in op.registers())
    return ()


def defined_registers(instr: Instruction) -> tuple[str, ...]:
    """Registers written by the instruction, in a stable order."""
    base, _, _ = split_mnemonic(instr.mnemonic)
    ops = instr.operands
    if base in DATA3 + MULDIV + SHIFTS + MOVES or base in LOADS:
        return (ops[0].name,) if ops and isinstance(ops[0], Reg) else ()
    if base in COMPARES or base in STORES or base == "b" or base == "bx":
        return ()
    if base == "bl":
        return ("lr",)
    if base == "push":
        return ("sp",)
    if base == "pop":
        regs = tuple(op.name for op in ops if isinstance(op, Reg))
        return ("sp",) + regs
    return ()


def used_registers(instr: Instruction) -> tuple[str, ...]:
    """Registers read by the instruction, in operand order (dupes kept
    out, order preserved)."""
    base, _, _ = split_mnemonic(instr.mnemonic)
    ops = instr.operands
    used: list[str] = []

    def add(names) -> None:
        for name in names:
            if name not in used:
                used.append(name)

    if base in DATA3 + MULDIV + SHIFTS:
        for op in ops[1:]:
            add(_operand_registers(op))
    elif base in MOVES:
        for op in ops[1:]:
            add(_operand_registers(op))
    elif base in COMPARES:
        for op in ops:
            add(_operand_registers(op))
    elif base in LOADS:
        for op in ops[1:]:
            add(_operand_registers(op))
    elif base in STORES:
        for op in ops:
            add(_operand_registers(op))
    elif base == "bx":
        for op in ops:
            add(_operand_registers(op))
    elif base == "push":
        add(("sp",))
        add(op.name for op in ops if isinstance(op, Reg))
    elif base == "pop":
        add(("sp",))
    if is_predicated(instr):
        # A predicated write leaves the old value when untaken: the
        # destination is also an input.
        add(defined_registers(instr))
    return tuple(used)


def defined_flags(instr: Instruction) -> tuple[str, ...]:
    """Condition-code flags the instruction writes."""
    base, _, sets_flags = split_mnemonic(instr.mnemonic)
    if base in ("cmp", "cmn"):
        return ("N", "Z", "C", "V")
    if base in ("tst", "teq"):
        return ("N", "Z")
    if sets_flags and base in ("add", "sub", "rsb"):
        return ("N", "Z", "C", "V")
    if sets_flags and base in ("and", "orr", "eor", "bic", "mov", "mvn", "mul"):
        return ("N", "Z")
    return ()


def used_flags(instr: Instruction) -> tuple[str, ...]:
    """Condition-code flags the instruction reads."""
    _, cond, _ = split_mnemonic(instr.mnemonic)
    if cond is None:
        return ()
    return CONDITION_FLAGS[cond]
