"""ARM32 register file and flag definitions."""

from __future__ import annotations

GENERAL_REGISTERS = tuple(f"r{i}" for i in range(13))  # r0..r12
SP = "sp"  # r13
LR = "lr"  # r14
PC = "pc"  # r15
ALL_REGISTERS = GENERAL_REGISTERS + (SP, LR, PC)

# AAPCS: r4-r11 callee-saved; r0-r3 argument/scratch; r12 scratch.
CALLEE_SAVED = tuple(f"r{i}" for i in range(4, 12))
ARGUMENT_REGISTERS = ("r0", "r1", "r2", "r3")
RETURN_REGISTER = "r0"

FLAG_NAMES = ("N", "Z", "C", "V")

_ALIASES = {"r13": SP, "r14": LR, "r15": PC}


def canonical_register(name: str) -> str:
    """Normalize register spellings (r13/r14/r15 -> sp/lr/pc)."""
    name = name.lower()
    name = _ALIASES.get(name, name)
    if name not in ALL_REGISTERS:
        raise ValueError(f"unknown ARM register {name!r}")
    return name


def register_number(name: str) -> int:
    """The architectural number of a register (push/pop ordering)."""
    name = canonical_register(name)
    if name == SP:
        return 13
    if name == LR:
        return 14
    if name == PC:
        return 15
    return int(name[1:])
