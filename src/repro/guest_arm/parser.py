"""UAL-syntax parser for the ARM32 subset.

Supports the instruction forms the MiniC backend emits, plus ``@``
comments.  Two comment annotations are understood, mirroring the debug
information a compiler would attach::

    ldr r0, [r1, #8]   @ line=42 var=count

``line=`` records the source line, ``var=`` the compiler-IR variable
name of the instruction's memory operand.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.guest_arm.isa import split_mnemonic
from repro.guest_arm.registers import ALL_REGISTERS, canonical_register
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg

_REGISTER_RE = re.compile(r"^(r\d+|sp|lr|pc)$", re.IGNORECASE)
_IMM_RE = re.compile(r"^#(-?(?:0x[0-9a-f]+|\d+))$", re.IGNORECASE)


@dataclass
class ParsedProgram:
    """A parsed assembly listing: instructions plus label positions."""

    instructions: list[Instruction]
    labels: dict[str, int]


def parse_program(text: str) -> ParsedProgram:
    """Parse a multi-line listing with labels and comments."""
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("@"):
            continue
        while True:
            label_match = re.match(r"^([.\w$]+):\s*(.*)$", line)
            if not label_match:
                break
            labels[label_match.group(1)] = len(instructions)
            line = label_match.group(2).strip()
        if line:
            instructions.append(parse_instruction(line))
    return ParsedProgram(instructions, labels)


def parse_instruction(text: str) -> Instruction:
    """Parse a single ARM instruction."""
    text, annotations = _strip_comment(text)
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    split_mnemonic(mnemonic)  # validate early
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = _parse_operands(mnemonic, operand_text)
    var = annotations.get("var")
    if var is not None:
        operands = [
            op.with_var(var) if isinstance(op, Mem) else op for op in operands
        ]
    line = annotations.get("line")
    return Instruction(
        mnemonic,
        tuple(operands),
        line=int(line) if line is not None else None,
    )


def _strip_comment(text: str) -> tuple[str, dict[str, str]]:
    annotations: dict[str, str] = {}
    if "@" in text:
        text, comment = text.split("@", 1)
        for match in re.finditer(r"(\w+)=([^\s,]+)", comment):
            annotations[match.group(1)] = match.group(2)
    return text.strip(), annotations


def _parse_operands(mnemonic: str, text: str) -> list:
    text = text.strip()
    if not text:
        return []
    base, _, _ = split_mnemonic(mnemonic)
    if base in ("push", "pop"):
        return _parse_reglist(text)
    if base in ("b", "bl"):
        return [Label(text.strip())]
    tokens = _split_top_level(text)
    operands: list = []
    i = 0
    while i < len(tokens):
        token = tokens[i]
        # ARM flexible operand: "rX, lsl #n" spans two comma tokens.
        if (
            i + 1 < len(tokens)
            and _REGISTER_RE.match(token)
            and re.match(r"^(lsl|lsr|asr)\s+", tokens[i + 1], re.IGNORECASE)
        ):
            shift_kind, amount_text = tokens[i + 1].split(None, 1)
            amount = _parse_shift_amount(amount_text)
            operands.append(
                ShiftedReg(Reg(canonical_register(token)), shift_kind.lower(), amount)
            )
            i += 2
            continue
        operands.append(_parse_operand(token))
        i += 1
    return operands


def _parse_reglist(text: str) -> list[Reg]:
    text = text.strip()
    if not (text.startswith("{") and text.endswith("}")):
        raise ValueError(f"bad register list {text!r}")
    regs: list[Reg] = []
    for item in text[1:-1].split(","):
        item = item.strip()
        if "-" in item and not item.startswith("-"):
            start, end = item.split("-")
            start_num = int(canonical_register(start.strip())[1:])
            end_num = int(canonical_register(end.strip())[1:])
            regs.extend(Reg(f"r{n}") for n in range(start_num, end_num + 1))
        elif item:
            regs.append(Reg(canonical_register(item)))
    return regs


def _split_top_level(text: str) -> list[str]:
    """Split on commas that are not inside brackets or braces."""
    tokens: list[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        if ch == "," and depth == 0:
            tokens.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        tokens.append("".join(current).strip())
    return [tok for tok in tokens if tok]


def _parse_shift_amount(text: str) -> int:
    match = _IMM_RE.match(text.strip())
    if not match:
        raise ValueError(f"bad shift amount {text!r}")
    return int(match.group(1), 0)


def _parse_operand(token: str):
    token = token.strip()
    if _REGISTER_RE.match(token):
        return Reg(canonical_register(token))
    imm = _IMM_RE.match(token)
    if imm:
        return Imm(int(imm.group(1), 0))
    if token.startswith("["):
        return _parse_mem(token)
    # Bare word: branch-target label (e.g. for bx it's a register, but
    # bx is handled by the register case above).
    return Label(token)


def _parse_mem(token: str) -> Mem:
    if not token.endswith("]"):
        raise ValueError(f"bad memory operand {token!r}")
    inner = token[1:-1].strip()
    parts = [part.strip() for part in inner.split(",")]
    base = Reg(canonical_register(parts[0]))
    if len(parts) == 1:
        return Mem(base=base)
    second = parts[1]
    imm = _IMM_RE.match(second)
    if imm:
        return Mem(base=base, disp=int(imm.group(1), 0))
    index = Reg(canonical_register(second))
    scale = 1
    if len(parts) == 3:
        shift_match = re.match(r"^lsl\s+#(\d+)$", parts[2], re.IGNORECASE)
        if not shift_match:
            raise ValueError(f"bad index shift {parts[2]!r}")
        scale = 1 << int(shift_match.group(1))
    return Mem(base=base, index=index, scale=scale)
