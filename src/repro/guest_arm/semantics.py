"""Single-source semantics for the ARM32 subset.

``execute(instr, state, alu)`` mutates ``state`` through the
:class:`~repro.isa.state.MachineState` protocol and returns a
:class:`~repro.isa.state.StepOutcome`.  The same code runs concretely
(ints) and symbolically (IR expressions) depending on the ALU passed in.

Flag conventions implemented (ARM ARM):

* ``N`` = bit 31 of the result, ``Z`` = result == 0.
* addition: ``C`` = carry out, ``V`` = signed overflow.
* subtraction (including ``cmp``): ``C`` = NOT borrow (1 when the
  unsigned first operand >= second), ``V`` = signed overflow.  Note this
  is the *opposite* C polarity from x86 — the mismatch the paper's
  condition-code analysis has to reason about.
* flag-setting logical ops update only ``N`` and ``Z`` (shifter carry is
  not modeled; our compiler never emits flag-setting shifted logicals).
"""

from __future__ import annotations

from repro.guest_arm.isa import split_mnemonic
from repro.guest_arm.registers import register_number
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg, SymImm
from repro.isa.state import BranchKind, BranchOutcome, StepOutcome

_WORD = 4


def conditions(cond: str, state, alu):
    """Evaluate an ARM condition code to a 1-bit truth value."""
    flag_n = state.get_flag("N")
    flag_z = state.get_flag("Z")
    flag_c = state.get_flag("C")
    flag_v = state.get_flag("V")
    if cond == "eq":
        return flag_z
    if cond == "ne":
        return alu.bool_not(flag_z)
    if cond == "mi":
        return flag_n
    if cond == "pl":
        return alu.bool_not(flag_n)
    if cond == "hs":
        return flag_c
    if cond == "lo":
        return alu.bool_not(flag_c)
    if cond == "hi":
        return alu.bool_and(flag_c, alu.bool_not(flag_z))
    if cond == "ls":
        return alu.bool_or(alu.bool_not(flag_c), flag_z)
    if cond == "ge":
        return alu.bool_not(alu.xor(flag_n, flag_v))
    if cond == "lt":
        return alu.xor(flag_n, flag_v)
    if cond == "gt":
        return alu.bool_and(
            alu.bool_not(flag_z), alu.bool_not(alu.xor(flag_n, flag_v))
        )
    if cond == "le":
        return alu.bool_or(flag_z, alu.xor(flag_n, flag_v))
    raise ValueError(f"unknown condition {cond!r}")


def _operand_value(op, state, alu):
    """Value of a register / immediate / flexible second operand."""
    if isinstance(op, Imm):
        return alu.const(32, op.value)
    if isinstance(op, SymImm):
        return state.imm_value(op.expr)
    if isinstance(op, Reg):
        return state.get_reg(op.name)
    if isinstance(op, ShiftedReg):
        value = state.get_reg(op.reg.name)
        amount = alu.const(32, op.amount)
        if op.shift == "lsl":
            return alu.shl(value, amount)
        if op.shift == "lsr":
            return alu.lshr(value, amount)
        return alu.ashr(value, amount)
    raise TypeError(f"bad data operand {op!r}")


def _address(mem: Mem, state, alu):
    if mem.base is not None:
        addr = state.get_reg(mem.base.name)
    else:
        addr = alu.const(32, 0)
    if mem.index is not None:
        index = state.get_reg(mem.index.name)
        if mem.scale != 1:
            index = alu.shl(index, alu.const(32, mem.scale.bit_length() - 1))
        addr = alu.add(addr, index)
    if mem.disp:
        addr = alu.add(addr, alu.const(32, mem.disp))
    if mem.disp_param is not None:
        addr = alu.add(addr, state.imm_value(mem.disp_param))
    return addr


def _set_nz(state, alu, result) -> None:
    state.set_flag("N", alu.extract(31, 31, result))
    state.set_flag("Z", alu.eq(result, alu.const(32, 0)))


def _set_add_flags(state, alu, a, b, result) -> None:
    _set_nz(state, alu, result)
    state.set_flag("C", alu.ult(result, a))
    overflow = alu.and_(alu.xor(a, result), alu.not_(alu.xor(a, b)))
    state.set_flag("V", alu.extract(31, 31, overflow))


def _set_sub_flags(state, alu, a, b, result) -> None:
    _set_nz(state, alu, result)
    state.set_flag("C", alu.bool_not(alu.ult(a, b)))  # NOT borrow
    overflow = alu.and_(alu.xor(a, b), alu.xor(a, result))
    state.set_flag("V", alu.extract(31, 31, overflow))


def execute(instr: Instruction, state, alu) -> StepOutcome:
    """Execute one ARM instruction against ``state`` via ``alu``."""
    base, cond, sets_flags = split_mnemonic(instr.mnemonic)
    ops = instr.operands

    if base == "b":
        taken = alu.const(1, 1) if cond is None else conditions(cond, state, alu)
        return StepOutcome(BranchOutcome(taken, ops[0], BranchKind.JUMP))
    if base == "bl":
        return_addr = alu.add(state.get_reg("pc"), alu.const(32, _WORD))
        state.set_reg("lr", return_addr)
        return StepOutcome(BranchOutcome(alu.const(1, 1), ops[0], BranchKind.CALL))
    if base == "bx":
        target = state.get_reg(ops[0].name)
        kind = BranchKind.RETURN if ops[0] == Reg("lr") else BranchKind.INDIRECT
        return StepOutcome(BranchOutcome(alu.const(1, 1), target, kind))

    if base == "push":
        regs = sorted((op.name for op in ops if isinstance(op, Reg)),
                      key=register_number)
        sp = state.get_reg("sp")
        sp = alu.sub(sp, alu.const(32, _WORD * len(regs)))
        state.set_reg("sp", sp)
        for i, name in enumerate(regs):
            slot = alu.add(sp, alu.const(32, _WORD * i))
            state.store(slot, state.get_reg(name), _WORD)
        return StepOutcome()
    if base == "pop":
        regs = sorted((op.name for op in ops if isinstance(op, Reg)),
                      key=register_number)
        sp = state.get_reg("sp")
        branch = None
        for i, name in enumerate(regs):
            slot = alu.add(sp, alu.const(32, _WORD * i))
            value = state.load(slot, _WORD)
            if name == "pc":
                branch = BranchOutcome(alu.const(1, 1), value, BranchKind.RETURN)
            else:
                state.set_reg(name, value)
        state.set_reg("sp", alu.add(sp, alu.const(32, _WORD * len(regs))))
        return StepOutcome(branch)

    if base in ("ldr", "ldrb"):
        dest = ops[0]
        mem = ops[1]
        addr = _address(mem, state, alu)
        if base == "ldr":
            value = state.load(addr, 4)
        else:
            value = alu.zext(32, state.load(addr, 1))
        state.set_reg(dest.name, value)
        return StepOutcome()
    if base in ("str", "strb"):
        source = state.get_reg(ops[0].name)
        addr = _address(ops[1], state, alu)
        if base == "str":
            state.store(addr, source, 4)
        else:
            state.store(addr, alu.extract(7, 0, source), 1)
        return StepOutcome()

    if base in ("cmp", "cmn", "tst", "teq"):
        a = state.get_reg(ops[0].name)
        b = _operand_value(ops[1], state, alu)
        if base == "cmp":
            _set_sub_flags(state, alu, a, b, alu.sub(a, b))
        elif base == "cmn":
            _set_add_flags(state, alu, a, b, alu.add(a, b))
        elif base == "tst":
            _set_nz(state, alu, alu.and_(a, b))
        else:  # teq
            _set_nz(state, alu, alu.xor(a, b))
        return StepOutcome()

    # Remaining bases are register-writing data instructions; handle the
    # optional predication by blending with the old destination value.
    result, flag_setter = _data_result(base, ops, state, alu)
    dest: Reg = ops[0]
    if cond is not None:
        taken = conditions(cond, state, alu)
        result = alu.ite(taken, result, state.get_reg(dest.name))
        state.set_reg(dest.name, result)
        return StepOutcome()
    state.set_reg(dest.name, result)
    if sets_flags and flag_setter is not None:
        flag_setter()
    return StepOutcome()


def _data_result(base: str, ops, state, alu):
    """Compute the result value of a data instruction.

    Returns ``(result, flag_setter)`` where ``flag_setter`` applies the
    flag updates for the ``s`` form (or None when the form has none).
    """
    if base in ("mov", "mvn"):
        value = _operand_value(ops[1], state, alu)
        if base == "mvn":
            value = alu.not_(value)
        return value, lambda: _set_nz(state, alu, value)

    if base in ("lsl", "lsr", "asr"):
        value = state.get_reg(ops[1].name)
        amount = _operand_value(ops[2], state, alu)
        if isinstance(ops[2], Reg):
            # Register-specified shifts use the low byte of the register.
            amount = alu.zext(32, alu.extract(7, 0, amount))
        shifted = {
            "lsl": alu.shl,
            "lsr": alu.lshr,
            "asr": alu.ashr,
        }[base](value, amount)
        return shifted, lambda: _set_nz(state, alu, shifted)

    a = state.get_reg(ops[1].name)
    b = _operand_value(ops[2], state, alu)
    if base == "add":
        result = alu.add(a, b)
        return result, lambda: _set_add_flags(state, alu, a, b, result)
    if base == "sub":
        result = alu.sub(a, b)
        return result, lambda: _set_sub_flags(state, alu, a, b, result)
    if base == "rsb":
        result = alu.sub(b, a)
        return result, lambda: _set_sub_flags(state, alu, b, a, result)
    if base == "mul":
        result = alu.mul(a, b)
        return result, lambda: _set_nz(state, alu, result)
    if base == "sdiv":
        return alu.sdiv(a, b), None
    if base == "udiv":
        return alu.udiv(a, b), None
    if base in ("and", "orr", "eor", "bic"):
        result = {
            "and": alu.and_,
            "orr": alu.or_,
            "eor": alu.xor,
            "bic": lambda x, y: alu.and_(x, alu.not_(y)),
        }[base](a, b)
        return result, lambda: _set_nz(state, alu, result)
    raise ValueError(f"unhandled ARM data opcode {base!r}")
