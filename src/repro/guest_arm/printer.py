"""UAL-syntax printing for ARM instructions."""

from __future__ import annotations

from repro.guest_arm.isa import split_mnemonic
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg


def format_operand(op) -> str:
    if isinstance(op, Reg):
        return op.name
    if isinstance(op, Imm):
        return f"#{op.value}"
    if isinstance(op, ShiftedReg):
        return f"{op.reg.name}, {op.shift} #{op.amount}"
    if isinstance(op, Label):
        return op.name
    if isinstance(op, Mem):
        return _format_mem(op)
    raise TypeError(f"bad ARM operand {op!r}")


def _format_mem(mem: Mem) -> str:
    parts = [mem.base.name if mem.base else "r0"]
    if mem.index is not None:
        parts.append(mem.index.name)
        if mem.scale != 1:
            parts.append(f"lsl #{mem.scale.bit_length() - 1}")
    elif mem.disp:
        parts.append(f"#{mem.disp}")
    return "[" + ", ".join(parts) + "]"


def format_instruction(instr: Instruction) -> str:
    base, _, _ = split_mnemonic(instr.mnemonic)
    if base in ("push", "pop"):
        regs = ", ".join(op.name for op in instr.operands if isinstance(op, Reg))
        return f"{instr.mnemonic} {{{regs}}}"
    if not instr.operands:
        return instr.mnemonic
    operands = ", ".join(format_operand(op) for op in instr.operands)
    return f"{instr.mnemonic} {operands}"


def format_program(instructions, labels: dict[str, int] | None = None) -> str:
    """Render a listing; ``labels`` maps label name -> instruction index."""
    by_index: dict[int, list[str]] = {}
    for name, index in (labels or {}).items():
        by_index.setdefault(index, []).append(name)
    lines: list[str] = []
    for i, instr in enumerate(instructions):
        for name in by_index.get(i, []):
            lines.append(f"{name}:")
        lines.append(f"    {format_instruction(instr)}")
    for name in by_index.get(len(instructions), []):
        lines.append(f"{name}:")
    return "\n".join(lines)
