"""ARM32 guest ISA model (the paper's guest architecture).

A curated subset of ARMv7-A user-mode integer instructions — the ones
compilers emit for C code — with full NZCV condition-code semantics,
UAL-syntax parsing/printing, and single-source semantics that run both
concretely and symbolically (see :mod:`repro.isa.alu`).
"""

from repro.guest_arm.registers import (
    ALL_REGISTERS,
    CALLEE_SAVED,
    FLAG_NAMES,
    GENERAL_REGISTERS,
    LR,
    PC,
    SP,
)
from repro.guest_arm.isa import (
    branch_condition,
    defined_flags,
    defined_registers,
    is_branch,
    is_call,
    is_indirect_branch,
    is_predicated,
    is_return,
    opcode_id,
    split_mnemonic,
    used_flags,
    used_registers,
)
from repro.guest_arm.parser import parse_instruction, parse_program
from repro.guest_arm.semantics import conditions, execute

__all__ = [
    "ALL_REGISTERS",
    "CALLEE_SAVED",
    "FLAG_NAMES",
    "GENERAL_REGISTERS",
    "LR",
    "PC",
    "SP",
    "branch_condition",
    "defined_flags",
    "defined_registers",
    "is_branch",
    "is_call",
    "is_indirect_branch",
    "is_predicated",
    "is_return",
    "opcode_id",
    "split_mnemonic",
    "used_flags",
    "used_registers",
    "parse_instruction",
    "parse_program",
    "conditions",
    "execute",
]
