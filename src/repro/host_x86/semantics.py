"""Single-source semantics for the IA-32 subset.

Flag conventions implemented (Intel SDM, restricted to OF/SF/ZF/CF):

* ``add``: CF = carry out; OF = signed overflow.
* ``sub``/``cmp``/``neg``: CF = *borrow* (1 when unsigned a < b) — the
  opposite polarity of ARM's C — and OF = signed overflow.
* logic ops and ``test``: CF = OF = 0.
* ``inc``/``dec``: CF preserved, OF/SF/ZF updated.
* shifts: CF = last bit shifted out; OF is left unmodeled (undefined
  for counts > 1 architecturally, and nothing in our corpus reads it
  after a shift); a zero count leaves all flags unchanged.
* ``imul``: OF = CF = high-part-significant; SF/ZF architecturally
  undefined and left unchanged.
"""

from __future__ import annotations

from repro.host_x86.isa import (
    CMOV_OPS,
    CONDITIONS,
    JCC_OPS,
    SETCC_OPS,
    branch_condition,
)
from repro.host_x86.registers import is_low8, parent_of
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, SymImm
from repro.isa.state import BranchKind, BranchOutcome, StepOutcome

_WORD = 4


def conditions(cond: str, state, alu):
    """Evaluate an x86 condition code to a 1-bit truth value."""
    flag_of = state.get_flag("OF")
    flag_sf = state.get_flag("SF")
    flag_zf = state.get_flag("ZF")
    flag_cf = state.get_flag("CF")
    if cond == "o":
        return flag_of
    if cond == "no":
        return alu.bool_not(flag_of)
    if cond == "e":
        return flag_zf
    if cond == "ne":
        return alu.bool_not(flag_zf)
    if cond == "s":
        return flag_sf
    if cond == "ns":
        return alu.bool_not(flag_sf)
    if cond == "b":
        return flag_cf
    if cond == "ae":
        return alu.bool_not(flag_cf)
    if cond == "a":
        return alu.bool_and(alu.bool_not(flag_cf), alu.bool_not(flag_zf))
    if cond == "be":
        return alu.bool_or(flag_cf, flag_zf)
    if cond == "l":
        return alu.xor(flag_sf, flag_of)
    if cond == "ge":
        return alu.bool_not(alu.xor(flag_sf, flag_of))
    if cond == "g":
        return alu.bool_and(
            alu.bool_not(flag_zf), alu.bool_not(alu.xor(flag_sf, flag_of))
        )
    if cond == "le":
        return alu.bool_or(flag_zf, alu.xor(flag_sf, flag_of))
    raise ValueError(f"unknown condition {cond!r}")


def _address(mem: Mem, state, alu):
    if mem.base is not None:
        addr = state.get_reg(mem.base.name)
    else:
        addr = alu.const(32, 0)
    if mem.index is not None:
        index = state.get_reg(mem.index.name)
        if mem.scale != 1:
            index = alu.shl(index, alu.const(32, mem.scale.bit_length() - 1))
        addr = alu.add(addr, index)
    if mem.disp:
        addr = alu.add(addr, alu.const(32, mem.disp))
    if mem.disp_param is not None:
        addr = alu.add(addr, state.imm_value(mem.disp_param))
    return addr


def _read(op, state, alu, size: int = 4):
    """Read a source operand (register / immediate / memory)."""
    if isinstance(op, Imm):
        return alu.const(32, op.value) if size == 4 else alu.const(8, op.value)
    if isinstance(op, SymImm):
        value = state.imm_value(op.expr)
        return value if size == 4 else alu.extract(7, 0, value)
    if isinstance(op, Reg):
        if is_low8(op.name):
            return alu.extract(7, 0, state.get_reg(parent_of(op.name)))
        return state.get_reg(op.name)
    if isinstance(op, Mem):
        return state.load(_address(op, state, alu), size)
    raise TypeError(f"bad source operand {op!r}")


def _write(op, value, state, alu, size: int = 4) -> None:
    """Write a destination operand (register / memory)."""
    if isinstance(op, Reg):
        if is_low8(op.name):
            parent = parent_of(op.name)
            old = state.get_reg(parent)
            high = alu.and_(old, alu.const(32, 0xFFFFFF00))
            state.set_reg(parent, alu.or_(high, alu.zext(32, value)))
        else:
            state.set_reg(op.name, value)
        return
    if isinstance(op, Mem):
        state.store(_address(op, state, alu), value, size)
        return
    raise TypeError(f"bad destination operand {op!r}")


def _set_szf(state, alu, result) -> None:
    state.set_flag("SF", alu.extract(31, 31, result))
    state.set_flag("ZF", alu.eq(result, alu.const(32, 0)))


def _set_add_flags(state, alu, a, b, result) -> None:
    _set_szf(state, alu, result)
    state.set_flag("CF", alu.ult(result, a))
    overflow = alu.and_(alu.xor(a, result), alu.not_(alu.xor(a, b)))
    state.set_flag("OF", alu.extract(31, 31, overflow))


def _set_sub_flags(state, alu, a, b, result) -> None:
    _set_szf(state, alu, result)
    state.set_flag("CF", alu.ult(a, b))  # borrow — inverse of ARM C
    overflow = alu.and_(alu.xor(a, b), alu.xor(a, result))
    state.set_flag("OF", alu.extract(31, 31, overflow))


def _set_logic_flags(state, alu, result) -> None:
    _set_szf(state, alu, result)
    state.set_flag("CF", alu.const(1, 0))
    state.set_flag("OF", alu.const(1, 0))


def execute(instr: Instruction, state, alu) -> StepOutcome:
    """Execute one x86 instruction against ``state`` via ``alu``."""
    name = instr.mnemonic
    ops = instr.operands

    cond = branch_condition(instr)
    if cond is not None:
        taken = conditions(cond, state, alu)
        return StepOutcome(BranchOutcome(taken, ops[0], BranchKind.JUMP))
    if name == "jmp":
        if isinstance(ops[0], Label):
            return StepOutcome(BranchOutcome(alu.const(1, 1), ops[0], BranchKind.JUMP))
        target = _read(ops[0], state, alu)
        return StepOutcome(BranchOutcome(alu.const(1, 1), target, BranchKind.INDIRECT))
    if name == "call":
        esp = alu.sub(state.get_reg("esp"), alu.const(32, _WORD))
        state.set_reg("esp", esp)
        return_addr = alu.add(state.get_reg("pc"), alu.const(32, 1))
        state.store(esp, return_addr, _WORD)
        if isinstance(ops[0], Label):
            return StepOutcome(BranchOutcome(alu.const(1, 1), ops[0], BranchKind.CALL))
        target = _read(ops[0], state, alu)
        return StepOutcome(BranchOutcome(alu.const(1, 1), target, BranchKind.CALL))
    if name == "ret":
        esp = state.get_reg("esp")
        target = state.load(esp, _WORD)
        state.set_reg("esp", alu.add(esp, alu.const(32, _WORD)))
        return StepOutcome(BranchOutcome(alu.const(1, 1), target, BranchKind.RETURN))

    if name == "pushl":
        esp = alu.sub(state.get_reg("esp"), alu.const(32, _WORD))
        state.set_reg("esp", esp)
        state.store(esp, _read(ops[0], state, alu), _WORD)
        return StepOutcome()
    if name == "popl":
        esp = state.get_reg("esp")
        _write(ops[0], state.load(esp, _WORD), state, alu)
        state.set_reg("esp", alu.add(esp, alu.const(32, _WORD)))
        return StepOutcome()

    if name == "movl":
        _write(ops[1], _read(ops[0], state, alu), state, alu)
        return StepOutcome()
    if name == "movb":
        value = _read(ops[0], state, alu, size=1)
        _write(ops[1], value, state, alu, size=1)
        return StepOutcome()
    if name in ("movzbl", "movsbl"):
        value = _read(ops[0], state, alu, size=1)
        if name == "movzbl":
            extended = alu.zext(32, value)
        else:
            extended = alu.sext_from(8, 32, value)
        _write(ops[1], extended, state, alu)
        return StepOutcome()
    if name == "leal":
        _write(ops[1], _address(ops[0], state, alu), state, alu)
        return StepOutcome()

    if name in ("addl", "subl", "imull", "andl", "orl", "xorl"):
        src = _read(ops[0], state, alu)
        dst = _read(ops[1], state, alu)
        if name == "addl":
            result = alu.add(dst, src)
            _set_add_flags(state, alu, dst, src, result)
        elif name == "subl":
            result = alu.sub(dst, src)
            _set_sub_flags(state, alu, dst, src, result)
        elif name == "imull":
            result = alu.mul(dst, src)
            # OF/CF: set when the full signed product does not fit.
            significant = alu.mul_overflow_signed(dst, src)
            state.set_flag("OF", significant)
            state.set_flag("CF", significant)
        else:
            result = {
                "andl": alu.and_,
                "orl": alu.or_,
                "xorl": alu.xor,
            }[name](dst, src)
            _set_logic_flags(state, alu, result)
        _write(ops[1], result, state, alu)
        return StepOutcome()

    if name in ("cmpl", "testl"):
        src = _read(ops[0], state, alu)
        dst = _read(ops[1], state, alu)
        if name == "cmpl":
            _set_sub_flags(state, alu, dst, src, alu.sub(dst, src))
        else:
            _set_logic_flags(state, alu, alu.and_(dst, src))
        return StepOutcome()

    if name in ("negl", "notl", "incl", "decl"):
        value = _read(ops[0], state, alu)
        if name == "negl":
            result = alu.neg(value)
            _set_sub_flags(state, alu, alu.const(32, 0), value, result)
        elif name == "notl":
            result = alu.not_(value)
        elif name == "incl":
            result = alu.add(value, alu.const(32, 1))
            _set_szf(state, alu, result)
            overflow = alu.eq(value, alu.const(32, 0x7FFFFFFF))
            state.set_flag("OF", overflow)
        else:
            result = alu.sub(value, alu.const(32, 1))
            _set_szf(state, alu, result)
            overflow = alu.eq(value, alu.const(32, 0x80000000))
            state.set_flag("OF", overflow)
        _write(ops[0], result, state, alu)
        return StepOutcome()

    if name in ("shll", "shrl", "sarl"):
        return _execute_shift(name, ops, state, alu)

    if name == "cltd":
        eax = state.get_reg("eax")
        sign = alu.ashr(eax, alu.const(32, 31))
        state.set_reg("edx", sign)
        return StepOutcome()
    if name == "idivl":
        divisor = _read(ops[0], state, alu)
        quotient, remainder = alu.divmod_signed_64(
            state.get_reg("edx"), state.get_reg("eax"), divisor
        )
        state.set_reg("eax", quotient)
        state.set_reg("edx", remainder)
        return StepOutcome()

    if name in CMOV_OPS:
        taken = conditions(name[4:], state, alu)
        src = _read(ops[0], state, alu)
        dst = _read(ops[1], state, alu)
        _write(ops[1], alu.ite(taken, src, dst), state, alu)
        return StepOutcome()

    if name in SETCC_OPS:
        taken = conditions(name[3:], state, alu)
        value = alu.ite(taken, alu.const(8, 1), alu.const(8, 0))
        _write(ops[0], value, state, alu, size=1)
        return StepOutcome()

    raise ValueError(f"unhandled x86 opcode {name!r}")


def _execute_shift(name: str, ops, state, alu) -> StepOutcome:
    count_op, dest = ops
    value = _read(dest, state, alu)
    if isinstance(count_op, SymImm):
        # Parameterized shift count (rule templates): general form with
        # the zero-count flag-preservation handled via ite.
        count = alu.and_(state.imm_value(count_op.expr), alu.const(32, 31))
        shifter = {"shll": alu.shl, "shrl": alu.lshr, "sarl": alu.ashr}[name]
        result = shifter(value, count)
        is_zero = alu.eq(count, alu.const(32, 0))
        prior = alu.sub(count, alu.const(32, 1))
        if name == "shll":
            last_out = alu.extract(31, 31, alu.shl(value, prior))
        else:
            last_out = alu.extract(0, 0, shifter(value, prior))
        _set_szf_conditional(state, alu, result, is_zero)
        state.set_flag("CF", alu.ite(is_zero, state.get_flag("CF"), last_out))
        _write(dest, alu.ite(is_zero, value, result), state, alu)
        return StepOutcome()
    if isinstance(count_op, Imm):
        count = count_op.value & 31
        if count == 0:
            return StepOutcome()
        count_val = alu.const(32, count)
        if name == "shll":
            result = alu.shl(value, count_val)
            last_out = alu.extract(31, 31, alu.shl(value, alu.const(32, count - 1)))
        elif name == "shrl":
            result = alu.lshr(value, count_val)
            last_out = alu.extract(0, 0, alu.lshr(value, alu.const(32, count - 1)))
        else:
            result = alu.ashr(value, count_val)
            last_out = alu.extract(0, 0, alu.ashr(value, alu.const(32, count - 1)))
        _set_szf(state, alu, result)
        state.set_flag("CF", last_out)
        _write(dest, result, state, alu)
        return StepOutcome()
    # Count in %cl: mask to 5 bits; zero count leaves flags unchanged.
    count = alu.and_(
        alu.zext(32, alu.extract(7, 0, state.get_reg("ecx"))), alu.const(32, 31)
    )
    shifter = {"shll": alu.shl, "shrl": alu.lshr, "sarl": alu.ashr}[name]
    result = shifter(value, count)
    is_zero_count = alu.eq(count, alu.const(32, 0))
    prior = alu.sub(count, alu.const(32, 1))
    if name == "shll":
        last_out = alu.extract(31, 31, alu.shl(value, prior))
    else:
        last_out = alu.extract(0, 0, shifter(value, prior))
    _set_szf_conditional(state, alu, result, is_zero_count)
    state.set_flag(
        "CF", alu.ite(is_zero_count, state.get_flag("CF"), last_out)
    )
    _write(dest, alu.ite(is_zero_count, value, result), state, alu)
    return StepOutcome()


def _set_szf_conditional(state, alu, result, skip) -> None:
    new_sf = alu.extract(31, 31, result)
    new_zf = alu.eq(result, alu.const(32, 0))
    state.set_flag("SF", alu.ite(skip, state.get_flag("SF"), new_sf))
    state.set_flag("ZF", alu.ite(skip, state.get_flag("ZF"), new_zf))
