"""AT&T-syntax printing for x86 instructions."""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg


def format_operand(op) -> str:
    if isinstance(op, Reg):
        return f"%{op.name}"
    if isinstance(op, Imm):
        value = op.value
        return f"$0x{value:x}" if value >= 10 else f"${value}"
    if isinstance(op, Label):
        return op.name
    if isinstance(op, Mem):
        return _format_mem(op)
    raise TypeError(f"bad x86 operand {op!r}")


def _format_mem(mem: Mem) -> str:
    disp = ""
    if mem.disp:
        disp = f"-0x{-mem.disp:x}" if mem.disp < 0 else f"0x{mem.disp:x}"
    inner = []
    inner.append(f"%{mem.base.name}" if mem.base else "")
    if mem.index is not None:
        inner.append(f"%{mem.index.name}")
        if mem.scale != 1:
            inner.append(str(mem.scale))
    body = ",".join(inner).rstrip(",")
    return f"{disp}({body})"


def format_instruction(instr: Instruction) -> str:
    if not instr.operands:
        return instr.mnemonic
    operands = ", ".join(format_operand(op) for op in instr.operands)
    return f"{instr.mnemonic} {operands}"


def format_program(instructions, labels: dict[str, int] | None = None) -> str:
    """Render a listing; ``labels`` maps label name -> instruction index."""
    by_index: dict[int, list[str]] = {}
    for name, index in (labels or {}).items():
        by_index.setdefault(index, []).append(name)
    lines: list[str] = []
    for i, instr in enumerate(instructions):
        for name in by_index.get(i, []):
            lines.append(f"{name}:")
        lines.append(f"    {format_instruction(instr)}")
    for name in by_index.get(len(instructions), []):
        lines.append(f"{name}:")
    return "\n".join(lines)
