"""IA-32 register file and EFLAGS definitions."""

from __future__ import annotations

GENERAL_REGISTERS = ("eax", "ecx", "edx", "ebx", "esi", "edi", "ebp", "esp")

# Low-byte aliases (we model only the four classic ones).
LOW8_TO_PARENT = {"al": "eax", "cl": "ecx", "dl": "edx", "bl": "ebx"}

ALL_REGISTERS = GENERAL_REGISTERS + tuple(LOW8_TO_PARENT)

# cdecl: ebx/esi/edi/ebp callee-saved, eax/ecx/edx scratch.
CALLEE_SAVED = ("ebx", "esi", "edi", "ebp")
RETURN_REGISTER = "eax"

FLAG_NAMES = ("OF", "SF", "ZF", "CF")


def canonical_register(name: str) -> str:
    name = name.lower().lstrip("%")
    if name not in ALL_REGISTERS:
        raise ValueError(f"unknown x86 register {name!r}")
    return name


def is_low8(name: str) -> bool:
    """True for 8-bit register names.

    Besides the architectural aliases (al/cl/dl/bl), rule templates use
    the convention ``<param>.b`` for "low byte of the register bound to
    param" — e.g. ``movzbl %p0.b, %p1``.
    """
    return name in LOW8_TO_PARENT or name.endswith(".b")


def parent_of(name: str) -> str:
    """The 32-bit register containing an 8-bit alias (identity for
    full-width names)."""
    if name.endswith(".b"):
        return name[:-2]
    return LOW8_TO_PARENT.get(name, name)
