"""IA-32 opcode metadata: classification, defs/uses, flag behaviour.

Operand order is AT&T: source first, destination last.
"""

from __future__ import annotations

from repro.host_x86.registers import parent_of
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg

CONDITIONS = ("e", "ne", "s", "ns", "l", "ge", "g", "le", "b", "ae", "a",
              "be", "o", "no")

CONDITION_FLAGS: dict[str, tuple[str, ...]] = {
    "o": ("OF",),
    "no": ("OF",),
    "e": ("ZF",),
    "ne": ("ZF",),
    "s": ("SF",),
    "ns": ("SF",),
    "l": ("SF", "OF"),
    "ge": ("SF", "OF"),
    "g": ("ZF", "SF", "OF"),
    "le": ("ZF", "SF", "OF"),
    "b": ("CF",),
    "ae": ("CF",),
    "a": ("CF", "ZF"),
    "be": ("CF", "ZF"),
}

# src, dst two-operand ALU forms (dst also read except for movl).
BINARY_OPS = ("movl", "addl", "subl", "imull", "andl", "orl", "xorl")
UNARY_OPS = ("negl", "notl", "incl", "decl")
SHIFT_OPS = ("shll", "shrl", "sarl")
EXTEND_OPS = ("movzbl", "movsbl")
BYTE_OPS = ("movb",)
COMPARE_OPS = ("cmpl", "testl")
LEA_OPS = ("leal",)
DIV_OPS = ("cltd", "idivl")
STACK_OPS = ("pushl", "popl")
FLOW_OPS = ("jmp", "call", "ret")
JCC_OPS = tuple(f"j{cond}" for cond in CONDITIONS)
CMOV_OPS = tuple(f"cmov{cond}" for cond in CONDITIONS)
SETCC_OPS = tuple(f"set{cond}" for cond in CONDITIONS)

ALL_OPCODES = (
    BINARY_OPS + UNARY_OPS + SHIFT_OPS + EXTEND_OPS + BYTE_OPS + COMPARE_OPS
    + LEA_OPS + DIV_OPS + STACK_OPS + FLOW_OPS + JCC_OPS + CMOV_OPS
    + SETCC_OPS
)

_OPCODE_IDS = {name: index + 1 for index, name in enumerate(ALL_OPCODES)}

# Everything that writes OF/SF/ZF/CF "normally" (the full set).
_FULL_FLAG_WRITERS = (
    "addl", "subl", "cmpl", "negl",
)
_LOGIC_FLAG_WRITERS = ("andl", "orl", "xorl", "testl")  # OF=CF=0, SF/ZF real


def opcode_id(instr: Instruction) -> int:
    """Stable small integer per opcode (rule-store hash key)."""
    return _OPCODE_IDS[instr.mnemonic]


def branch_condition(instr: Instruction) -> str | None:
    if instr.mnemonic in JCC_OPS:
        return instr.mnemonic[1:]
    return None


def is_branch(instr: Instruction) -> bool:
    return instr.mnemonic in FLOW_OPS or instr.mnemonic in JCC_OPS


def is_call(instr: Instruction) -> bool:
    return instr.mnemonic == "call"


def is_return(instr: Instruction) -> bool:
    return instr.mnemonic == "ret"


def is_indirect_branch(instr: Instruction) -> bool:
    if instr.mnemonic == "ret":
        return True
    if instr.mnemonic in ("jmp", "call"):
        return bool(instr.operands) and not isinstance(instr.operands[0], Label)
    return False


def is_predicated(instr: Instruction) -> bool:
    """cmovCC is x86's analogue of ARM predication."""
    return instr.mnemonic in CMOV_OPS


def _operand_regs(op) -> tuple[str, ...]:
    if isinstance(op, Reg):
        return (parent_of(op.name),)
    if isinstance(op, Mem):
        return tuple(reg.name for reg in op.registers())
    return ()


def defined_registers(instr: Instruction) -> tuple[str, ...]:
    name = instr.mnemonic
    ops = instr.operands
    if name in BINARY_OPS or name in SHIFT_OPS or name in EXTEND_OPS or (
        name in BYTE_OPS
    ) or name in LEA_OPS or name in CMOV_OPS:
        dst = ops[-1]
        if isinstance(dst, Reg):
            return (parent_of(dst.name),)
        return ()
    if name in UNARY_OPS:
        return (parent_of(ops[0].name),) if isinstance(ops[0], Reg) else ()
    if name in SETCC_OPS:
        return (parent_of(ops[0].name),) if isinstance(ops[0], Reg) else ()
    if name == "cltd":
        return ("edx",)
    if name == "idivl":
        return ("eax", "edx")
    if name == "pushl":
        return ("esp",)
    if name == "popl":
        dst = (parent_of(ops[0].name),) if ops and isinstance(ops[0], Reg) else ()
        return ("esp",) + dst
    if name == "call":
        return ("esp",)
    if name == "ret":
        return ("esp",)
    return ()


def used_registers(instr: Instruction) -> tuple[str, ...]:
    name = instr.mnemonic
    ops = instr.operands
    used: list[str] = []

    def add(names) -> None:
        for reg in names:
            if reg not in used:
                used.append(reg)

    if name == "movl" or name in EXTEND_OPS or name in BYTE_OPS or name in LEA_OPS:
        add(_operand_regs(ops[0]))
        if isinstance(ops[-1], Mem):
            add(_operand_regs(ops[-1]))
    elif name in BINARY_OPS:  # add/sub/... read both operands
        for op in ops:
            add(_operand_regs(op))
    elif name in UNARY_OPS:
        for op in ops:
            add(_operand_regs(op))
    elif name in SHIFT_OPS:
        for op in ops:
            add(_operand_regs(op))
    elif name in COMPARE_OPS:
        for op in ops:
            add(_operand_regs(op))
    elif name in CMOV_OPS:
        for op in ops:
            add(_operand_regs(op))  # dst read too (may keep old value)
    elif name in SETCC_OPS:
        add(_operand_regs(ops[0]))  # byte write: the rest of dst survives
    elif name == "cltd":
        add(("eax",))
    elif name == "idivl":
        add(("eax", "edx"))
        add(_operand_regs(ops[0]))
    elif name == "pushl":
        add(("esp",))
        add(_operand_regs(ops[0]))
    elif name == "popl":
        add(("esp",))
    elif name in ("jmp", "call"):
        if ops and not isinstance(ops[0], Label):
            add(_operand_regs(ops[0]))
        if name == "call":
            add(("esp",))
    elif name == "ret":
        add(("esp",))
    return tuple(used)


def defined_flags(instr: Instruction) -> tuple[str, ...]:
    name = instr.mnemonic
    if name in _FULL_FLAG_WRITERS:
        return ("OF", "SF", "ZF", "CF")
    if name in _LOGIC_FLAG_WRITERS:
        return ("OF", "SF", "ZF", "CF")  # OF/CF cleared = still written
    if name in ("incl", "decl"):
        return ("OF", "SF", "ZF")  # CF preserved
    if name in SHIFT_OPS:
        return ("SF", "ZF", "CF")  # OF left unmodeled/undefined
    if name == "imull":
        return ("OF", "CF")
    if name == "notl":
        return ()
    return ()


def used_flags(instr: Instruction) -> tuple[str, ...]:
    cond = branch_condition(instr)
    if cond is not None:
        return CONDITION_FLAGS[cond]
    if instr.mnemonic in CMOV_OPS:
        return CONDITION_FLAGS[instr.mnemonic[4:]]
    if instr.mnemonic in SETCC_OPS:
        return CONDITION_FLAGS[instr.mnemonic[3:]]
    return ()
