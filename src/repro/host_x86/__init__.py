"""IA-32 host ISA model (the paper's host architecture).

A curated subset of 32-bit x86 integer instructions in AT&T syntax —
what compilers emit for C — with OF/SF/ZF/CF EFLAGS semantics,
parsing/printing, and single-source semantics over the ALU abstraction.
"""

from repro.host_x86.registers import (
    ALL_REGISTERS,
    FLAG_NAMES,
    GENERAL_REGISTERS,
    LOW8_TO_PARENT,
)
from repro.host_x86.isa import (
    branch_condition,
    defined_flags,
    defined_registers,
    is_branch,
    is_call,
    is_indirect_branch,
    is_predicated,
    is_return,
    opcode_id,
    used_flags,
    used_registers,
)
from repro.host_x86.parser import parse_instruction, parse_program
from repro.host_x86.semantics import conditions, execute

__all__ = [
    "ALL_REGISTERS",
    "FLAG_NAMES",
    "GENERAL_REGISTERS",
    "LOW8_TO_PARENT",
    "branch_condition",
    "defined_flags",
    "defined_registers",
    "is_branch",
    "is_call",
    "is_indirect_branch",
    "is_predicated",
    "is_return",
    "opcode_id",
    "used_flags",
    "used_registers",
    "parse_instruction",
    "parse_program",
    "conditions",
    "execute",
]
