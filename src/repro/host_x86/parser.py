"""AT&T-syntax parser for the IA-32 subset.

Supports the forms the MiniC backend emits plus ``#`` comments with the
same ``line=`` / ``var=`` debug annotations as the ARM parser::

    movl -0x4(%ecx,%eax,4), %eax   # line=42 var=buf
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.host_x86.isa import ALL_OPCODES
from repro.host_x86.registers import canonical_register
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg

_REG_RE = re.compile(r"^%([a-z]+[0-9]*)$", re.IGNORECASE)
_IMM_RE = re.compile(r"^\$(-?(?:0x[0-9a-f]+|\d+))$", re.IGNORECASE)
_MEM_RE = re.compile(
    r"^(-?(?:0x[0-9a-f]+|\d+))?\(([^)]*)\)$", re.IGNORECASE
)


@dataclass
class ParsedProgram:
    """A parsed assembly listing: instructions plus label positions."""

    instructions: list[Instruction]
    labels: dict[str, int]


def parse_program(text: str) -> ParsedProgram:
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        while True:
            label_match = re.match(r"^([.\w$]+):\s*(.*)$", line)
            if not label_match:
                break
            labels[label_match.group(1)] = len(instructions)
            line = label_match.group(2).strip()
        if line:
            instructions.append(parse_instruction(line))
    return ParsedProgram(instructions, labels)


def parse_instruction(text: str) -> Instruction:
    """Parse a single AT&T-syntax instruction."""
    text, annotations = _strip_comment(text)
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    if mnemonic not in ALL_OPCODES:
        raise ValueError(f"unknown x86 mnemonic {mnemonic!r}")
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = _parse_operands(mnemonic, operand_text)
    var = annotations.get("var")
    if var is not None:
        operands = [
            op.with_var(var) if isinstance(op, Mem) else op for op in operands
        ]
    line = annotations.get("line")
    return Instruction(
        mnemonic,
        tuple(operands),
        line=int(line) if line is not None else None,
    )


def _strip_comment(text: str) -> tuple[str, dict[str, str]]:
    annotations: dict[str, str] = {}
    if "#" in text:
        # Careful: '#' never appears inside AT&T operands (imm is '$').
        text, comment = text.split("#", 1)
        for match in re.finditer(r"(\w+)=([^\s,]+)", comment):
            annotations[match.group(1)] = match.group(2)
    return text.strip(), annotations


def _parse_operands(mnemonic: str, text: str) -> list:
    text = text.strip()
    if not text:
        return []
    if mnemonic in ("jmp", "call") or mnemonic.startswith("j"):
        token = text.strip()
        if _REG_RE.match(token) or token.startswith("*"):
            return [_parse_operand(token.lstrip("*"))]
        return [Label(token)]
    tokens = _split_top_level(text)
    return [_parse_operand(tok) for tok in tokens]


def _split_top_level(text: str) -> list[str]:
    tokens: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            tokens.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        tokens.append("".join(current).strip())
    return [tok for tok in tokens if tok]


def _parse_operand(token: str):
    token = token.strip()
    reg = _REG_RE.match(token)
    if reg:
        return Reg(canonical_register(reg.group(1)))
    imm = _IMM_RE.match(token)
    if imm:
        return Imm(int(imm.group(1), 0))
    mem = _MEM_RE.match(token)
    if mem:
        return _parse_mem(mem)
    raise ValueError(f"bad x86 operand {token!r}")


def _parse_mem(match: re.Match) -> Mem:
    disp = int(match.group(1), 0) if match.group(1) else 0
    inner = match.group(2).strip()
    base = index = None
    scale = 1
    if inner:
        parts = [part.strip() for part in inner.split(",")]
        if parts[0]:
            base = Reg(canonical_register(parts[0]))
        if len(parts) >= 2 and parts[1]:
            index = Reg(canonical_register(parts[1]))
        if len(parts) == 3 and parts[2]:
            scale = int(parts[2], 0)
    return Mem(base=base, index=index, scale=scale, disp=disp)
