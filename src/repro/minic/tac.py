"""MiniC three-address intermediate representation (TAC).

TAC is the compiler's analogue of LLVM's machine-specific IR in the
paper: it is what the optimization passes transform, what the backends
select instructions from, and the layer where memory operands carry the
*IR variable names* the learner later uses to map guest and host memory
operands (paper Section 3.2).

Values are virtual registers (strings like ``%t3``) or Python int
immediates.  Memory addresses are structured (:class:`TAddr`) so
backends can fuse them into real addressing modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

Value = str | int  # virtual register name or immediate

BIN_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "u>>")
CMP_OPS = ("==", "!=", "<", "<=", ">", ">=", "u<", "u<=", "u>", "u>=")
UN_OPS = ("neg", "not")


@dataclass(frozen=True)
class TAddr:
    """A structured address: ``symbol/base + index * scale + disp``.

    ``symbol`` names a global or stack slot (resolved by the backend);
    ``base``/``index`` are virtual registers.  ``var`` is the IR
    variable name attached for the learner.
    """

    base: str | None = None
    index: str | None = None
    scale: int = 1
    disp: int = 0
    symbol: str | None = None
    var: str | None = None

    def with_disp(self, disp: int) -> "TAddr":
        return replace(self, disp=disp)

    def values(self) -> tuple[str, ...]:
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return tuple(regs)

    def __str__(self) -> str:
        parts = []
        if self.symbol:
            parts.append(self.symbol)
        if self.base:
            parts.append(self.base)
        if self.index:
            parts.append(f"{self.index}*{self.scale}" if self.scale != 1 else
                         self.index)
        body = "+".join(parts) or "0"
        if self.disp:
            body += f"{self.disp:+d}"
        return f"[{body}]"


@dataclass
class Instr:
    """One TAC instruction.

    ``op`` determines which fields are meaningful:

    ======== ==========================================================
    op       fields
    ======== ==========================================================
    const    dest, a (int)
    copy     dest, a
    bin      dest, bin_op, a, b
    un       dest, bin_op (the unary op), a
    load     dest, addr, size
    store    addr, a, size
    la       dest, addr (symbol-only address)
    call     dest (or None), name, args
    ret      a (or None)
    jmp      label
    cbr      bin_op (a CMP op), a, b, label (true), label2 (false)
    select   dest, bin_op (CMP), a, b, tval, fval
    label    label
    ======== ==========================================================
    """

    op: str
    line: int
    dest: str | None = None
    bin_op: str | None = None
    a: Value | None = None
    b: Value | None = None
    addr: TAddr | None = None
    size: int = 4
    name: str | None = None
    args: tuple[Value, ...] = ()
    label: str | None = None
    label2: str | None = None
    tval: Value | None = None
    fval: Value | None = None

    def uses(self) -> tuple[str, ...]:
        """Virtual registers this instruction reads."""
        used: list[str] = []

        def add(value) -> None:
            if isinstance(value, str) and value not in used:
                used.append(value)

        for value in (self.a, self.b, self.tval, self.fval):
            add(value)
        for value in self.args:
            add(value)
        if self.addr is not None:
            for reg in self.addr.values():
                add(reg)
        return tuple(used)

    def replace_uses(self, mapping: dict[str, Value]) -> None:
        """Rewrite register uses in place via ``mapping``."""

        def sub(value):
            if isinstance(value, str):
                return mapping.get(value, value)
            return value

        self.a = sub(self.a)
        self.b = sub(self.b)
        self.tval = sub(self.tval)
        self.fval = sub(self.fval)
        self.args = tuple(sub(arg) for arg in self.args)
        if self.addr is not None:
            base = self.addr.base
            index = self.addr.index
            new_base = mapping.get(base, base) if base else base
            new_index = mapping.get(index, index) if index else index
            if new_base is not base or new_index is not index:
                # Addresses can only hold registers; constant folds into
                # disp when possible.
                addr = self.addr
                if isinstance(new_base, int):
                    addr = replace(addr, base=None, disp=addr.disp + new_base)
                elif new_base is not base:
                    addr = replace(addr, base=new_base)
                if isinstance(new_index, int):
                    addr = replace(
                        addr, index=None, disp=addr.disp + new_index * addr.scale
                    )
                elif new_index is not index:
                    addr = replace(addr, index=new_index)
                self.addr = addr

    def __str__(self) -> str:
        if self.op == "const":
            return f"{self.dest} = {self.a}"
        if self.op == "copy":
            return f"{self.dest} = {self.a}"
        if self.op == "bin":
            return f"{self.dest} = {self.a} {self.bin_op} {self.b}"
        if self.op == "un":
            return f"{self.dest} = {self.bin_op} {self.a}"
        if self.op == "load":
            return f"{self.dest} = load{self.size} {self.addr}"
        if self.op == "store":
            return f"store{self.size} {self.a} -> {self.addr}"
        if self.op == "la":
            return f"{self.dest} = la {self.addr}"
        if self.op == "call":
            prefix = f"{self.dest} = " if self.dest else ""
            args = ", ".join(str(arg) for arg in self.args)
            return f"{prefix}call {self.name}({args})"
        if self.op == "ret":
            return f"ret {self.a}" if self.a is not None else "ret"
        if self.op == "jmp":
            return f"jmp {self.label}"
        if self.op == "cbr":
            return (f"if {self.a} {self.bin_op} {self.b} "
                    f"goto {self.label} else {self.label2}")
        if self.op == "select":
            return (f"{self.dest} = ({self.a} {self.bin_op} {self.b}) "
                    f"? {self.tval} : {self.fval}")
        if self.op == "label":
            return f"{self.label}:"
        return self.op


@dataclass
class StackSlot:
    """A stack-allocated object (local array or unpromoted scalar)."""

    name: str
    size: int
    elem_size: int
    is_array: bool
    var: str  # source variable name (learner annotation)


@dataclass
class TacFunction:
    """One function in TAC form."""

    name: str
    params: list[str]  # virtual registers holding incoming arguments
    instrs: list[Instr] = field(default_factory=list)
    slots: dict[str, StackSlot] = field(default_factory=dict)
    temp_counter: int = 0
    label_counter: int = 0
    line: int = 0
    returns_value: bool = True

    def new_temp(self) -> str:
        self.temp_counter += 1
        return f"%t{self.temp_counter}"

    def new_label(self, hint: str = "L") -> str:
        self.label_counter += 1
        return f".{hint}{self.label_counter}_{self.name}"


@dataclass
class GlobalData:
    """A global object and its initial contents."""

    name: str
    size: int
    elem_size: int
    init: list[int] = field(default_factory=list)


@dataclass
class TacProgram:
    functions: dict[str, TacFunction] = field(default_factory=dict)
    globals: dict[str, GlobalData] = field(default_factory=dict)

    def dump(self) -> str:
        lines: list[str] = []
        for func in self.functions.values():
            params = ", ".join(func.params)
            lines.append(f"func {func.name}({params}):")
            for slot in func.slots.values():
                lines.append(f"    slot {slot.name}[{slot.size}]")
            for instr in func.instrs:
                indent = "" if instr.op == "label" else "    "
                lines.append(f"{indent}{instr}")
        return "\n".join(lines)
