"""MiniC code-generation backends (ARM32 and IA-32)."""

from repro.minic.backend.mach import MachineBuilder, MachineFunction, TargetInfo
from repro.minic.backend.regalloc import RegisterAllocationError, allocate

__all__ = [
    "MachineBuilder",
    "MachineFunction",
    "TargetInfo",
    "RegisterAllocationError",
    "allocate",
]
