"""ARM32 instruction selection and frame finalization.

Lowers TAC to the ARM subset of :mod:`repro.guest_arm`.  AAPCS-flavoured
ABI: arguments in r0-r3, result in r0, r4-r11 callee-saved.  Integer
division calls the runtime helpers ``__aeabi_idiv`` / ``__aeabi_idivmod``
exactly like real ARM compilers do (there is no udiv/sdiv in our
baseline profile), which is what routes division source lines into the
learner's "call" rejection bucket.

Codegen styles:

* ``llvm`` — allocation order r0..r10, shifted-operand fusion at -O1+.
* ``gcc``  — allocation order r3,r2,r1,r0,r4..r10 (different live-in
  register names for the same code), ``rsb`` for reversed subtraction.
"""

from __future__ import annotations

from repro.guest_arm import isa as arm_isa
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg
from repro.minic.backend.mach import MachineBuilder, MachineFunction, TargetInfo
from repro.minic.errors import SemanticError
from repro.minic.tac import Instr, TacFunction, TAddr

_CALLER_SAVED = ("r0", "r1", "r2", "r3", "r12")
_CALLEE_SAVED = tuple(f"r{i}" for i in range(4, 11))
_CMP_TO_COND = {
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    "u<": "lo", "u<=": "ls", "u>": "hi", "u>=": "hs",
}
_MASK = 0xFFFFFFFF


def arm_imm_ok(value: int) -> bool:
    """Is ``value`` an ARM modified immediate (8 bits, even rotation)?"""
    value &= _MASK
    for rotation in range(0, 32, 2):
        rotated = ((value << rotation) | (value >> (32 - rotation))) & _MASK
        if rotated < 256:
            return True
    return False


def target_info(style: str) -> TargetInfo:
    if style == "gcc":
        order = ("r3", "r2", "r1", "r0") + _CALLEE_SAVED
    else:
        order = ("r0", "r1", "r2", "r3") + _CALLEE_SAVED
    return TargetInfo(
        name=f"arm-{style}",
        alloc_order=order,
        callee_saved=_CALLEE_SAVED,
        caller_saved=_CALLER_SAVED,
        low8_regs=(),
        defs=arm_isa.defined_registers,
        uses=arm_isa.used_registers,
        is_branch=arm_isa.is_branch,
        branch_condition=arm_isa.branch_condition,
        is_call=arm_isa.is_call,
        spill_load=lambda reg, off: Instruction(
            "ldr", (Reg(reg), Mem(base=Reg("sp"), disp=off, var="spill"))
        ),
        spill_store=lambda reg, off: Instruction(
            "str", (Reg(reg), Mem(base=Reg("sp"), disp=off, var="spill"))
        ),
    )


class ArmSelector:
    """Selects ARM instructions for one TAC function."""

    def __init__(self, func: TacFunction, style: str, opt_level: int,
                 global_addrs: dict[str, int]) -> None:
        self.tac = func
        self.style = style
        self.opt_level = opt_level
        self.global_addrs = global_addrs
        self.builder = MachineBuilder(func.name, line=func.line)
        self.slot_offsets: dict[str, int] = {}
        self.temp_counter = 0
        self.fused: set[int] = set()
        self.shl_defs: dict[str, tuple[int, str, int]] = {}
        self.epilogue = f".Lep_{func.name}"
        offset = 0
        for slot in func.slots.values():
            self.slot_offsets[slot.name] = offset
            offset += (slot.size + 3) & ~3
        self.builder.func.frame_slots = offset
        self.builder.func.returns_value = func.returns_value

    # -- helpers ---------------------------------------------------------------

    def new_temp(self) -> str:
        self.temp_counter += 1
        return f"%m{self.temp_counter}"

    def emit(self, mnemonic: str, *operands, line=None, meta=None):
        return self.builder.emit(mnemonic, *operands, line=line, meta=meta)

    def value_reg(self, value, line: int) -> Reg:
        """Materialize a TAC value into a (virtual) register."""
        if isinstance(value, str):
            return Reg(value)
        temp = self.new_temp()
        self.emit("mov", Reg(temp), Imm(value), line=line)
        return Reg(temp)

    def flexible(self, value, line: int):
        """A register or encodable immediate for a data instruction."""
        if isinstance(value, int) and arm_imm_ok(value):
            return Imm(value)
        return self.value_reg(value, line)

    def address(self, taddr: TAddr, line: int) -> Mem:
        """Lower a TAC address to an ARM addressing mode, emitting any
        needed address arithmetic."""
        base: Reg | None = None
        disp = taddr.disp
        if taddr.symbol is not None:
            if taddr.symbol in self.slot_offsets:
                base = Reg("sp")
                disp += self.slot_offsets[taddr.symbol]
            else:
                addr = self.global_addrs[taddr.symbol]
                temp = self.new_temp()
                self.emit("mov", Reg(temp), Imm(addr + disp), line=line)
                base = Reg(temp)
                disp = 0
        if taddr.base is not None:
            if base is None:
                base = Reg(taddr.base)
            else:
                temp = self.new_temp()
                self.emit("add", Reg(temp), base, Reg(taddr.base), line=line)
                base = Reg(temp)
        if base is None:
            temp = self.new_temp()
            self.emit("mov", Reg(temp), Imm(disp), line=line)
            return Mem(base=Reg(temp), var=taddr.var)
        if taddr.index is not None:
            index = Reg(taddr.index)
            if disp:
                # ARM has no [base, index, lsl #s] + disp mode: fold the
                # scaled index into the base first (paper Figure 2(a)).
                temp = self.new_temp()
                if taddr.scale != 1:
                    shift = taddr.scale.bit_length() - 1
                    self.emit("add", Reg(temp), base,
                              ShiftedReg(index, "lsl", shift), line=line)
                else:
                    self.emit("add", Reg(temp), base, index, line=line)
                return self._mem_disp(Reg(temp), disp, taddr.var, line)
            return Mem(base=base, index=index, scale=taddr.scale, var=taddr.var)
        return self._mem_disp(base, disp, taddr.var, line)

    def _mem_disp(self, base: Reg, disp: int, var, line: int) -> Mem:
        if -4095 <= disp <= 4095:
            return Mem(base=base, disp=disp, var=var)
        temp = self.new_temp()
        self.emit("mov", Reg(temp), Imm(disp), line=line)
        temp2 = self.new_temp()
        self.emit("add", Reg(temp2), base, Reg(temp), line=line)
        return Mem(base=Reg(temp2), var=var)

    # -- selection ------------------------------------------------------------

    def select(self) -> MachineFunction:
        if len(self.tac.params) > 4:
            raise SemanticError(
                f"{self.tac.name}: more than 4 parameters are not supported"
            )
        self._find_fusions()
        for i, vreg in enumerate(self.tac.params):
            self.emit("mov", Reg(vreg), Reg(f"r{i}"), line=self.tac.line)
        for index, instr in enumerate(self.tac.instrs):
            if index in self.fused:
                continue
            self._select_instr(index, instr)
        self.builder.mark(self.epilogue)
        return self.builder.func

    def _find_fusions(self) -> None:
        """Single-use shl feeding add/sub -> shifted second operand."""
        if self.opt_level < 1:
            return
        use_counts: dict[str, int] = {}
        for instr in self.tac.instrs:
            for use in instr.uses():
                use_counts[use] = use_counts.get(use, 0) + 1
        defs: dict[str, tuple[int, Instr]] = {}
        for index, instr in enumerate(self.tac.instrs):
            if instr.op == "bin" and instr.bin_op == "<<" and \
                    isinstance(instr.b, int) and 0 < instr.b < 32 and \
                    isinstance(instr.a, str):
                defs[instr.dest] = (index, instr)
            if instr.op == "bin" and instr.bin_op in ("+", "-"):
                operand = instr.b if isinstance(instr.b, str) else None
                if operand and operand in defs and use_counts[operand] == 1:
                    shl_index, shl_instr = defs[operand]
                    if self._fusable_range(shl_index, index, defs[operand][1].a):
                        self.fused.add(shl_index)
                        self.shl_defs[operand] = (
                            shl_index, shl_instr.a, shl_instr.b
                        )

    def _fusable_range(self, start: int, end: int, source: str) -> bool:
        """The shifted source must stay in the same block and must not
        be redefined between the shift and its consumer."""
        for instr in self.tac.instrs[start + 1 : end]:
            if instr.op in ("label", "jmp", "cbr", "ret", "call"):
                return False
            if instr.dest == source:
                return False
        return True

    def _shifted_operand(self, name: str):
        """The fused ShiftedReg for a vreg, if one was recorded."""
        fusion = self.shl_defs.get(name)
        if fusion is None:
            return None
        _, source, amount = fusion
        return ShiftedReg(Reg(source), "lsl", amount)

    def _select_instr(self, index: int, instr: Instr) -> None:
        line = instr.line
        op = instr.op
        if op == "label":
            self.builder.mark(instr.label)
            return
        if op == "const":
            self.emit("mov", Reg(instr.dest), Imm(instr.a), line=line)
            return
        if op == "copy":
            if isinstance(instr.a, int):
                self.emit("mov", Reg(instr.dest), Imm(instr.a), line=line)
            else:
                self.emit("mov", Reg(instr.dest), Reg(instr.a), line=line)
            return
        if op == "bin":
            self._select_bin(instr, line)
            return
        if op == "un":
            source = self.value_reg(instr.a, line)
            if instr.bin_op == "neg":
                self.emit("rsb", Reg(instr.dest), source, Imm(0), line=line)
            else:
                self.emit("mvn", Reg(instr.dest), source, line=line)
            return
        if op == "load":
            mem = self.address(instr.addr, line)
            mnemonic = "ldr" if instr.size == 4 else "ldrb"
            self.emit(mnemonic, Reg(instr.dest), mem, line=line)
            return
        if op == "store":
            source = self.value_reg(instr.a, line)
            mem = self.address(instr.addr, line)
            mnemonic = "str" if instr.size == 4 else "strb"
            self.emit(mnemonic, source, mem, line=line)
            return
        if op == "la":
            taddr = instr.addr
            if taddr.symbol in self.slot_offsets:
                offset = self.slot_offsets[taddr.symbol] + taddr.disp
                self.emit("add", Reg(instr.dest), Reg("sp"),
                          self.flexible(offset, line), line=line)
            else:
                addr = self.global_addrs[taddr.symbol] + taddr.disp
                self.emit("mov", Reg(instr.dest), Imm(addr), line=line)
            return
        if op == "call":
            self._select_call(instr, line)
            return
        if op == "ret":
            if instr.a is not None and self.tac.returns_value:
                if isinstance(instr.a, int):
                    self.emit("mov", Reg("r0"), Imm(instr.a), line=line)
                else:
                    self.emit("mov", Reg("r0"), Reg(instr.a), line=line)
                meta = {"uses_regs": ("r0",)}
            else:
                meta = None
            self.emit("b", Label(self.epilogue), line=line, meta=meta)
            self.builder.next_block()
            return
        if op == "jmp":
            self.emit("b", Label(instr.label), line=line)
            self.builder.next_block()
            return
        if op == "cbr":
            cond = _CMP_TO_COND[instr.bin_op]
            left = self.value_reg(instr.a, line)
            right = self.flexible(instr.b, line)
            self.emit("cmp", left, right, line=line)
            self.emit(f"b{cond}", Label(instr.label), line=line)
            self.emit("b", Label(instr.label2), line=line)
            self.builder.next_block()
            return
        if op == "select":
            cond = _CMP_TO_COND[instr.bin_op]
            left = self.value_reg(instr.a, line)
            right = self.flexible(instr.b, line)
            self.emit("cmp", left, right, line=line)
            self.emit("mov", Reg(instr.dest), self.flexible(instr.fval, line),
                      line=line)
            self.emit(f"mov{cond}", Reg(instr.dest),
                      self.flexible(instr.tval, line), line=line)
            return
        raise SemanticError(f"ARM backend: unhandled TAC op {op!r}")

    def _select_bin(self, instr: Instr, line: int) -> None:
        op = instr.bin_op
        dest = Reg(instr.dest)
        if op in ("/", "%"):
            self._select_division(instr, line)
            return
        if op in ("<<", ">>", "u>>"):
            mnemonic = {"<<": "lsl", ">>": "asr", "u>>": "lsr"}[op]
            source = self.value_reg(instr.a, line)
            if isinstance(instr.b, int):
                amount = Imm(instr.b & 31)
            else:
                amount = Reg(instr.b)
            self.emit(mnemonic, dest, source, amount, line=line)
            return
        if op == "-" and isinstance(instr.a, int) and isinstance(instr.b, str):
            # c - x -> rsb
            self.emit("rsb", dest, Reg(instr.b), self.flexible(instr.a, line),
                      line=line)
            return
        mnemonics = {"+": "add", "-": "sub", "*": "mul", "&": "and",
                     "|": "orr", "^": "eor"}
        mnemonic = mnemonics[op]
        left = self.value_reg(instr.a, line)
        if op == "*":
            right = self.value_reg(instr.b, line)
        else:
            fused = (
                self._shifted_operand(instr.b)
                if isinstance(instr.b, str) and op in ("+", "-")
                else None
            )
            right = fused if fused is not None else self.flexible(instr.b, line)
        self.emit(mnemonic, dest, left, right, line=line)

    def _select_division(self, instr: Instr, line: int) -> None:
        helper = "__aeabi_idiv" if instr.bin_op == "/" else "__aeabi_idivmod"
        self.emit("mov", Reg("r0"), self._move_operand(instr.a, line), line=line)
        self.emit("mov", Reg("r1"), self._move_operand(instr.b, line), line=line)
        self.emit(
            "bl", Label(helper), line=line,
            meta={"uses_regs": ("r0", "r1"), "clobbers": _CALLER_SAVED},
        )
        result = "r0" if instr.bin_op == "/" else "r1"
        self.emit("mov", Reg(instr.dest), Reg(result), line=line)

    def _move_operand(self, value, line: int):
        if isinstance(value, int):
            return Imm(value)
        return Reg(value)

    def _select_call(self, instr: Instr, line: int) -> None:
        if len(instr.args) > 4:
            raise SemanticError(
                f"call to {instr.name} with more than 4 arguments"
            )
        for i, arg in enumerate(instr.args):
            self.emit("mov", Reg(f"r{i}"), self._move_operand(arg, line),
                      line=line)
        arg_regs = tuple(f"r{i}" for i in range(len(instr.args)))
        self.emit(
            "bl", Label(instr.name), line=line,
            meta={"uses_regs": arg_regs, "clobbers": _CALLER_SAVED},
        )
        if instr.dest is not None:
            self.emit("mov", Reg(instr.dest), Reg("r0"), line=line)


def finalize(func: MachineFunction, has_calls: bool) -> None:
    """Insert prologue/epilogue after allocation and fix label offsets."""
    frame = func.frame_slots + func.spill_bytes
    frame = (frame + 7) & ~7
    saved = list(func.used_callee_saved)
    push_lr = has_calls
    prologue: list[Instruction] = []
    if saved or push_lr:
        regs = tuple(Reg(name) for name in saved)
        if push_lr:
            regs += (Reg("lr"),)
        prologue.append(Instruction("push", regs))
    if frame:
        prologue.append(Instruction("sub", (Reg("sp"), Reg("sp"), Imm(frame))))
    epilogue: list[Instruction] = []
    if frame:
        epilogue.append(Instruction("add", (Reg("sp"), Reg("sp"), Imm(frame))))
    if saved or push_lr:
        regs = tuple(Reg(name) for name in saved)
        if push_lr:
            regs += (Reg("pc"),)
            epilogue.append(Instruction("pop", regs))
        else:
            epilogue.append(Instruction("pop", regs))
            epilogue.append(Instruction("bx", (Reg("lr"),)))
    else:
        epilogue.append(Instruction("bx", (Reg("lr"),)))
    shift = len(prologue)
    func.labels = {name: pos + shift for name, pos in func.labels.items()}
    func.instrs = prologue + func.instrs + epilogue
