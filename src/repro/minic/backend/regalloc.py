"""Linear-scan register allocation shared by both backends.

Operates on machine code with virtual registers, using per-ISA metadata
(defs/uses) plus ABI annotations carried in ``Instruction.meta``:

* ``meta["uses_regs"]`` — extra physical registers an instruction reads
  (e.g. ``bl`` reading ARM argument registers),
* ``meta["clobbers"]`` — physical registers it destroys (calls clobber
  the caller-saved set).

Physical registers participate in liveness like virtual ones, so fixed
sequences (x86 ``mov/cltd/idivl``, ARM argument marshalling) are
protected without any special pre-coloring machinery.  Allocation
failures are resolved by spilling the failing register to the frame and
re-running; spill code uses fresh short-lived virtual registers, so no
scratch register needs to be reserved.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.minic.backend.mach import (
    MachineFunction,
    TargetInfo,
    is_vreg,
    rewrite_registers,
)

_MAX_ROUNDS = 60


class RegisterAllocationError(Exception):
    """Could not allocate registers even after spilling."""


def _effective_uses(instr: Instruction, target: TargetInfo) -> tuple[str, ...]:
    uses = list(target.uses(instr))
    if instr.meta:
        uses.extend(instr.meta.get("uses_regs", ()))
    return tuple(uses)


def _effective_defs(instr: Instruction, target: TargetInfo) -> tuple[str, ...]:
    defs = list(target.defs(instr))
    if instr.meta:
        defs.extend(instr.meta.get("clobbers", ()))
    return tuple(defs)


def _blocks(func: MachineFunction, target: TargetInfo) -> list[tuple[int, int]]:
    leaders = {0}
    for pos in func.labels.values():
        leaders.add(pos)
    for index, instr in enumerate(func.instrs):
        if target.is_branch(instr) and index + 1 < len(func.instrs):
            leaders.add(index + 1)
    ordered = sorted(p for p in leaders if p < len(func.instrs))
    return [
        (start, ordered[i + 1] if i + 1 < len(ordered) else len(func.instrs))
        for i, start in enumerate(ordered)
    ]


def _successors(func: MachineFunction, target: TargetInfo,
                blocks: list[tuple[int, int]]) -> dict[int, list[int]]:
    starts = [start for start, _ in blocks]
    succ: dict[int, list[int]] = {start: [] for start in starts}
    from repro.isa.operands import Label

    for start, end in blocks:
        if end == start:
            continue
        last = func.instrs[end - 1]
        fallthrough = True
        if target.is_call(last):
            # Calls return: plain fallthrough, and the callee's label is
            # NOT a CFG successor (values stay live across the call).
            pass
        elif target.is_branch(last):
            for op in last.operands:
                if isinstance(op, Label) and op.name in func.labels:
                    succ[start].append(func.labels[op.name])
            # Unconditional jump/return: no fallthrough.
            if target.branch_condition(last) is None:
                fallthrough = False
        if fallthrough and end < len(func.instrs):
            succ[start].append(end)
    return succ


def _liveness(func: MachineFunction, target: TargetInfo
              ) -> list[set[str]]:
    """live-in set per instruction position."""
    blocks = _blocks(func, target)
    succ = _successors(func, target, blocks)
    n = len(func.instrs)
    uses_cache = [set(_effective_uses(i, target)) for i in func.instrs]
    defs_cache = [set(_effective_defs(i, target)) for i in func.instrs]
    live_in_block: dict[int, set[str]] = {start: set() for start, _ in blocks}
    changed = True
    while changed:
        changed = False
        for start, end in reversed(blocks):
            live: set[str] = set()
            for next_start in succ[start]:
                live |= live_in_block.get(next_start, set())
            for index in range(end - 1, start - 1, -1):
                live -= defs_cache[index]
                live |= uses_cache[index]
            if live != live_in_block[start]:
                live_in_block[start] = live
                changed = True
    live_in: list[set[str]] = [set() for _ in range(n)]
    for start, end in blocks:
        live: set[str] = set()
        for next_start in succ[start]:
            live |= live_in_block.get(next_start, set())
        for index in range(end - 1, start - 1, -1):
            live -= defs_cache[index]
            live |= uses_cache[index]
            live_in[index] = set(live)
    return live_in


@dataclass
class _Interval:
    name: str
    start: int
    end: int
    needs_low8: bool = False


def _build_intervals(func: MachineFunction, target: TargetInfo
                     ) -> tuple[list[_Interval], dict[str, list[int]]]:
    live_in = _liveness(func, target)
    vreg_positions: dict[str, list[int]] = {}
    phys_busy: dict[str, list[int]] = {}
    for index, instr in enumerate(func.instrs):
        touched = set(live_in[index])
        touched.update(_effective_defs(instr, target))
        touched.update(_effective_uses(instr, target))
        for name in touched:
            bucket = vreg_positions if is_vreg(name) else phys_busy
            bucket.setdefault(name, []).append(index)
    low8 = _low8_requirements(func, target)
    intervals = [
        _Interval(name, positions[0], positions[-1], name in low8)
        for name, positions in vreg_positions.items()
    ]
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    for positions in phys_busy.values():
        positions.sort()
    return intervals, phys_busy


def _low8_requirements(func: MachineFunction, target: TargetInfo) -> set[str]:
    if not target.low8_regs:
        return set()
    needs: set[str] = set()
    for instr in func.instrs:
        if instr.meta and instr.meta.get("needs_low8"):
            needs.update(
                name for name in instr.meta["needs_low8"] if is_vreg(name)
            )
    return needs


def _conflicts(busy: list[int], start: int, end: int) -> bool:
    index = bisect.bisect_left(busy, start)
    return index < len(busy) and busy[index] <= end


def allocate(func: MachineFunction, target: TargetInfo) -> dict[str, str]:
    """Assign physical registers; mutates ``func`` (spill code, operand
    rewriting) and returns the final vreg -> phys mapping."""
    for _ in range(_MAX_ROUNDS):
        intervals, phys_busy = _build_intervals(func, target)
        mapping, failed = _linear_scan(intervals, phys_busy, target)
        if failed is None:
            _apply(func, target, mapping)
            return mapping
        victim = _choose_victim(intervals, mapping, failed, target)
        _spill(func, target, victim)
    raise RegisterAllocationError(
        f"{func.name}: allocation did not converge after {_MAX_ROUNDS} rounds"
    )


def _choose_victim(intervals: list[_Interval], mapping: dict[str, str],
                   failed: _Interval, target: TargetInfo) -> _Interval:
    """Pick what to spill when ``failed`` found no register.

    Spilling the failing interval is pointless when its (possibly
    constrained) candidate registers are all held by *other* long
    intervals at the conflict point — the reload temps would fail the
    same way.  Prefer evicting the longest overlapping unconstrained
    interval that occupies one of the failing interval's candidates.
    """
    candidates = set(
        target.low8_regs if failed.needs_low8 else target.alloc_order
    )

    def pick(allow_low8: bool) -> _Interval | None:
        best: _Interval | None = None
        for interval in intervals:
            if interval.name == failed.name:
                continue
            if interval.needs_low8 and not allow_low8:
                continue
            if interval.name.startswith("%spill"):
                continue
            reg = mapping.get(interval.name)
            if reg not in candidates:
                continue
            if interval.end < failed.start or interval.start > failed.end:
                continue
            if best is None or (interval.end - interval.start) > \
                    (best.end - best.start):
                best = interval
        return best

    best = pick(allow_low8=False)
    if best is None or (best.end - best.start) <= (failed.end - failed.start):
        # No unconstrained long victim: evict a longer byte-constrained
        # interval instead (its reload temps are tiny and will fit).
        fallback = pick(allow_low8=True)
        if fallback is not None and (
            (fallback.end - fallback.start) > (failed.end - failed.start)
            or failed.name.startswith("%spill")
        ):
            return fallback
    if best is not None and (
        (best.end - best.start) > (failed.end - failed.start)
        or failed.name.startswith("%spill")
    ):
        return best
    return failed


def _linear_scan(
    intervals: list[_Interval],
    phys_busy: dict[str, list[int]],
    target: TargetInfo,
) -> tuple[dict[str, str], _Interval | None]:
    mapping: dict[str, str] = {}
    active: list[_Interval] = []
    assigned_end: dict[str, list[_Interval]] = {}
    for interval in intervals:
        active = [iv for iv in active if iv.end >= interval.start]
        candidates = target.low8_regs if interval.needs_low8 else \
            target.alloc_order
        chosen = None
        for reg in candidates:
            if _conflicts(phys_busy.get(reg, []), interval.start, interval.end):
                continue
            conflict = any(
                mapping[iv.name] == reg and iv.end >= interval.start
                for iv in active
            )
            if conflict:
                continue
            chosen = reg
            break
        if chosen is None:
            return mapping, interval
        mapping[interval.name] = chosen
        active.append(interval)
    return mapping, None


def _apply(func: MachineFunction, target: TargetInfo,
           mapping: dict[str, str]) -> None:
    func.instrs = [
        rewrite_registers(instr, mapping) for instr in func.instrs
    ]
    used = set()
    for instr in func.instrs:
        for reg in instr.registers():
            used.add(reg.name)
    for name in mapping.values():
        used.add(name)
    func.used_callee_saved = tuple(
        reg for reg in target.callee_saved if reg in used
    )


def _spill(func: MachineFunction, target: TargetInfo,
           interval: _Interval) -> None:
    """Spill ``interval``'s vreg to the frame and rewrite its accesses."""
    victim = interval.name
    offset = func.frame_slots + func.spill_bytes
    func.spill_bytes += target.word_size
    new_instrs: list[Instruction] = []
    moved: list[tuple[int, int]] = []  # (old position, new position)
    counter = 0
    for old_pos, instr in enumerate(func.instrs):
        uses = victim in _effective_uses(instr, target)
        defines = victim in _effective_defs(instr, target)
        new_pos = len(new_instrs)
        if not uses and not defines:
            new_instrs.append(instr)
            moved.append((old_pos, new_pos))
            continue
        counter += 1
        temp = f"%spill{offset}_{counter}"
        rewritten = rewrite_registers(instr, {victim: temp})
        if rewritten.meta and victim in rewritten.meta.get("needs_low8", ()):
            rewritten.meta["needs_low8"] = tuple(
                temp if name == victim else name
                for name in rewritten.meta["needs_low8"]
            )
        if uses:
            new_instrs.append(target.spill_load(temp, offset))
        new_instrs.append(rewritten)
        if defines:
            new_instrs.append(target.spill_store(temp, offset))
        moved.append((old_pos, new_pos))
    position_map = dict(moved)
    func.labels = {
        name: position_map.get(pos, len(new_instrs))
        for name, pos in func.labels.items()
    }
    func.instrs = new_instrs
