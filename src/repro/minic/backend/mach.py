"""Machine-code containers and target descriptions for the backends.

During instruction selection the backends emit :class:`Instruction`
objects whose register operands may be *virtual* (names starting with
``%``); the register allocator later rewrites them to physical names.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.isa.instruction import Instruction
from repro.isa.operands import Mem, Reg, ShiftedReg


def is_vreg(name: str) -> bool:
    return name.startswith("%")


@dataclass
class TargetInfo:
    """Everything the shared register allocator needs to know about an
    ISA + ABI + codegen style combination."""

    name: str
    alloc_order: tuple[str, ...]
    callee_saved: tuple[str, ...]
    caller_saved: tuple[str, ...]
    low8_regs: tuple[str, ...]  # empty on ARM
    defs: Callable[[Instruction], tuple[str, ...]]
    uses: Callable[[Instruction], tuple[str, ...]]
    is_branch: Callable[[Instruction], bool]
    branch_condition: Callable[[Instruction], str | None]
    is_call: Callable[[Instruction], bool]
    spill_load: Callable[[str, int], Instruction]  # (reg, frame offset)
    spill_store: Callable[[str, int], Instruction]
    word_size: int = 4


@dataclass
class MachineFunction:
    """Machine code for one function, before or after allocation."""

    name: str
    instrs: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    frame_slots: int = 0  # bytes of local-slot area (fixed at ISel)
    spill_bytes: int = 0  # bytes of spill area (set by the allocator)
    used_callee_saved: tuple[str, ...] = ()
    returns_value: bool = True
    line: int = 0

    def label_at(self, index: int) -> list[str]:
        return [name for name, pos in self.labels.items() if pos == index]


class MachineBuilder:
    """Accumulates instructions and label marks during ISel."""

    def __init__(self, name: str, line: int = 0) -> None:
        self.func = MachineFunction(name, line=line)
        self._block = 0

    def emit(self, mnemonic: str, *operands, line: int | None = None,
             meta: dict | None = None) -> Instruction:
        instr = Instruction(
            mnemonic, tuple(operands), line=line, block=self._block, meta=meta
        )
        self.func.instrs.append(instr)
        return instr

    def mark(self, label: str) -> None:
        self.func.labels[label] = len(self.func.instrs)
        self._block += 1

    def next_block(self) -> None:
        self._block += 1


_PARENT_TO_LOW8 = {"eax": "al", "ecx": "cl", "edx": "dl", "ebx": "bl"}


def rewrite_registers(instr: Instruction,
                      mapping: dict[str, str]) -> Instruction:
    """Return ``instr`` with virtual register names replaced.

    A virtual low-byte reference ``%t5.b`` follows its parent: when
    ``%t5`` maps to ``eax`` the reference becomes ``al``.
    """

    def sub_name(name: str) -> str:
        if name.endswith(".b"):
            parent = mapping.get(name[:-2])
            if parent is None:
                return name
            return _PARENT_TO_LOW8.get(parent, f"{parent}.b")
        return mapping.get(name, name)

    def sub_reg(reg: Reg | None) -> Reg | None:
        if reg is None:
            return None
        return Reg(sub_name(reg.name))

    changed = False
    new_ops = []
    for op in instr.operands:
        if isinstance(op, Reg) and sub_name(op.name) != op.name:
            new_ops.append(sub_reg(op))
            changed = True
        elif isinstance(op, ShiftedReg) and sub_name(op.reg.name) != op.reg.name:
            new_ops.append(ShiftedReg(sub_reg(op.reg), op.shift, op.amount))
            changed = True
        elif isinstance(op, Mem) and (
            (op.base and sub_name(op.base.name) != op.base.name)
            or (op.index and sub_name(op.index.name) != op.index.name)
        ):
            new_ops.append(
                Mem(
                    sub_reg(op.base),
                    sub_reg(op.index),
                    op.scale,
                    op.disp,
                    op.var,
                    op.disp_param,
                )
            )
            changed = True
        else:
            new_ops.append(op)
    if not changed:
        return instr
    return replace(instr, operands=tuple(new_ops))
