"""IA-32 instruction selection and frame finalization.

Lowers TAC to the x86 subset of :mod:`repro.host_x86` (AT&T operand
order).  cdecl-flavoured ABI: args on the stack, result in ``eax``,
``ebx``/``esi``/``edi``/``ebp`` callee-saved.

Codegen styles:

* ``llvm`` — frame-pointer-omitted, esp-relative frames, outgoing call
  arguments written with ``movl`` into a pre-allocated area, ``leal``
  used for three-operand adds and scaled-index adds at -O1+.
* ``gcc`` — classic ``ebp`` frames, ``pushl``-based argument passing,
  ``incl``/``decl`` for +-1, plain ``movl``+``addl`` instead of ``leal``.

Frame markers: slot addresses are emitted against the ``FRAME`` pseudo
base register and incoming parameters against ``INCOMING``; both are
rewritten to real esp/ebp-relative addresses in :func:`finalize`, once
the spill area and callee-saved push count are known.
"""

from __future__ import annotations

from dataclasses import replace

from repro.host_x86 import isa as x86_isa
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.minic.backend.mach import MachineBuilder, MachineFunction, TargetInfo
from repro.minic.errors import SemanticError
from repro.minic.tac import Instr, TacFunction, TAddr

_CALLER_SAVED = ("eax", "ecx", "edx")
_CALLEE_SAVED_LLVM = ("ebx", "esi", "edi")          # ebp not used at all
_CALLEE_SAVED_GCC = ("ebx", "esi", "edi")           # ebp is the frame pointer
_LOW8 = ("eax", "ecx", "edx", "ebx")
_CMP_TO_CC = {
    "==": "e", "!=": "ne", "<": "l", "<=": "le", ">": "g", ">=": "ge",
    "u<": "b", "u<=": "be", "u>": "a", "u>=": "ae",
}


def target_info(style: str) -> TargetInfo:
    if style == "gcc":
        order = ("eax", "edx", "ecx", "ebx", "edi", "esi")
    else:
        order = ("eax", "ecx", "edx", "ebx", "esi", "edi")
    return TargetInfo(
        name=f"x86-{style}",
        alloc_order=order,
        callee_saved=_CALLEE_SAVED_GCC if style == "gcc" else _CALLEE_SAVED_LLVM,
        caller_saved=_CALLER_SAVED,
        low8_regs=_LOW8,
        defs=x86_isa.defined_registers,
        uses=x86_isa.used_registers,
        is_branch=x86_isa.is_branch,
        branch_condition=x86_isa.branch_condition,
        is_call=x86_isa.is_call,
        spill_load=lambda reg, off: Instruction(
            "movl", (Mem(base=Reg("FRAME"), disp=off, var="spill"), Reg(reg))
        ),
        spill_store=lambda reg, off: Instruction(
            "movl", (Reg(reg), Mem(base=Reg("FRAME"), disp=off, var="spill"))
        ),
    )


class X86Selector:
    """Selects x86 instructions for one TAC function."""

    def __init__(self, func: TacFunction, style: str, opt_level: int,
                 global_addrs: dict[str, int]) -> None:
        self.tac = func
        self.style = style
        self.opt_level = opt_level
        self.global_addrs = global_addrs
        self.builder = MachineBuilder(func.name, line=func.line)
        self.slot_offsets: dict[str, int] = {}
        self.temp_counter = 0
        self.fused: set[int] = set()
        self.shl_defs: dict[str, tuple[int, str, int]] = {}
        self.epilogue = f".Lep_{func.name}"
        out_args = 0
        if style == "llvm":
            for instr in func.instrs:
                if instr.op == "call":
                    out_args = max(out_args, len(instr.args))
        self.out_arg_bytes = out_args * 4
        offset = self.out_arg_bytes
        for slot in func.slots.values():
            self.slot_offsets[slot.name] = offset
            offset += (slot.size + 3) & ~3
        self.builder.func.frame_slots = offset
        self.builder.func.returns_value = func.returns_value

    # -- helpers -----------------------------------------------------------------

    def new_temp(self) -> str:
        self.temp_counter += 1
        return f"%x{self.temp_counter}"

    def emit(self, mnemonic: str, *operands, line=None, meta=None):
        return self.builder.emit(mnemonic, *operands, line=line, meta=meta)

    def value_reg(self, value, line: int) -> Reg:
        if isinstance(value, str):
            return Reg(value)
        temp = self.new_temp()
        self.emit("movl", Imm(value), Reg(temp), line=line)
        return Reg(temp)

    def operand(self, value, line: int):
        """Immediate or register source operand."""
        if isinstance(value, int):
            return Imm(value)
        return Reg(value)

    def address(self, taddr: TAddr, line: int) -> Mem:
        base: Reg | None = None
        disp = taddr.disp
        if taddr.symbol is not None:
            if taddr.symbol in self.slot_offsets:
                base = Reg("FRAME")
                disp += self.slot_offsets[taddr.symbol]
            else:
                disp += self.global_addrs[taddr.symbol]
        if taddr.base is not None:
            if base is None:
                base = Reg(taddr.base)
            else:
                temp = self.new_temp()
                self.emit("leal", Mem(base=base, disp=disp), Reg(temp),
                          line=line)
                base, disp = Reg(temp), 0
                base_extra = Reg(taddr.base)
                temp2 = self.new_temp()
                self.emit("leal", Mem(base=base, index=base_extra),
                          Reg(temp2), line=line)
                base = Reg(temp2)
        index = Reg(taddr.index) if taddr.index is not None else None
        scale = taddr.scale
        if index is not None and scale not in (1, 2, 4, 8):
            # x86 SIB scales are limited (paper Section 5, host ISA
            # constraints): pre-shift the index.
            shift = scale.bit_length() - 1
            temp = self.new_temp()
            self.emit("movl", index, Reg(temp), line=line)
            self.emit("shll", Imm(shift), Reg(temp), line=line)
            index, scale = Reg(temp), 1
        return Mem(base=base, index=index, scale=scale, disp=disp,
                   var=taddr.var)

    # -- selection --------------------------------------------------------------

    def select(self) -> MachineFunction:
        self._find_fusions()
        for i, vreg in enumerate(self.tac.params):
            self.emit("movl", Mem(base=Reg("INCOMING"), disp=4 * i),
                      Reg(vreg), line=self.tac.line)
        for index, instr in enumerate(self.tac.instrs):
            if index in self.fused:
                continue
            self._select_instr(index, instr)
        self.builder.mark(self.epilogue)
        return self.builder.func

    def _find_fusions(self) -> None:
        """Single-use shl (by 1..3) feeding add -> leal scaled index."""
        if self.opt_level < 1 or self.style != "llvm":
            return
        use_counts: dict[str, int] = {}
        for instr in self.tac.instrs:
            for use in instr.uses():
                use_counts[use] = use_counts.get(use, 0) + 1
        defs: dict[str, tuple[int, Instr]] = {}
        for index, instr in enumerate(self.tac.instrs):
            if instr.op == "bin" and instr.bin_op == "<<" and \
                    isinstance(instr.b, int) and 1 <= instr.b <= 3 and \
                    isinstance(instr.a, str):
                defs[instr.dest] = (index, instr)
            if instr.op == "bin" and instr.bin_op == "+":
                operand = instr.b if isinstance(instr.b, str) else None
                if operand and operand in defs and use_counts[operand] == 1 \
                        and isinstance(instr.a, str):
                    shl_index, shl_instr = defs[operand]
                    if self._fusable_range(shl_index, index, shl_instr.a):
                        self.fused.add(shl_index)
                        self.shl_defs[operand] = (
                            shl_index, shl_instr.a, shl_instr.b
                        )

    def _fusable_range(self, start: int, end: int, source: str) -> bool:
        for instr in self.tac.instrs[start + 1 : end]:
            if instr.op in ("label", "jmp", "cbr", "ret", "call"):
                return False
            if instr.dest == source:
                return False
        return True

    def _select_instr(self, index: int, instr: Instr) -> None:
        line = instr.line
        op = instr.op
        if op == "label":
            self.builder.mark(instr.label)
            return
        if op == "const":
            self.emit("movl", Imm(instr.a), Reg(instr.dest), line=line)
            return
        if op == "copy":
            self.emit("movl", self.operand(instr.a, line), Reg(instr.dest),
                      line=line)
            return
        if op == "bin":
            self._select_bin(instr, line)
            return
        if op == "un":
            self.emit("movl", self.operand(instr.a, line), Reg(instr.dest),
                      line=line)
            mnemonic = "negl" if instr.bin_op == "neg" else "notl"
            self.emit(mnemonic, Reg(instr.dest), line=line)
            return
        if op == "load":
            mem = self.address(instr.addr, line)
            if instr.size == 4:
                self.emit("movl", mem, Reg(instr.dest), line=line)
            else:
                self.emit("movzbl", mem, Reg(instr.dest), line=line)
            return
        if op == "store":
            source = self.value_reg(instr.a, line)
            mem = self.address(instr.addr, line)
            if instr.size == 4:
                self.emit("movl", source, mem, line=line)
            else:
                self.emit("movb", source, mem, line=line,
                          meta={"needs_low8": (source.name,)})
            return
        if op == "la":
            mem = self.address(instr.addr, line)
            self.emit("leal", mem, Reg(instr.dest), line=line)
            return
        if op == "call":
            self._select_call(instr, line)
            return
        if op == "ret":
            meta = None
            if instr.a is not None and self.tac.returns_value:
                self.emit("movl", self.operand(instr.a, line), Reg("eax"),
                          line=line)
                meta = {"uses_regs": ("eax",)}
            self.emit("jmp", Label(self.epilogue), line=line, meta=meta)
            self.builder.next_block()
            return
        if op == "jmp":
            self.emit("jmp", Label(instr.label), line=line)
            self.builder.next_block()
            return
        if op == "cbr":
            self._emit_compare(instr, line)
            self.emit(f"j{_CMP_TO_CC[instr.bin_op]}", Label(instr.label),
                      line=line)
            self.emit("jmp", Label(instr.label2), line=line)
            self.builder.next_block()
            return
        if op == "select":
            self._emit_compare(instr, line)
            self.emit("movl", self.operand(instr.fval, line), Reg(instr.dest),
                      line=line)
            tval = self.value_reg(instr.tval, line)  # cmov needs a register
            self.emit(f"cmov{_CMP_TO_CC[instr.bin_op]}", tval,
                      Reg(instr.dest), line=line)
            return
        raise SemanticError(f"x86 backend: unhandled TAC op {op!r}")

    def _emit_compare(self, instr: Instr, line: int) -> None:
        """cmpl b, a (AT&T order) computing flags of a - b."""
        left = self.value_reg(instr.a, line)
        if isinstance(instr.b, int) and instr.b == 0 and \
                instr.bin_op in ("==", "!="):
            self.emit("testl", left, left, line=line)
            return
        self.emit("cmpl", self.operand(instr.b, line), left, line=line)

    def _select_bin(self, instr: Instr, line: int) -> None:
        op = instr.bin_op
        dest = Reg(instr.dest)
        if op in ("/", "%"):
            self._select_division(instr, line)
            return
        # Two-address hazard: ``movl a, dest`` clobbers ``b`` when the
        # destination register IS ``b`` (``v = t op v``, the shape loop
        # carried updates take after copy propagation).
        hazard = isinstance(instr.b, str) and instr.b == instr.dest
        if op in ("<<", ">>", "u>>"):
            mnemonic = {"<<": "shll", ">>": "sarl", "u>>": "shrl"}[op]
            if isinstance(instr.b, int):
                self.emit("movl", self.operand(instr.a, line), dest,
                          line=line)
                self.emit(mnemonic, Imm(instr.b & 31), dest, line=line)
            else:
                # Save the count before the movl can clobber it.
                self.emit("movl", Reg(instr.b), Reg("ecx"), line=line)
                self.emit("movl", self.operand(instr.a, line), dest,
                          line=line)
                self.emit(mnemonic, Reg("cl"), dest, line=line)
            return
        if hazard and op in ("+", "-", "*", "&", "|", "^"):
            if op == "-":
                if instr.a == instr.b:
                    self.emit("movl", Imm(0), dest, line=line)
                else:
                    # dest = a - dest: negate, then add a.
                    self.emit("negl", dest, line=line)
                    self.emit("addl", self.operand(instr.a, line), dest,
                              line=line)
            else:
                # Commutative: dest already holds b, fold a in.
                mnemonic = {"+": "addl", "*": "imull", "&": "andl",
                            "|": "orl", "^": "xorl"}[op]
                self.emit(mnemonic, self.operand(instr.a, line), dest,
                          line=line)
            return
        if op == "+":
            if self._select_lea_add(instr, line):
                return
            if self.style == "gcc" and instr.b == 1 and \
                    isinstance(instr.a, str):
                self.emit("movl", Reg(instr.a), dest, line=line)
                self.emit("incl", dest, line=line)
                return
        if op == "-" and self.style == "gcc" and instr.b == 1 and \
                isinstance(instr.a, str):
            self.emit("movl", Reg(instr.a), dest, line=line)
            self.emit("decl", dest, line=line)
            return
        mnemonics = {"+": "addl", "-": "subl", "*": "imull", "&": "andl",
                     "|": "orl", "^": "xorl"}
        if op == "-" and isinstance(instr.a, int):
            # c - x: materialize c then subtract.
            self.emit("movl", Imm(instr.a), dest, line=line)
            self.emit("subl", self.operand(instr.b, line), dest, line=line)
            return
        self.emit("movl", self.operand(instr.a, line), dest, line=line)
        self.emit(mnemonics[op], self.operand(instr.b, line), dest, line=line)

    def _select_lea_add(self, instr: Instr, line: int) -> bool:
        """llvm style: use leal for 3-operand adds when profitable."""
        if self.style != "llvm" or self.opt_level < 1:
            return False
        fusion = self.shl_defs.get(instr.b) if isinstance(instr.b, str) else None
        if fusion is not None and isinstance(instr.a, str):
            _, source, shift = fusion
            self.emit(
                "leal",
                Mem(base=Reg(instr.a), index=Reg(source), scale=1 << shift),
                Reg(instr.dest), line=line,
            )
            return True
        if isinstance(instr.a, str) and isinstance(instr.b, str):
            self.emit("leal", Mem(base=Reg(instr.a), index=Reg(instr.b)),
                      Reg(instr.dest), line=line)
            return True
        if isinstance(instr.a, str) and isinstance(instr.b, int):
            self.emit("leal", Mem(base=Reg(instr.a), disp=instr.b),
                      Reg(instr.dest), line=line)
            return True
        return False

    def _select_division(self, instr: Instr, line: int) -> None:
        self.emit("movl", self.operand(instr.a, line), Reg("eax"), line=line)
        divisor = self.value_reg(instr.b, line)
        self.emit("cltd", line=line)
        self.emit("idivl", divisor, line=line)
        result = "eax" if instr.bin_op == "/" else "edx"
        self.emit("movl", Reg(result), Reg(instr.dest), line=line)

    def _select_call(self, instr: Instr, line: int) -> None:
        if self.style == "llvm":
            for i, arg in enumerate(instr.args):
                self.emit("movl", self.operand(arg, line),
                          Mem(base=Reg("esp"), disp=4 * i), line=line)
            self.emit("call", Label(instr.name), line=line,
                      meta={"clobbers": _CALLER_SAVED})
        else:
            for arg in reversed(instr.args):
                self.emit("pushl", self.operand(arg, line), line=line)
            self.emit("call", Label(instr.name), line=line,
                      meta={"clobbers": _CALLER_SAVED})
            if instr.args:
                self.emit("addl", Imm(4 * len(instr.args)), Reg("esp"),
                          line=line)
        if instr.dest is not None:
            self.emit("movl", Reg("eax"), Reg(instr.dest), line=line)


def finalize(func: MachineFunction, style: str) -> None:
    """Insert prologue/epilogue, resolve FRAME/INCOMING markers."""
    frame = func.frame_slots + func.spill_bytes
    frame = (frame + 3) & ~3
    saved = list(func.used_callee_saved)
    prologue: list[Instruction] = []
    epilogue: list[Instruction] = []
    if style == "gcc":
        prologue.append(Instruction("pushl", (Reg("ebp"),)))
        prologue.append(Instruction("movl", (Reg("esp"), Reg("ebp"))))
    for reg in saved:
        prologue.append(Instruction("pushl", (Reg(reg),)))
    if frame:
        prologue.append(Instruction("subl", (Imm(frame), Reg("esp"))))
        epilogue.append(Instruction("addl", (Imm(frame), Reg("esp"))))
    for reg in reversed(saved):
        epilogue.append(Instruction("popl", (Reg(reg),)))
    if style == "gcc":
        epilogue.append(Instruction("popl", (Reg("ebp"),)))
    epilogue.append(Instruction("ret", ()))

    n_saved = len(saved)
    rewritten: list[Instruction] = []
    for instr in func.instrs:
        rewritten.append(_resolve_markers(instr, style, frame, n_saved))
    shift = len(prologue)
    func.labels = {name: pos + shift for name, pos in func.labels.items()}
    func.instrs = prologue + rewritten + epilogue


def _resolve_markers(instr: Instruction, style: str, frame: int,
                     n_saved: int) -> Instruction:
    new_ops = []
    changed = False
    for op in instr.operands:
        if isinstance(op, Mem) and op.base is not None and \
                op.base.name in ("FRAME", "INCOMING"):
            changed = True
            if op.base.name == "FRAME":
                if style == "gcc":
                    # Slots grow downward from below the saved registers:
                    # slot at offset k sits at ebp - 4*n_saved - frame + k.
                    disp = -4 * n_saved - frame + op.disp
                    new_ops.append(Mem(Reg("ebp"), op.index, op.scale, disp,
                                       op.var))
                else:
                    new_ops.append(Mem(Reg("esp"), op.index, op.scale,
                                       op.disp, op.var))
            else:  # INCOMING parameter area
                if style == "gcc":
                    new_ops.append(Mem(Reg("ebp"), op.index, op.scale,
                                       8 + op.disp, op.var))
                else:
                    disp = frame + 4 * n_saved + 4 + op.disp
                    new_ops.append(Mem(Reg("esp"), op.index, op.scale, disp,
                                       op.var))
        else:
            new_ops.append(op)
    if not changed:
        return instr
    return replace(instr, operands=tuple(new_ops))
