"""Source reformatting: one statement per line (the clang-format role).

Paper Section 3.1: the learner preprocesses sources with ``clang -E``
and *clang-format* so each line holds one statement — the learning
scope is the source line, so packed lines (macros, one-liner bodies)
would otherwise produce unlearnable multi-statement snippets.

This reformatter re-lexes the program and reprints it with:

* a line break after every ``;`` (except inside ``for (...)`` headers),
* ``{`` ending its line and ``}`` on its own line,
* indentation following brace depth.

Comments are dropped (they are preprocessing input, not output).
"""

from __future__ import annotations

from repro.minic.lexer import Token, tokenize

_NO_SPACE_BEFORE = {";", ",", ")", "]", "(", "["}
_NO_SPACE_AFTER = {"(", "[", "!", "~"}
_UNARY_CONTEXT = {"op", "kw"}  # a '-'/'*'/'&' after these is unary


def format_source(source: str) -> str:
    """Reprint MiniC source with one statement per line."""
    tokens = tokenize(source)
    lines: list[str] = []
    current: list[str] = []
    depth = 0
    paren_depth = 0
    previous: Token | None = None

    def flush() -> None:
        nonlocal current
        if current:
            lines.append("  " * depth + "".join(current).strip())
            current = []

    for token in tokens:
        if token.kind == "eof":
            break
        text = token.text
        if text == "(":
            paren_depth += 1
        elif text == ")":
            paren_depth -= 1

        if text == "{":
            current.append(" {")
            flush()
            depth += 1
            previous = token
            continue
        if text == "}":
            flush()
            depth -= 1
            lines.append("  " * depth + "}")
            previous = token
            continue
        if text == ";" and paren_depth == 0:
            current.append(";")
            flush()
            previous = token
            continue

        if current and _needs_space(previous, token):
            current.append(" ")
        current.append(text)
        previous = token
    flush()
    return "\n".join(lines) + "\n"


def _needs_space(previous: Token | None, token: Token) -> bool:
    if previous is None:
        return False
    if token.text in _NO_SPACE_BEFORE:
        # Keep calls/indexing tight: name( and name[ — but preserve a
        # space before '(' after keywords (if/while/for/return).
        if token.text in ("(", "["):
            return previous.kind == "kw" or previous.text in (",", ";")
        return False
    if previous.text in _NO_SPACE_AFTER:
        return False
    if previous.text in ("-", "*", "&", "+") and _is_unary(previous):
        return False
    return True


def _is_unary(token: Token) -> bool:
    # Best effort: the lexer doesn't track context, so the reformatter
    # marks operators during printing via this hook; binary operators
    # get surrounding spaces, which is only a cosmetic difference.
    return False
