"""MiniC compilation driver: source text -> linked machine program.

``compile_source`` runs the full pipeline (parse, lower, optimize,
select, allocate, finalize, link) for one target/level/style and
returns a :class:`CompiledProgram` whose flattened ``code`` list plus
label/address maps are directly loadable by the DBT, the concrete
interpreters, and the rule learner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guest_arm import parser as arm_parser
from repro.isa.instruction import Instruction
from repro.minic.backend import regalloc
from repro.minic.backend.arm_backend import ArmSelector
from repro.minic.backend.arm_backend import finalize as arm_finalize
from repro.minic.backend.arm_backend import target_info as arm_target
from repro.minic.backend.mach import MachineFunction
from repro.minic.backend.x86_backend import X86Selector
from repro.minic.backend.x86_backend import finalize as x86_finalize
from repro.minic.backend.x86_backend import target_info as x86_target
from repro.minic.errors import MiniCError
from repro.minic.lower import lower_program
from repro.minic.parser import parse
from repro.minic.passes import optimize_program
from repro.minic.runtime_arm import AEABI_DIVMOD_ASM
from repro.minic.tac import GlobalData, TacProgram

CODE_BASE = 0x8000
GLOBAL_BASE = 0x0010_0000
STACK_TOP = 0x0080_0000
HALT_ADDRESS = 0x0000_0004  # guest lr sentinel: reaching it ends the run

_WORD = 4


@dataclass(frozen=True)
class CompileOptions:
    """Knobs mirroring the paper's compiler matrix."""

    target: str = "arm"  # "arm" | "x86"
    opt_level: int = 2  # 0..3
    style: str = "llvm"  # "llvm" | "gcc"

    def __post_init__(self) -> None:
        if self.target not in ("arm", "x86"):
            raise ValueError(f"unknown target {self.target!r}")
        if not 0 <= self.opt_level <= 3:
            raise ValueError(f"bad optimization level {self.opt_level}")
        if self.style not in ("llvm", "gcc"):
            raise ValueError(f"unknown style {self.style!r}")


@dataclass
class CompiledProgram:
    """A linked program image.

    ``code`` is the flattened instruction list; instruction *i* lives at
    address ``CODE_BASE + 4 * i`` (both ISAs use 4-byte instruction
    granularity in this model).  ``labels`` maps every function entry
    and local label to its instruction index.
    """

    options: CompileOptions
    functions: dict[str, MachineFunction]
    code: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    global_addrs: dict[str, int] = field(default_factory=dict)
    globals: dict[str, GlobalData] = field(default_factory=dict)
    function_of_index: list[str] = field(default_factory=list)
    runtime_functions: tuple[str, ...] = ()
    tac: TacProgram | None = None

    @property
    def entry(self) -> str:
        return "main"

    def addr_of(self, label: str) -> int:
        return CODE_BASE + _WORD * self.labels[label]

    def index_of_addr(self, addr: int) -> int:
        offset = addr - CODE_BASE
        if offset % _WORD or not 0 <= offset < _WORD * len(self.code):
            raise ValueError(f"address 0x{addr:x} is outside the code image")
        return offset // _WORD

    def initial_memory(self) -> dict[int, int]:
        """Byte map holding the initialized data segment."""
        memory: dict[int, int] = {}
        for data in self.globals.values():
            base = self.global_addrs[data.name]
            for i, value in enumerate(data.init):
                for b in range(data.elem_size):
                    memory[base + i * data.elem_size + b] = (
                        value >> (8 * b)
                    ) & 0xFF
        return memory


def layout_globals(tac: TacProgram) -> dict[str, int]:
    """Assign data-segment addresses to every global."""
    addrs: dict[str, int] = {}
    cursor = GLOBAL_BASE
    for data in tac.globals.values():
        addrs[data.name] = cursor
        cursor += (data.size + 3) & ~3
    return addrs


def compile_source(
    source: str,
    target: str = "arm",
    opt_level: int = 2,
    style: str = "llvm",
) -> CompiledProgram:
    """Compile MiniC source for one target; see :class:`CompileOptions`."""
    options = CompileOptions(target, opt_level, style)
    tac = lower_program(parse(source))
    optimize_program(tac, opt_level)
    global_addrs = layout_globals(tac)

    functions: dict[str, MachineFunction] = {}
    if target == "arm":
        info = arm_target(style)
        for tac_func in tac.functions.values():
            selector = ArmSelector(tac_func, style, opt_level, global_addrs)
            mfunc = selector.select()
            regalloc.allocate(mfunc, info)
            has_calls = any(i.mnemonic == "bl" for i in mfunc.instrs)
            arm_finalize(mfunc, has_calls)
            functions[tac_func.name] = mfunc
        runtime = _arm_runtime_functions()
        functions.update(runtime)
        runtime_names = tuple(runtime)
    else:
        info = x86_target(style)
        for tac_func in tac.functions.values():
            selector = X86Selector(tac_func, style, opt_level, global_addrs)
            mfunc = selector.select()
            regalloc.allocate(mfunc, info)
            x86_finalize(mfunc, style)
            functions[tac_func.name] = mfunc
        runtime_names = ()

    program = CompiledProgram(
        options=options,
        functions=functions,
        global_addrs=global_addrs,
        globals=dict(tac.globals),
        runtime_functions=runtime_names,
        tac=tac,
    )
    _link(program)
    return program


def _arm_runtime_functions() -> dict[str, MachineFunction]:
    parsed = arm_parser.parse_program(AEABI_DIVMOD_ASM)
    # Split the combined listing into per-function MachineFunctions at
    # the function-name labels (those not starting with ".L").
    entries = sorted(
        (index, name)
        for name, index in parsed.labels.items()
        if not name.startswith(".L")
    )
    functions: dict[str, MachineFunction] = {}
    for i, (start, name) in enumerate(entries):
        end = entries[i + 1][0] if i + 1 < len(entries) else \
            len(parsed.instructions)
        labels = {
            label: pos - start
            for label, pos in parsed.labels.items()
            if label.startswith(".L") and start <= pos <= end
        }
        functions[name] = MachineFunction(
            name,
            instrs=list(parsed.instructions[start:end]),
            labels=labels,
        )
    return functions


def _link(program: CompiledProgram) -> None:
    """Flatten functions into one image and globalize labels."""
    cursor = 0
    for name, func in program.functions.items():
        if name in program.labels:
            raise MiniCError(f"duplicate symbol {name!r}")
        program.labels[name] = cursor
        for label, pos in func.labels.items():
            if label in program.labels:
                raise MiniCError(f"duplicate label {label!r}")
            program.labels[label] = cursor + pos
        program.code.extend(func.instrs)
        program.function_of_index.extend([name] * len(func.instrs))
        cursor += len(func.instrs)
