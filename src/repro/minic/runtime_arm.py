"""Hand-written ARM assembly runtime for MiniC guest binaries.

Real ARM compilers emit calls to ``__aeabi_idiv``/``__aeabi_idivmod``
for integer division; these are their MiniC-world implementations, as
hand-written assembly (binary long division).  Because this code has no
C source, translation rules learned from source lines can never cover
it — which is exactly the effect the paper reports for the hottest
blocks of *omnetpp* (LLVM runtime functions written in assembly).
"""

AEABI_DIVMOD_ASM = """
__aeabi_idivmod:
    push {r4, r5, r6, lr}
    eor r4, r0, r1
    mov r5, r0
    cmp r0, #0
    rsblt r0, r0, #0
    cmp r1, #0
    rsblt r1, r1, #0
    mov r2, #0
    mov r3, #0
    mov r6, #31
.Ldivloop:
    lsl r3, r3, #1
    lsr r12, r0, r6
    and r12, r12, #1
    orr r3, r3, r12
    cmp r3, r1
    blo .Ldivskip
    sub r3, r3, r1
    mov r12, #1
    lsl r12, r12, r6
    orr r2, r2, r12
.Ldivskip:
    sub r6, r6, #1
    cmp r6, #0
    bge .Ldivloop
    cmp r4, #0
    rsblt r2, r2, #0
    cmp r5, #0
    rsblt r3, r3, #0
    mov r0, r2
    mov r1, r3
    pop {r4, r5, r6, pc}

__aeabi_idiv:
    push {lr}
    bl __aeabi_idivmod
    pop {pc}
"""

RUNTIME_FUNCTIONS = ("__aeabi_idivmod", "__aeabi_idiv")
