"""TAC optimization passes.

Pass schedule per optimization level (mirroring how real compilers
change code shape across ``-O`` levels, which drives the paper's
Figure 6 sensitivity study and Figure 7 example):

* ``-O0``: nothing — locals stay in memory, every access loads/stores.
* ``-O1``: mem2reg, constant folding, copy propagation, DCE, CFG
  cleanup.
* ``-O2``: -O1 + local CSE, strength reduction (multiply/divide by
  powers of two), if-conversion to selects (→ predicated ARM /
  x86 cmov).
* ``-O3``: -O2 + constant re-association and shift-add decomposition of
  small constant multiplies.
"""

from __future__ import annotations

from dataclasses import replace

from repro.ir.expr import to_signed
from repro.minic.tac import CMP_OPS, Instr, TacFunction, TacProgram

_MASK = 0xFFFFFFFF

_PURE_OPS = ("const", "copy", "bin", "un", "load", "la", "select")


def optimize_program(program: TacProgram, level: int) -> None:
    """Run the pass schedule for ``-O<level>`` over every function."""
    for func in program.functions.values():
        optimize_function(func, level)


def optimize_function(func: TacFunction, level: int) -> None:
    if level <= 0:
        cleanup_cfg(func)
        return
    mem2reg(func)
    for _ in range(3):  # a few rounds to a fixed point (cheaply)
        fold_and_propagate(func)
        if level >= 2:
            local_cse(func)
            strength_reduce(func, aggressive=level >= 3)
        dead_code_elim(func)
    coalesce_copies(func)
    dead_code_elim(func)
    if level >= 2:
        if_convert(func)
        fold_and_propagate(func)
        dead_code_elim(func)
        coalesce_copies(func)
        dead_code_elim(func)
    cleanup_cfg(func)


# -- mem2reg ---------------------------------------------------------------


def mem2reg(func: TacFunction) -> None:
    """Promote non-addressed scalar stack slots to virtual registers."""
    escaping: set[str] = set()
    for instr in func.instrs:
        addr = instr.addr
        if addr is None or addr.symbol is None:
            continue
        slot = func.slots.get(addr.symbol)
        if slot is None:
            continue
        plain = addr.base is None and addr.index is None and addr.disp == 0
        if instr.op == "la" or slot.is_array or not plain:
            escaping.add(addr.symbol)
    promoted = {
        name: f"%v_{name.replace('.', '_')}"
        for name in func.slots
        if name not in escaping and not func.slots[name].is_array
    }
    if not promoted:
        return
    new_instrs: list[Instr] = []
    for instr in func.instrs:
        addr = instr.addr
        if addr is not None and addr.symbol in promoted:
            vreg = promoted[addr.symbol]
            if instr.op == "load":
                new_instrs.append(
                    Instr(op="copy", line=instr.line, dest=instr.dest, a=vreg)
                )
                continue
            if instr.op == "store":
                new_instrs.append(
                    Instr(op="copy", line=instr.line, dest=vreg, a=instr.a)
                )
                continue
        new_instrs.append(instr)
    func.instrs = new_instrs
    for name in promoted:
        del func.slots[name]


# -- folding / propagation ---------------------------------------------------


def _fold_bin(op: str, a: int, b: int) -> int | None:
    sa, sb = to_signed(a, 32), to_signed(b, 32)
    if op == "+":
        return (a + b) & _MASK
    if op == "-":
        return (a - b) & _MASK
    if op == "*":
        return (a * b) & _MASK
    if op == "/":
        if sb == 0:
            return None
        quotient = abs(sa) // abs(sb)
        return (-quotient if (sa < 0) != (sb < 0) else quotient) & _MASK
    if op == "%":
        if sb == 0:
            return None
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return (sa - quotient * sb) & _MASK
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return 0 if b >= 32 else (a << b) & _MASK
    if op == ">>":
        return (sa >> min(b, 31)) & _MASK
    if op == "u>>":
        return 0 if b >= 32 else (a & _MASK) >> b
    return None


def _fold_cmp(op: str, a: int, b: int) -> bool:
    sa, sb = to_signed(a, 32), to_signed(b, 32)
    return {
        "==": a == b, "!=": a != b,
        "<": sa < sb, "<=": sa <= sb, ">": sa > sb, ">=": sa >= sb,
        "u<": a < b, "u<=": a <= b, "u>": a > b, "u>=": a >= b,
    }[op]


def _block_boundaries(func: TacFunction) -> list[tuple[int, int]]:
    """(start, end) index ranges of basic blocks."""
    leaders = {0}
    for index, instr in enumerate(func.instrs):
        if instr.op == "label":
            leaders.add(index)
        if instr.op in ("jmp", "cbr", "ret") and index + 1 < len(func.instrs):
            leaders.add(index + 1)
    ordered = sorted(leaders)
    return [
        (start, ordered[i + 1] if i + 1 < len(ordered) else len(func.instrs))
        for i, start in enumerate(ordered)
    ]


def fold_and_propagate(func: TacFunction) -> None:
    """Block-local constant folding + copy propagation."""
    for start, end in _block_boundaries(func):
        consts: dict[str, int] = {}
        copies: dict[str, str] = {}

        def invalidate(dest: str) -> None:
            consts.pop(dest, None)
            copies.pop(dest, None)
            for key in [k for k, v in copies.items() if v == dest]:
                del copies[key]

        for instr in func.instrs[start:end]:
            mapping: dict[str, object] = {}
            for use in instr.uses():
                if use in consts:
                    mapping[use] = consts[use]
                elif use in copies:
                    mapping[use] = copies[use]
            if mapping:
                instr.replace_uses(mapping)
            if instr.op == "bin" and isinstance(instr.a, int) and isinstance(
                instr.b, int
            ):
                folded = _fold_bin(instr.bin_op, instr.a, instr.b)
                if folded is not None:
                    instr.op = "const"
                    instr.a = folded
                    instr.b = None
                    instr.bin_op = None
            if instr.op == "un" and isinstance(instr.a, int):
                value = -instr.a if instr.bin_op == "neg" else ~instr.a
                instr.op = "const"
                instr.a = value & _MASK
                instr.bin_op = None
            if instr.op == "bin":
                _fold_identities(instr)
            if instr.op == "select" and isinstance(instr.a, int) and isinstance(
                instr.b, int
            ):
                value = instr.tval if _fold_cmp(instr.bin_op, instr.a, instr.b) \
                    else instr.fval
                instr.op = "copy" if isinstance(value, str) else "const"
                instr.a = value
                instr.b = instr.tval = instr.fval = None
                instr.bin_op = None
            if instr.dest is not None:
                invalidate(instr.dest)
                if instr.op == "const" and isinstance(instr.a, int):
                    consts[instr.dest] = instr.a
                elif instr.op == "copy" and isinstance(instr.a, str):
                    copies[instr.dest] = instr.a
                elif instr.op == "copy" and isinstance(instr.a, int):
                    instr.op = "const"
                    consts[instr.dest] = instr.a


def _fold_identities(instr: Instr) -> None:
    """x+0, x*1, x*0, x-0, x&x ... algebraic identities."""
    op, a, b = instr.bin_op, instr.a, instr.b
    if isinstance(b, int):
        if b == 0 and op in ("+", "-", "|", "^", "<<", ">>", "u>>"):
            _to_copy(instr, a)
            return
        if b == 1 and op in ("*", "/"):
            _to_copy(instr, a)
            return
        if b == 0 and op in ("*", "&"):
            _to_const(instr, 0)
            return
    if isinstance(a, int):
        if a == 0 and op in ("+", "|", "^"):
            _to_copy(instr, b)
            return
        if a == 0 and op in ("*", "&", "<<", ">>", "u>>"):
            _to_const(instr, 0)
            return
        # Canonicalize constant to the right for commutative ops.
        if op in ("+", "*", "&", "|", "^") and not isinstance(b, int):
            instr.a, instr.b = b, a


def _to_copy(instr: Instr, value) -> None:
    instr.op = "copy" if isinstance(value, str) else "const"
    instr.a = value
    instr.b = None
    instr.bin_op = None


def _to_const(instr: Instr, value: int) -> None:
    instr.op = "const"
    instr.a = value & _MASK
    instr.b = None
    instr.bin_op = None


# -- CSE ------------------------------------------------------------------------


def local_cse(func: TacFunction) -> None:
    """Block-local common-subexpression elimination for pure ALU ops."""
    for start, end in _block_boundaries(func):
        available: dict[tuple, str] = {}
        for instr in func.instrs[start:end]:
            if instr.dest is None:
                continue
            key = None
            if instr.op == "bin":
                key = ("bin", instr.bin_op, instr.a, instr.b)
            elif instr.op == "un":
                key = ("un", instr.bin_op, instr.a)
            elif instr.op == "la" and instr.addr is not None:
                key = ("la", instr.addr.symbol, instr.addr.base,
                       instr.addr.index, instr.addr.scale, instr.addr.disp)
            if key is not None and key in available:
                source = available[key]
                instr.op = "copy"
                instr.a = source
                instr.b = None
                instr.bin_op = None
                instr.addr = None
            dest = instr.dest
            # Invalidate expressions that used the overwritten register.
            available = {
                k: v
                for k, v in available.items()
                if v != dest and dest not in k
            }
            if key is not None and instr.op in ("bin", "un", "la"):
                available[key] = dest


# -- strength reduction ------------------------------------------------------------


def _log2(value: int) -> int | None:
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


def strength_reduce(func: TacFunction, aggressive: bool = False) -> None:
    """mul/div by powers of two -> shifts; O3 adds shift-add decomposition."""
    new_instrs: list[Instr] = []
    for instr in func.instrs:
        if instr.op == "bin" and instr.bin_op == "*" and isinstance(instr.b, int):
            shift = _log2(instr.b)
            if shift is not None:
                new_instrs.append(replace(instr, bin_op="<<", b=shift))
                continue
            if aggressive and instr.b > 2 and bin(instr.b).count("1") == 2 and \
                    isinstance(instr.a, str):
                # x * c with two set bits -> (x << hi) + (x << lo)
                high = instr.b.bit_length() - 1
                low = (instr.b & -instr.b).bit_length() - 1
                t_high = func.new_temp()
                t_low = func.new_temp()
                new_instrs.append(Instr(op="bin", line=instr.line, dest=t_high,
                                        bin_op="<<", a=instr.a, b=high))
                if low:
                    new_instrs.append(Instr(op="bin", line=instr.line,
                                            dest=t_low, bin_op="<<",
                                            a=instr.a, b=low))
                else:
                    t_low = instr.a
                new_instrs.append(replace(instr, bin_op="+", a=t_high, b=t_low))
                continue
        if instr.op == "bin" and instr.bin_op == "/" and isinstance(instr.b, int):
            shift = _log2(instr.b)
            if shift is not None and shift > 0 and isinstance(instr.a, str):
                # Signed division by 2**k with rounding toward zero:
                #   bias = (x >> 31) u>> (32 - k);  (x + bias) >> k
                sign = func.new_temp()
                bias = func.new_temp()
                biased = func.new_temp()
                new_instrs.append(Instr(op="bin", line=instr.line, dest=sign,
                                        bin_op=">>", a=instr.a, b=31))
                new_instrs.append(Instr(op="bin", line=instr.line, dest=bias,
                                        bin_op="u>>", a=sign, b=32 - shift))
                new_instrs.append(Instr(op="bin", line=instr.line, dest=biased,
                                        bin_op="+", a=instr.a, b=bias))
                new_instrs.append(replace(instr, bin_op=">>", a=biased, b=shift))
                continue
        new_instrs.append(instr)
    func.instrs = new_instrs


# -- copy coalescing ------------------------------------------------------------------


def coalesce_copies(func: TacFunction) -> None:
    """Fold ``t = <expr>; ...; x = t`` into ``x = <expr>`` when ``t`` is
    only used by that copy and ``x`` is untouched in between.

    This removes the temp-then-copy chains lowering produces for every
    assignment, matching the tighter code real compilers emit.
    """
    use_counts: dict[str, int] = {}
    def_counts: dict[str, int] = {}
    for instr in func.instrs:
        for use in instr.uses():
            use_counts[use] = use_counts.get(use, 0) + 1
        if instr.dest is not None:
            def_counts[instr.dest] = def_counts.get(instr.dest, 0) + 1
    dead_positions: set[int] = set()
    for start, end in _block_boundaries(func):
        for copy_pos in range(start, end):
            copy_instr = func.instrs[copy_pos]
            if copy_instr.op != "copy" or not isinstance(copy_instr.a, str):
                continue
            temp = copy_instr.a
            target = copy_instr.dest
            if use_counts.get(temp, 0) != 1 or def_counts.get(temp, 0) != 1:
                continue
            if target == temp:
                continue
            # Find the defining instruction earlier in this block.
            def_pos = None
            for pos in range(copy_pos - 1, start - 1, -1):
                if func.instrs[pos].dest == temp:
                    def_pos = pos
                    break
            if def_pos is None or def_pos in dead_positions or \
                    func.instrs[def_pos].op not in (
                        "const", "copy", "bin", "un", "load", "la", "select",
                        "call",
                    ):
                continue
            # Safety: ``target`` must not be read or written strictly
            # between the def and the copy.  (The defining instruction
            # itself may read ``target`` — its reads happen before the
            # redirected write, as in ``d = 0 - d``.)
            window = func.instrs[def_pos + 1 : copy_pos]
            if any(target in instr.uses() or instr.dest == target
                   for instr in window):
                continue
            if func.instrs[def_pos].dest == target:
                continue
            func.instrs[def_pos].dest = target
            dead_positions.add(copy_pos)
            use_counts[temp] = 0
            def_counts[target] = def_counts.get(target, 0) + 1
    func.instrs = [
        instr for pos, instr in enumerate(func.instrs)
        if pos not in dead_positions
    ]


# -- dead code elimination -----------------------------------------------------------


def dead_code_elim(func: TacFunction) -> None:
    """Remove pure instructions whose results are never used."""
    while True:
        use_counts: dict[str, int] = {}
        for instr in func.instrs:
            for use in instr.uses():
                use_counts[use] = use_counts.get(use, 0) + 1
        removed = False
        kept: list[Instr] = []
        for instr in func.instrs:
            if (
                instr.op in _PURE_OPS
                and instr.dest is not None
                and use_counts.get(instr.dest, 0) == 0
            ):
                removed = True
                continue
            kept.append(instr)
        func.instrs = kept
        if not removed:
            return


# -- if-conversion --------------------------------------------------------------------


def if_convert(func: TacFunction) -> None:
    """Turn small if-shapes into selects (drives predicated ARM code
    and x86 cmov at -O2, the paper's "PI" preparation-failure class).

    Two shapes are recognized:

    * the diamond ``cbr c Lt Lf; Lt: v=x; jmp Le; Lf: v=y; Le:``
      becomes ``v = select(c, x, y)``;
    * the one-sided ``cbr c Lt Le; Lt: v=<pure op>; Le:`` becomes a
      speculated compute into a fresh temp plus ``v = select(c, t, v)``
      (safe: the op is pure and writes only the temp).
    """
    refcounts: dict[str, int] = {}
    for instr in func.instrs:
        if instr.op == "jmp":
            refcounts[instr.label] = refcounts.get(instr.label, 0) + 1
        elif instr.op == "cbr":
            refcounts[instr.label] = refcounts.get(instr.label, 0) + 1
            refcounts[instr.label2] = refcounts.get(instr.label2, 0) + 1

    instrs = func.instrs
    index = 0
    result: list[Instr] = []
    while index < len(instrs):
        converted = _match_diamond(instrs[index : index + 7], refcounts)
        if converted is not None:
            result.extend(converted)
            index += 7
            continue
        speculated = _match_one_sided(func, instrs[index : index + 4],
                                      refcounts)
        if speculated is not None:
            result.extend(speculated)
            index += 4
            continue
        result.append(instrs[index])
        index += 1
    func.instrs = result


def _match_diamond(window: list[Instr],
                   refcounts: dict[str, int]) -> list[Instr] | None:
    if len(window) < 7:
        return None
    cbr, lt, assign_t, jmp, lf, assign_f, le = window
    if cbr.op != "cbr" or lt.op != "label" or jmp.op != "jmp" or \
            lf.op != "label" or le.op != "label":
        return None
    if assign_t.op not in ("const", "copy") or assign_f.op not in (
        "const", "copy"
    ):
        return None
    if assign_t.dest != assign_f.dest:
        return None
    if cbr.label != lt.label or cbr.label2 != lf.label or jmp.label != le.label:
        return None
    # The arm labels must have no other users (a jump into an arm would
    # skip the select); the join label is preserved for other users.
    if refcounts.get(lt.label, 0) != 1 or refcounts.get(lf.label, 0) != 1:
        return None
    select = Instr(
        op="select", line=cbr.line, dest=assign_t.dest, bin_op=cbr.bin_op,
        a=cbr.a, b=cbr.b, tval=assign_t.a, fval=assign_f.a,
    )
    return [select, le]


def _match_one_sided(func: TacFunction, window: list[Instr],
                     refcounts: dict[str, int]) -> list[Instr] | None:
    if len(window) < 4:
        return None
    cbr, lt, assign, le = window
    if cbr.op != "cbr" or lt.op != "label" or le.op != "label":
        return None
    if cbr.label != lt.label or cbr.label2 != le.label:
        return None
    if refcounts.get(lt.label, 0) != 1:
        return None
    if assign.op not in ("const", "copy", "bin", "un") or assign.dest is None:
        return None
    dest = assign.dest
    if assign.op in ("const", "copy"):
        return [
            Instr(
                op="select", line=cbr.line, dest=dest, bin_op=cbr.bin_op,
                a=cbr.a, b=cbr.b, tval=assign.a, fval=dest,
            ),
            le,
        ]
    # Speculate the pure op into a fresh temp, then select.
    temp = func.new_temp()
    speculated = replace(assign, dest=temp)
    select = Instr(
        op="select", line=cbr.line, dest=dest, bin_op=cbr.bin_op,
        a=cbr.a, b=cbr.b, tval=temp, fval=dest,
    )
    return [speculated, select, le]


# -- CFG cleanup -----------------------------------------------------------------------


def cleanup_cfg(func: TacFunction) -> None:
    """Drop jumps to the next instruction, unreachable code, and unused
    labels; thread jump chains."""
    _thread_jumps(func)
    _drop_unreachable(func)
    _drop_trivial_jumps(func)
    _drop_unused_labels(func)


def _label_targets(func: TacFunction) -> dict[str, int]:
    return {
        instr.label: index
        for index, instr in enumerate(func.instrs)
        if instr.op == "label"
    }


def _thread_jumps(func: TacFunction) -> None:
    labels = _label_targets(func)

    def resolve(label: str) -> str:
        seen = set()
        while label not in seen:
            seen.add(label)
            index = labels.get(label)
            if index is None:
                return label
            cursor = index + 1
            while cursor < len(func.instrs) and func.instrs[cursor].op == "label":
                cursor += 1
            if cursor < len(func.instrs) and func.instrs[cursor].op == "jmp":
                label = func.instrs[cursor].label
                continue
            return label
        return label

    for instr in func.instrs:
        if instr.op == "jmp":
            instr.label = resolve(instr.label)
        elif instr.op == "cbr":
            instr.label = resolve(instr.label)
            instr.label2 = resolve(instr.label2)


def _drop_unreachable(func: TacFunction) -> None:
    labels = _label_targets(func)
    reachable: set[int] = set()
    worklist = [0]
    while worklist:
        index = worklist.pop()
        while index < len(func.instrs) and index not in reachable:
            reachable.add(index)
            instr = func.instrs[index]
            if instr.op == "jmp":
                worklist.append(labels[instr.label])
                break
            if instr.op == "cbr":
                worklist.append(labels[instr.label])
                worklist.append(labels[instr.label2])
                break
            if instr.op == "ret":
                break
            index += 1
    func.instrs = [
        instr for index, instr in enumerate(func.instrs) if index in reachable
    ]


def _drop_trivial_jumps(func: TacFunction) -> None:
    result: list[Instr] = []
    for index, instr in enumerate(func.instrs):
        if instr.op == "jmp":
            cursor = index + 1
            while cursor < len(func.instrs) and func.instrs[cursor].op == "label":
                if func.instrs[cursor].label == instr.label:
                    break
                cursor += 1
            else:
                result.append(instr)
                continue
            if cursor < len(func.instrs) and \
                    func.instrs[cursor].op == "label" and \
                    func.instrs[cursor].label == instr.label:
                continue  # jump to fall-through target
            result.append(instr)
            continue
        result.append(instr)
    func.instrs = result


def _drop_unused_labels(func: TacFunction) -> None:
    used: set[str] = set()
    for instr in func.instrs:
        if instr.op == "jmp":
            used.add(instr.label)
        elif instr.op == "cbr":
            used.add(instr.label)
            used.add(instr.label2)
    func.instrs = [
        instr
        for instr in func.instrs
        if instr.op != "label" or instr.label in used
    ]
