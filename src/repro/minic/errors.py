"""MiniC compiler error types."""

from __future__ import annotations


class MiniCError(Exception):
    """Base class for all MiniC compilation errors."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ParseError(MiniCError):
    """Lexical or syntactic error."""


class SemanticError(MiniCError):
    """Type/sema error (undeclared identifier, bad operand types, ...)."""
