"""MiniC lexer.

Tokenizes the C subset: identifiers, integer/char literals, operators,
punctuation.  ``//`` and ``/* */`` comments are skipped; every token
carries its 1-based source line (the learner's learning scope is the
source line, so line fidelity matters here).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.minic.errors import ParseError

KEYWORDS = frozenset(
    {"int", "char", "void", "if", "else", "while", "for", "return", "break",
     "continue"}
)

# Longest-first so multi-char operators win.
_OPERATORS = (
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",",
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<num>\d+)
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)

_ESCAPES = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39, '"': 34, "r": 13}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # "ident" | "num" | "char" | "op" | "kw" | "eof"
    text: str
    line: int
    value: int | None = None  # numeric value for num/char tokens


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC source into a token list ending with EOF."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if not match:
            raise ParseError(f"unexpected character {source[pos]!r}", line)
        text = match.group(0)
        kind = match.lastgroup
        if kind in ("ws", "line_comment", "block_comment"):
            line += text.count("\n")
            pos = match.end()
            continue
        if kind == "hex":
            tokens.append(Token("num", text, line, int(text, 16)))
        elif kind == "num":
            tokens.append(Token("num", text, line, int(text)))
        elif kind == "char":
            tokens.append(Token("char", text, line, _char_value(text, line)))
        elif kind == "ident":
            token_kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(token_kind, text, line))
        else:
            tokens.append(Token("op", text, line))
        line += text.count("\n")
        pos = match.end()
    tokens.append(Token("eof", "", line))
    return tokens


def _char_value(text: str, line: int) -> int:
    body = text[1:-1]
    if body.startswith("\\"):
        escape = body[1]
        if escape not in _ESCAPES:
            raise ParseError(f"unknown escape {body!r}", line)
        return _ESCAPES[escape]
    return ord(body)
