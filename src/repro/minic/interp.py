"""TAC interpreter: the ground-truth oracle for MiniC programs.

Used by tests to check that both backends (and the DBT on top of them)
compute exactly what the source program means.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.expr import to_signed, to_unsigned
from repro.minic.tac import Instr, TacFunction, TacProgram, TAddr

_GLOBAL_BASE = 0x1000
_STACK_TOP = 0x0100_0000
_MASK = 0xFFFFFFFF


class TacRuntimeError(Exception):
    """Runtime fault in the TAC interpreter (bad memory access, ...)."""


@dataclass
class _Machine:
    memory: dict[int, int] = field(default_factory=dict)  # byte -> value
    global_addrs: dict[str, int] = field(default_factory=dict)
    sp: int = _STACK_TOP
    steps: int = 0
    step_limit: int = 500_000_000

    def load(self, addr: int, size: int) -> int:
        value = 0
        for i in range(size):
            value |= self.memory.get(addr + i, 0) << (8 * i)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        for i in range(size):
            self.memory[addr + i] = (value >> (8 * i)) & 0xFF


def run_tac(program: TacProgram, entry: str = "main",
            args: tuple[int, ...] = ()) -> int:
    """Interpret ``program`` starting from ``entry``; returns its result."""
    machine = _Machine()
    addr = _GLOBAL_BASE
    for data in program.globals.values():
        machine.global_addrs[data.name] = addr
        for i, value in enumerate(data.init):
            machine.store(addr + i * data.elem_size, value & _MASK,
                          data.elem_size)
        addr += (data.size + 3) & ~3
    func = program.functions.get(entry)
    if func is None:
        raise TacRuntimeError(f"no function named {entry!r}")
    return _call(program, machine, func, tuple(arg & _MASK for arg in args))


def _binop(op: str, a: int, b: int) -> int:
    sa, sb = to_signed(a, 32), to_signed(b, 32)
    if op == "+":
        return (a + b) & _MASK
    if op == "-":
        return (a - b) & _MASK
    if op == "*":
        return (a * b) & _MASK
    if op == "/":
        if sb == 0:
            raise TacRuntimeError("division by zero")
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return quotient & _MASK
    if op == "%":
        if sb == 0:
            raise TacRuntimeError("modulo by zero")
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return (sa - quotient * sb) & _MASK
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return 0 if b >= 32 else (a << b) & _MASK
    if op == ">>":
        return (sa >> min(b, 31)) & _MASK
    if op == "u>>":
        return 0 if b >= 32 else (a & _MASK) >> b
    raise TacRuntimeError(f"unknown binary op {op!r}")


def _compare(op: str, a: int, b: int) -> bool:
    sa, sb = to_signed(a, 32), to_signed(b, 32)
    table = {
        "==": a == b, "!=": a != b,
        "<": sa < sb, "<=": sa <= sb, ">": sa > sb, ">=": sa >= sb,
        "u<": a < b, "u<=": a <= b, "u>": a > b, "u>=": a >= b,
    }
    if op not in table:
        raise TacRuntimeError(f"unknown comparison {op!r}")
    return table[op]


def _call(program: TacProgram, machine: _Machine, func: TacFunction,
          args: tuple[int, ...]) -> int:
    env: dict[str, int] = {}
    for vreg, value in zip(func.params, args):
        env[vreg] = value
    # Allocate stack slots for this frame.
    saved_sp = machine.sp
    slot_addrs: dict[str, int] = {}
    for slot in func.slots.values():
        machine.sp -= (slot.size + 3) & ~3
        slot_addrs[slot.name] = machine.sp
    labels = {
        instr.label: index
        for index, instr in enumerate(func.instrs)
        if instr.op == "label"
    }

    def value_of(value) -> int:
        if isinstance(value, int):
            return value & _MASK
        try:
            return env[value]
        except KeyError as exc:
            raise TacRuntimeError(f"use of undefined value {value}") from exc

    def addr_of(taddr: TAddr) -> int:
        addr = taddr.disp
        if taddr.symbol is not None:
            if taddr.symbol in slot_addrs:
                addr += slot_addrs[taddr.symbol]
            elif taddr.symbol in machine.global_addrs:
                addr += machine.global_addrs[taddr.symbol]
            else:
                raise TacRuntimeError(f"unknown symbol {taddr.symbol!r}")
        if taddr.base is not None:
            addr += value_of(taddr.base)
        if taddr.index is not None:
            addr += value_of(taddr.index) * taddr.scale
        return addr & _MASK

    pc = 0
    result = 0
    while pc < len(func.instrs):
        machine.steps += 1
        if machine.steps > machine.step_limit:
            raise TacRuntimeError("step limit exceeded")
        instr: Instr = func.instrs[pc]
        op = instr.op
        if op in ("label",):
            pc += 1
            continue
        if op == "const":
            env[instr.dest] = value_of(instr.a)
        elif op == "copy":
            env[instr.dest] = value_of(instr.a)
        elif op == "bin":
            env[instr.dest] = _binop(instr.bin_op, value_of(instr.a),
                                     value_of(instr.b))
        elif op == "un":
            value = value_of(instr.a)
            env[instr.dest] = (-value if instr.bin_op == "neg" else ~value) & _MASK
        elif op == "load":
            env[instr.dest] = machine.load(addr_of(instr.addr), instr.size)
        elif op == "store":
            machine.store(addr_of(instr.addr), value_of(instr.a), instr.size)
        elif op == "la":
            env[instr.dest] = addr_of(instr.addr)
        elif op == "call":
            callee = program.functions.get(instr.name)
            if callee is None:
                raise TacRuntimeError(f"call to unknown function {instr.name!r}")
            call_args = tuple(value_of(arg) for arg in instr.args)
            value = _call(program, machine, callee, call_args)
            if instr.dest is not None:
                env[instr.dest] = value
        elif op == "ret":
            result = value_of(instr.a) if instr.a is not None else 0
            break
        elif op == "jmp":
            pc = labels[instr.label]
            continue
        elif op == "cbr":
            taken = _compare(instr.bin_op, value_of(instr.a), value_of(instr.b))
            pc = labels[instr.label if taken else instr.label2]
            continue
        elif op == "select":
            taken = _compare(instr.bin_op, value_of(instr.a), value_of(instr.b))
            env[instr.dest] = value_of(instr.tval if taken else instr.fval)
        else:
            raise TacRuntimeError(f"unknown TAC op {op!r}")
        pc += 1
    machine.sp = saved_sp
    return result
