"""Lowering MiniC ASTs to TAC.

Lowering is deliberately naive (every local variable lives in a stack
slot, every access is a load/store); the optimization passes then clean
this up per ``-O`` level, which is what makes the generated code differ
across levels the way the paper's Figure 7 illustrates.

Semantic checking (undeclared names, arity, lvalue-ness) happens inline
during lowering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minic import ast
from repro.minic.errors import SemanticError
from repro.minic.tac import (
    GlobalData,
    Instr,
    StackSlot,
    TacFunction,
    TacProgram,
    TAddr,
    Value,
)

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_NEGATED = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def lower_program(program: ast.Program) -> TacProgram:
    """Lower a parsed program to TAC."""
    tac = TacProgram()
    global_types: dict[str, ast.Type] = {}
    for glob in program.globals:
        if glob.name in tac.globals:
            raise SemanticError(f"duplicate global {glob.name!r}", glob.line)
        init = list(glob.init or [])
        tac.globals[glob.name] = GlobalData(
            glob.name, glob.type.size, glob.type.element_size, init
        )
        global_types[glob.name] = glob.type
    signatures = {
        func.name: (func.return_type, [param.type for param in func.params])
        for func in program.functions
    }
    for func in program.functions:
        if func.name in tac.functions:
            raise SemanticError(f"duplicate function {func.name!r}", func.line)
        lowerer = _FunctionLowerer(func, global_types, signatures)
        tac.functions[func.name] = lowerer.lower()
    return tac


@dataclass
class _Binding:
    kind: str  # "slot" | "global"
    name: str  # slot name or global name
    type: ast.Type


class _FunctionLowerer:
    def __init__(
        self,
        func: ast.Function,
        global_types: dict[str, ast.Type],
        signatures: dict[str, tuple[ast.Type, list[ast.Type]]],
    ) -> None:
        self.func = func
        self.globals = global_types
        self.signatures = signatures
        self.tac = TacFunction(
            func.name,
            params=[f"%a{i}" for i in range(len(func.params))],
            line=func.line,
            returns_value=not func.return_type.is_void,
        )
        self.scopes: list[dict[str, _Binding]] = [{}]
        self.loop_stack: list[tuple[str, str]] = []  # (continue, break)
        self.slot_counter = 0

    # -- helpers ------------------------------------------------------------

    def emit(self, **kwargs) -> Instr:
        instr = Instr(**kwargs)
        self.tac.instrs.append(instr)
        return instr

    def lookup(self, name: str, line: int) -> _Binding:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return _Binding("global", name, self.globals[name])
        raise SemanticError(f"undeclared identifier {name!r}", line)

    def declare(self, name: str, dtype: ast.Type, line: int) -> _Binding:
        scope = self.scopes[-1]
        if name in scope:
            raise SemanticError(f"redeclaration of {name!r}", line)
        self.slot_counter += 1
        slot_name = f"{name}.{self.slot_counter}"
        self.tac.slots[slot_name] = StackSlot(
            slot_name,
            dtype.size,
            dtype.element_size if dtype.array_size is not None else dtype.size,
            dtype.array_size is not None,
            var=name,
        )
        binding = _Binding("slot", slot_name, dtype)
        scope[name] = binding
        return binding

    # -- top level ------------------------------------------------------------

    def lower(self) -> TacFunction:
        line = self.func.line
        for vreg, param in zip(self.tac.params, self.func.params):
            binding = self.declare(param.name, param.type, param.line)
            self.emit(
                op="store",
                line=param.line,
                a=vreg,
                addr=TAddr(symbol=binding.name, var=param.name),
                size=param.type.size if not param.type.pointer else 4,
            )
        self.lower_stmts(self.func.body)
        # Implicit return for void functions / missing returns.
        if self.func.return_type.is_void:
            self.emit(op="ret", line=line)
        else:
            self.emit(op="ret", line=line, a=0)
        return self.tac

    def lower_stmts(self, stmts: list[ast.Stmt]) -> None:
        self.scopes.append({})
        for stmt in stmts:
            self.lower_stmt(stmt)
        self.scopes.pop()

    # -- statements --------------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Decl):
            binding = self.declare(stmt.name, stmt.type, stmt.line)
            if stmt.init is not None:
                if stmt.type.array_size is not None:
                    raise SemanticError("array initializers are not supported",
                                        stmt.line)
                value = self.lower_expr(stmt.init)
                self.emit(
                    op="store",
                    line=stmt.line,
                    a=value,
                    addr=TAddr(symbol=binding.name, var=stmt.name),
                    size=binding.type.size,
                )
            return
        if isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr, want_value=False)
            return
        if isinstance(stmt, ast.Return):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            self.emit(op="ret", line=stmt.line, a=value)
            return
        if isinstance(stmt, ast.If):
            self.lower_if(stmt)
            return
        if isinstance(stmt, ast.While):
            self.lower_while(stmt)
            return
        if isinstance(stmt, ast.For):
            self.lower_for(stmt)
            return
        if isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise SemanticError("break outside loop", stmt.line)
            self.emit(op="jmp", line=stmt.line, label=self.loop_stack[-1][1])
            return
        if isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise SemanticError("continue outside loop", stmt.line)
            self.emit(op="jmp", line=stmt.line, label=self.loop_stack[-1][0])
            return
        raise SemanticError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def lower_if(self, stmt: ast.If) -> None:
        then_label = self.tac.new_label("then")
        else_label = self.tac.new_label("else")
        end_label = self.tac.new_label("endif")
        target_else = else_label if stmt.else_body else end_label
        self.lower_cond(stmt.cond, then_label, target_else)
        self.emit(op="label", line=stmt.line, label=then_label)
        self.lower_stmts(stmt.then_body)
        if stmt.else_body:
            self.emit(op="jmp", line=stmt.line, label=end_label)
            self.emit(op="label", line=stmt.line, label=else_label)
            self.lower_stmts(stmt.else_body)
        self.emit(op="label", line=stmt.line, label=end_label)

    def lower_while(self, stmt: ast.While) -> None:
        head = self.tac.new_label("while")
        body = self.tac.new_label("body")
        done = self.tac.new_label("done")
        self.emit(op="label", line=stmt.line, label=head)
        self.lower_cond(stmt.cond, body, done)
        self.emit(op="label", line=stmt.line, label=body)
        self.loop_stack.append((head, done))
        self.lower_stmts(stmt.body)
        self.loop_stack.pop()
        self.emit(op="jmp", line=stmt.line, label=head)
        self.emit(op="label", line=stmt.line, label=done)

    def lower_for(self, stmt: ast.For) -> None:
        head = self.tac.new_label("for")
        body = self.tac.new_label("body")
        step_label = self.tac.new_label("step")
        done = self.tac.new_label("done")
        self.scopes.append({})
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        self.emit(op="label", line=stmt.line, label=head)
        if stmt.cond is not None:
            self.lower_cond(stmt.cond, body, done)
        self.emit(op="label", line=stmt.line, label=body)
        self.loop_stack.append((step_label, done))
        self.lower_stmts(stmt.body)
        self.loop_stack.pop()
        self.emit(op="label", line=stmt.line, label=step_label)
        if stmt.step is not None:
            self.lower_expr(stmt.step, want_value=False)
        self.emit(op="jmp", line=stmt.line, label=head)
        self.emit(op="label", line=stmt.line, label=done)

    # -- conditions -----------------------------------------------------------------

    def lower_cond(self, expr: ast.Expr, true_label: str, false_label: str) -> None:
        """Lower a boolean context with short-circuiting and fused
        compare-and-branch."""
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            middle = self.tac.new_label("and")
            self.lower_cond(expr.left, middle, false_label)
            self.emit(op="label", line=expr.line, label=middle)
            self.lower_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            middle = self.tac.new_label("or")
            self.lower_cond(expr.left, true_label, middle)
            self.emit(op="label", line=expr.line, label=middle)
            self.lower_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.lower_cond(expr.operand, false_label, true_label)
            return
        if isinstance(expr, ast.Binary) and expr.op in _CMP_OPS:
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            self.emit(
                op="cbr", line=expr.line, bin_op=expr.op, a=left, b=right,
                label=true_label, label2=false_label,
            )
            return
        value = self.lower_expr(expr)
        self.emit(
            op="cbr", line=expr.line, bin_op="!=", a=value, b=0,
            label=true_label, label2=false_label,
        )

    # -- expressions -------------------------------------------------------------------

    def lower_expr(self, expr: ast.Expr, want_value: bool = True) -> Value:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Name):
            return self.lower_name(expr)
        if isinstance(expr, ast.Index):
            addr, size = self.lower_lvalue(expr)
            dest = self.tac.new_temp()
            self.emit(op="load", line=expr.line, dest=dest, addr=addr, size=size)
            return dest
        if isinstance(expr, ast.Unary):
            return self.lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self.lower_assign(expr, want_value)
        if isinstance(expr, ast.Call):
            return self.lower_call(expr, want_value)
        raise SemanticError(f"unhandled expression {type(expr).__name__}", expr.line)

    def lower_name(self, expr: ast.Name) -> Value:
        binding = self.lookup(expr.ident, expr.line)
        if binding.type.array_size is not None:
            # Array decays to its address.
            dest = self.tac.new_temp()
            self.emit(
                op="la", line=expr.line, dest=dest,
                addr=TAddr(symbol=binding.name, var=expr.ident),
            )
            return dest
        dest = self.tac.new_temp()
        self.emit(
            op="load", line=expr.line, dest=dest,
            addr=TAddr(symbol=binding.name, var=expr.ident),
            size=binding.type.size,
        )
        return dest

    def type_of(self, expr: ast.Expr) -> ast.Type:
        if isinstance(expr, ast.Name):
            return self.lookup(expr.ident, expr.line).type
        if isinstance(expr, ast.Index):
            base = self.type_of(expr.base)
            return ast.Type(base.base)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            base = self.type_of(expr.operand)
            return ast.Type(base.base)
        if isinstance(expr, ast.Unary) and expr.op == "&":
            inner = self.type_of(expr.operand)
            return ast.Type(inner.base, pointer=True)
        if isinstance(expr, ast.Call):
            signature = self.signatures.get(expr.func)
            return signature[0] if signature else ast.INT
        if isinstance(expr, ast.Binary):
            left = self.type_of(expr.left)
            if left.pointer or left.array_size is not None:
                return left.decayed()
            right = self.type_of(expr.right)
            if right.pointer or right.array_size is not None:
                return right.decayed()
            return ast.INT
        return ast.INT

    def lower_lvalue(self, expr: ast.Expr) -> tuple[TAddr, int]:
        """Lower an assignable expression to (address, access size)."""
        if isinstance(expr, ast.Name):
            binding = self.lookup(expr.ident, expr.line)
            if binding.kind == "slot":
                return (
                    TAddr(symbol=binding.name, var=expr.ident),
                    binding.type.size if binding.type.array_size is None else 4,
                )
            return (
                TAddr(symbol=binding.name, var=expr.ident),
                binding.type.size if binding.type.array_size is None else 4,
            )
        if isinstance(expr, ast.Index):
            base_type = self.type_of(expr.base).decayed()
            elem_size = base_type.element_size
            index = self.lower_expr(expr.index)
            if isinstance(expr.base, ast.Name):
                binding = self.lookup(expr.base.ident, expr.base.line)
                if binding.type.array_size is not None:
                    # Direct array indexing: keep the symbol in the address.
                    if isinstance(index, int):
                        return (
                            TAddr(symbol=binding.name, disp=index * elem_size,
                                  var=expr.base.ident),
                            elem_size,
                        )
                    index_reg = self._as_reg(index, expr.line)
                    return (
                        TAddr(symbol=binding.name, index=index_reg,
                              scale=elem_size, var=expr.base.ident),
                        elem_size,
                    )
            base_value = self.lower_expr(expr.base)
            base_reg = self._as_reg(base_value, expr.line)
            if isinstance(index, int):
                return (
                    TAddr(base=base_reg, disp=index * elem_size,
                          var=self._var_hint(expr.base)),
                    elem_size,
                )
            index_reg = self._as_reg(index, expr.line)
            return (
                TAddr(base=base_reg, index=index_reg, scale=elem_size,
                      var=self._var_hint(expr.base)),
                elem_size,
            )
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointee = self.type_of(expr.operand).decayed()
            base = self._as_reg(self.lower_expr(expr.operand), expr.line)
            return (
                TAddr(base=base, var=self._var_hint(expr.operand)),
                pointee.element_size,
            )
        raise SemanticError("expression is not assignable", expr.line)

    def _var_hint(self, expr: ast.Expr) -> str | None:
        if isinstance(expr, ast.Name):
            return expr.ident
        return None

    def _as_reg(self, value: Value, line: int) -> str:
        if isinstance(value, str):
            return value
        dest = self.tac.new_temp()
        self.emit(op="const", line=line, dest=dest, a=value)
        return dest

    def lower_unary(self, expr: ast.Unary) -> Value:
        if expr.op == "&":
            addr, _ = self.lower_lvalue(expr.operand)
            dest = self.tac.new_temp()
            self.emit(op="la", line=expr.line, dest=dest, addr=addr)
            return dest
        if expr.op == "*":
            addr, size = self.lower_lvalue(expr)
            dest = self.tac.new_temp()
            self.emit(op="load", line=expr.line, dest=dest, addr=addr, size=size)
            return dest
        if expr.op == "!":
            # Materialize a boolean through a select.
            value = self.lower_expr(expr.operand)
            dest = self.tac.new_temp()
            self.emit(
                op="select", line=expr.line, dest=dest, bin_op="==",
                a=value, b=0, tval=1, fval=0,
            )
            return dest
        value = self.lower_expr(expr.operand)
        dest = self.tac.new_temp()
        op = "neg" if expr.op == "-" else "not"
        self.emit(op="un", line=expr.line, dest=dest, bin_op=op, a=value)
        return dest

    def lower_binary(self, expr: ast.Binary) -> Value:
        if expr.op in ("&&", "||"):
            return self._materialize_bool(expr)
        if expr.op in _CMP_OPS:
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            dest = self.tac.new_temp()
            self.emit(
                op="select", line=expr.line, dest=dest, bin_op=expr.op,
                a=left, b=right, tval=1, fval=0,
            )
            return dest
        left_type = self.type_of(expr.left).decayed()
        right_type = self.type_of(expr.right).decayed()
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        # Pointer arithmetic: scale the integer side by the element size.
        if left_type.pointer and expr.op in ("+", "-") and not right_type.pointer:
            right = self._scale(right, left_type.element_size, expr.line)
        elif right_type.pointer and expr.op == "+" and not left_type.pointer:
            left = self._scale(left, right_type.element_size, expr.line)
        dest = self.tac.new_temp()
        self.emit(op="bin", line=expr.line, dest=dest, bin_op=expr.op,
                  a=left, b=right)
        return dest

    def _scale(self, value: Value, factor: int, line: int) -> Value:
        if factor == 1:
            return value
        if isinstance(value, int):
            return value * factor
        dest = self.tac.new_temp()
        self.emit(op="bin", line=line, dest=dest, bin_op="*", a=value, b=factor)
        return dest

    def _materialize_bool(self, expr: ast.Expr) -> Value:
        true_label = self.tac.new_label("bt")
        false_label = self.tac.new_label("bf")
        end_label = self.tac.new_label("bend")
        result_slot = f"%bool{self.tac.new_temp()[2:]}"
        self.lower_cond(expr, true_label, false_label)
        self.emit(op="label", line=expr.line, label=true_label)
        self.emit(op="const", line=expr.line, dest=result_slot, a=1)
        self.emit(op="jmp", line=expr.line, label=end_label)
        self.emit(op="label", line=expr.line, label=false_label)
        self.emit(op="const", line=expr.line, dest=result_slot, a=0)
        self.emit(op="label", line=expr.line, label=end_label)
        return result_slot

    def lower_assign(self, expr: ast.Assign, want_value: bool) -> Value:
        addr, size = self.lower_lvalue(expr.target)
        if expr.op is None:
            value = self.lower_expr(expr.value)
        else:
            old = self.tac.new_temp()
            self.emit(op="load", line=expr.line, dest=old, addr=addr, size=size)
            rhs = self.lower_expr(expr.value)
            target_type = self.type_of(expr.target).decayed()
            if target_type.pointer and expr.op in ("+", "-"):
                rhs = self._scale(rhs, target_type.element_size, expr.line)
            value = self.tac.new_temp()
            self.emit(op="bin", line=expr.line, dest=value, bin_op=expr.op,
                      a=old, b=rhs)
        self.emit(op="store", line=expr.line, a=value, addr=addr, size=size)
        return value

    def lower_call(self, expr: ast.Call, want_value: bool) -> Value:
        signature = self.signatures.get(expr.func)
        if signature is None:
            raise SemanticError(f"call to undefined function {expr.func!r}",
                                expr.line)
        _, param_types = signature
        if len(param_types) != len(expr.args):
            raise SemanticError(
                f"{expr.func} expects {len(param_types)} args, got "
                f"{len(expr.args)}", expr.line,
            )
        args = tuple(self.lower_expr(arg) for arg in expr.args)
        dest = self.tac.new_temp() if want_value and not signature[0].is_void \
            else None
        self.emit(op="call", line=expr.line, dest=dest, name=expr.func, args=args)
        return dest if dest is not None else 0
