"""MiniC abstract syntax tree.

Every node carries its source line; the rule learner's whole premise is
grouping machine instructions by the source line they came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- types --------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """A MiniC type: ``int``, ``char``, ``void``, or a pointer/array.

    ``base`` is "int" | "char" | "void"; ``pointer`` marks one level of
    indirection (arrays decay to pointers); ``array_size`` is set only
    on array declarations.
    """

    base: str
    pointer: bool = False
    array_size: int | None = None

    @property
    def is_void(self) -> bool:
        return self.base == "void" and not self.pointer

    @property
    def element_size(self) -> int:
        """Size in bytes of what this (pointer/array) type points at."""
        return 1 if self.base == "char" else 4

    @property
    def size(self) -> int:
        if self.array_size is not None:
            return self.array_size * self.element_size
        if self.pointer:
            return 4
        return 1 if self.base == "char" else 4

    def decayed(self) -> "Type":
        """Array-to-pointer decay."""
        if self.array_size is not None:
            return Type(self.base, pointer=True)
        return self

    def __str__(self) -> str:
        text = self.base
        if self.pointer:
            text += "*"
        if self.array_size is not None:
            text += f"[{self.array_size}]"
        return text


INT = Type("int")
CHAR = Type("char")
VOID = Type("void")


# -- expressions ---------------------------------------------------------------


@dataclass
class Expr:
    line: int


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class Name(Expr):
    ident: str


@dataclass
class Unary(Expr):
    op: str  # "-" "~" "!" "*" "&"
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # arithmetic / comparison / logical
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    """``target = value`` or compound ``target op= value``."""

    target: Expr  # Name, Index, or Unary("*")
    value: Expr
    op: str | None = None  # "+" for "+=", etc.


@dataclass
class Index(Expr):
    """``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    func: str
    args: list[Expr] = field(default_factory=list)


# -- statements -----------------------------------------------------------------


@dataclass
class Stmt:
    line: int


@dataclass
class Decl(Stmt):
    name: str
    type: Type
    init: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then_body: list[Stmt]
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr
    body: list[Stmt]


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Expr | None
    body: list[Stmt]


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- top level -------------------------------------------------------------------


@dataclass
class Param:
    name: str
    type: Type
    line: int


@dataclass
class Function:
    name: str
    return_type: Type
    params: list[Param]
    body: list[Stmt]
    line: int


@dataclass
class Global:
    name: str
    type: Type
    init: list[int] | None  # scalar init = [value]; arrays = values
    line: int


@dataclass
class Program:
    functions: list[Function] = field(default_factory=list)
    globals: list[Global] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)
