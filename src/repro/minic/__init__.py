"""MiniC: the dual-compilation substrate.

A from-scratch compiler for a C subset with two backends (ARM32 and
IA-32), four optimization levels (``-O0``..``-O3``), and two codegen
styles (``llvm`` and ``gcc``).  It stands in for the paper's use of
LLVM 3.8 / GCC 4.7: the learner consumes the per-instruction source-line
debug info and the IR variable names it attaches to memory operands.

Public entry point::

    from repro.minic import compile_source
    program = compile_source(source, target="arm", opt_level=2, style="llvm")
"""

from repro.minic.compile import CompileOptions, CompiledProgram, compile_source
from repro.minic.errors import MiniCError, ParseError, SemanticError
from repro.minic.format import format_source
from repro.minic.interp import run_tac

__all__ = [
    "CompileOptions",
    "CompiledProgram",
    "compile_source",
    "format_source",
    "MiniCError",
    "ParseError",
    "SemanticError",
    "run_tac",
]
