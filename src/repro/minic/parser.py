"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from repro.minic import ast
from repro.minic.errors import ParseError
from repro.minic.lexer import Token, tokenize

_COMPOUND_ASSIGN = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>"}

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def parse(source: str) -> ast.Program:
    """Parse MiniC source text into an AST program."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._cur
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        if not self._check(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self._cur.text!r}", self._cur.line
            )
        return self._advance()

    # -- grammar ----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._check("eof"):
            self._parse_top_level(program)
        return program

    def _parse_type(self) -> ast.Type:
        token = self._expect("kw")
        if token.text not in ("int", "char", "void"):
            raise ParseError(f"expected a type, found {token.text!r}", token.line)
        pointer = bool(self._accept("op", "*"))
        return ast.Type(token.text, pointer=pointer)

    def _parse_top_level(self, program: ast.Program) -> None:
        base_type = self._parse_type()
        name = self._expect("ident")
        if self._check("op", "("):
            program.functions.append(self._parse_function(base_type, name))
        else:
            program.globals.append(self._parse_global(base_type, name))

    def _parse_function(self, return_type: ast.Type, name: Token) -> ast.Function:
        self._expect("op", "(")
        params: list[ast.Param] = []
        if not self._check("op", ")"):
            if self._check("kw", "void") and self._tokens[self._pos + 1].text == ")":
                self._advance()
            else:
                while True:
                    ptype = self._parse_type()
                    pname = self._expect("ident")
                    if self._accept("op", "["):
                        self._expect("op", "]")
                        ptype = ast.Type(ptype.base, pointer=True)
                    params.append(ast.Param(pname.text, ptype, pname.line))
                    if not self._accept("op", ","):
                        break
        self._expect("op", ")")
        body = self._parse_block()
        return ast.Function(name.text, return_type, params, body, name.line)

    def _parse_global(self, gtype: ast.Type, name: Token) -> ast.Global:
        if self._accept("op", "["):
            size = self._expect("num")
            self._expect("op", "]")
            gtype = ast.Type(gtype.base, array_size=size.value)
        init: list[int] | None = None
        if self._accept("op", "="):
            if self._accept("op", "{"):
                init = []
                while not self._check("op", "}"):
                    init.append(self._parse_const_int())
                    if not self._accept("op", ","):
                        break
                self._expect("op", "}")
            else:
                init = [self._parse_const_int()]
        self._expect("op", ";")
        return ast.Global(name.text, gtype, init, name.line)

    def _parse_const_int(self) -> int:
        negative = bool(self._accept("op", "-"))
        token = self._cur
        if token.kind not in ("num", "char"):
            raise ParseError("expected a constant", token.line)
        self._advance()
        value = token.value or 0
        return -value if negative else value

    def _parse_block(self) -> list[ast.Stmt]:
        self._expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self._check("op", "}"):
            stmts.append(self._parse_statement())
        self._expect("op", "}")
        return stmts

    def _parse_statement(self) -> ast.Stmt:
        token = self._cur
        if token.kind == "kw" and token.text in ("int", "char"):
            return self._parse_decl()
        if self._check("kw", "if"):
            return self._parse_if()
        if self._check("kw", "while"):
            return self._parse_while()
        if self._check("kw", "for"):
            return self._parse_for()
        if self._check("kw", "return"):
            self._advance()
            value = None if self._check("op", ";") else self._parse_expr()
            self._expect("op", ";")
            return ast.Return(token.line, value)
        if self._accept("kw", "break"):
            self._expect("op", ";")
            return ast.Break(token.line)
        if self._accept("kw", "continue"):
            self._expect("op", ";")
            return ast.Continue(token.line)
        if self._check("op", "{"):
            # Anonymous block: flatten into an If(1) is overkill; MiniC
            # treats it as statement sequence via a synthetic If.
            body = self._parse_block()
            return ast.If(token.line, ast.IntLit(token.line, 1), body, [])
        expr = self._parse_expr()
        self._expect("op", ";")
        return ast.ExprStmt(token.line, expr)

    def _parse_decl(self) -> ast.Stmt:
        dtype = self._parse_type()
        name = self._expect("ident")
        if self._accept("op", "["):
            size = self._expect("num")
            self._expect("op", "]")
            dtype = ast.Type(dtype.base, array_size=size.value)
        init = None
        if self._accept("op", "="):
            init = self._parse_expr()
        self._expect("op", ";")
        return ast.Decl(name.line, name.text, dtype, init)

    def _parse_if(self) -> ast.Stmt:
        token = self._expect("kw", "if")
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        then_body = self._parse_body()
        else_body: list[ast.Stmt] = []
        if self._accept("kw", "else"):
            if self._check("kw", "if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_body()
        return ast.If(token.line, cond, then_body, else_body)

    def _parse_while(self) -> ast.Stmt:
        token = self._expect("kw", "while")
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        return ast.While(token.line, cond, self._parse_body())

    def _parse_for(self) -> ast.Stmt:
        token = self._expect("kw", "for")
        self._expect("op", "(")
        init: ast.Stmt | None = None
        if not self._check("op", ";"):
            if self._cur.kind == "kw" and self._cur.text in ("int", "char"):
                init = self._parse_decl()
            else:
                expr = self._parse_expr()
                self._expect("op", ";")
                init = ast.ExprStmt(token.line, expr)
        else:
            self._expect("op", ";")
        cond = None if self._check("op", ";") else self._parse_expr()
        self._expect("op", ";")
        step = None if self._check("op", ")") else self._parse_expr()
        self._expect("op", ")")
        return ast.For(token.line, init, cond, step, self._parse_body())

    def _parse_body(self) -> list[ast.Stmt]:
        if self._check("op", "{"):
            return self._parse_block()
        return [self._parse_statement()]

    # -- expressions ---------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_binary(1)
        token = self._cur
        if token.kind == "op" and token.text == "=":
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(token.line, left, value)
        if token.kind == "op" and token.text in _COMPOUND_ASSIGN:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(token.line, left, value, _COMPOUND_ASSIGN[token.text])
        return left

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._cur
            prec = _PRECEDENCE.get(token.text) if token.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(token.line, token.text, left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self._cur
        if token.kind == "op" and token.text in ("-", "~", "!", "*", "&"):
            self._advance()
            return ast.Unary(token.line, token.text, self._parse_unary())
        if token.kind == "op" and token.text in ("++", "--"):
            self._advance()
            target = self._parse_unary()
            one = ast.IntLit(token.line, 1)
            return ast.Assign(token.line, target, one, token.text[0])
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._accept("op", "["):
                index = self._parse_expr()
                self._expect("op", "]")
                expr = ast.Index(expr.line, expr, index)
            elif self._check("op", "++") or self._check("op", "--"):
                # Post-increment used as a statement only; MiniC gives it
                # pre-increment semantics (value unused in our corpus).
                token = self._advance()
                one = ast.IntLit(token.line, 1)
                expr = ast.Assign(token.line, expr, one, token.text[0])
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._cur
        if token.kind in ("num", "char"):
            self._advance()
            return ast.IntLit(token.line, token.value or 0)
        if token.kind == "ident":
            self._advance()
            if self._accept("op", "("):
                args: list[ast.Expr] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept("op", ","):
                            break
                self._expect("op", ")")
                return ast.Call(token.line, token.text, args)
            return ast.Name(token.line, token.text)
        if self._accept("op", "("):
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line)
