"""Binary symbolic execution (the FuzzBALL substitute).

Executes guest/host instruction snippets over symbolic machine states
built from the IR of :mod:`repro.ir`.  The learner uses it to obtain,
for each snippet, the symbolic expressions of every defined register,
every stored memory value (together with the address expression *at the
time of the access*, per paper Section 3.3), and the final branch
condition.
"""

from repro.symexec.memory import MemoryAccess, SharedSymbolicMemory
from repro.symexec.state import SymbolicState
from repro.symexec.executor import (
    SnippetResult,
    SymbolicExecutionError,
    run_snippet,
)

__all__ = [
    "MemoryAccess",
    "SharedSymbolicMemory",
    "SymbolicState",
    "SnippetResult",
    "SymbolicExecutionError",
    "run_snippet",
]
