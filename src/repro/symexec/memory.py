"""Symbolic memory shared between a guest and a host snippet execution.

Initial memory contents are symbols keyed by the *canonical address
expression* of the access: when the learner's initial operand mapping is
correct, a guest address and its host counterpart simplify to the same
canonical expression over the shared parameter symbols, so both sides
automatically read the same content symbol.  When the mapping is wrong,
the keys differ, the sides read unrelated symbols, and verification
fails — which is exactly the conservative behaviour the learner needs.

Each executing state keeps its own write log (with the address
expression recorded at access time, per Section 3.3 of the paper) and
reads its own writes before falling back to the shared initial contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import ir
from repro.ir.expr import Expr
from repro.ir.simplify import simplify


@dataclass(frozen=True)
class MemoryAccess:
    """One load or store.

    Attributes:
        key: Canonical string of the simplified address expression.
        addr: The address expression as recorded at access time.
        size: Access size in bytes (1 or 4).
        value: Loaded or stored value expression.
    """

    key: str
    addr: Expr
    size: int
    value: Expr


@dataclass
class SharedSymbolicMemory:
    """Initial-content registry shared by both sides of a verification."""

    _contents: dict[tuple[str, int], Expr] = field(default_factory=dict)
    _counter: int = 0

    def canonical_key(self, addr: Expr) -> str:
        return str(simplify(addr))

    def initial_value(self, addr: Expr, size: int) -> Expr:
        """The (lazily created) symbol for the initial contents at
        ``addr``."""
        key = (self.canonical_key(addr), size)
        value = self._contents.get(key)
        if value is None:
            value = ir.sym(size * 8, f"mem{self._counter}")
            self._counter += 1
            self._contents[key] = value
        return value

    @property
    def locations(self) -> dict[tuple[str, int], Expr]:
        return dict(self._contents)
