"""Symbolic machine state implementing the MachineState protocol."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import ir
from repro.ir.expr import Expr
from repro.symexec.memory import MemoryAccess, SharedSymbolicMemory


@dataclass
class SymbolicState:
    """Register/flag/memory state holding IR expressions.

    Attributes:
        prefix: Namespace for the fresh symbols this state mints (e.g.
            ``"g"`` for guest, ``"h"`` for host) so guest and host never
            accidentally share an *unmapped* input.
        initial_regs: Pre-seeded register expressions.  The verifier
            seeds mapped live-in registers of both sides with shared
            parameter symbols.
        memory: The shared initial-contents registry.
    """

    prefix: str
    initial_regs: dict[str, Expr] = field(default_factory=dict)
    memory: SharedSymbolicMemory = field(default_factory=SharedSymbolicMemory)

    def __post_init__(self) -> None:
        self._regs: dict[str, Expr] = dict(self.initial_regs)
        self._flags: dict[str, Expr] = {}
        self._written_regs: list[str] = []
        self._written_flags: list[str] = []
        self._read_regs: list[str] = []
        self._loads: list[MemoryAccess] = []
        self._stores: list[MemoryAccess] = []
        self._imm_ops = {
            "const": lambda c: ir.bv(32, c),
            "neg": ir.neg,
            "not": ir.not_,
            "add": ir.add,
            "sub": ir.sub,
            "mul": ir.mul,
            "and": ir.and_,
            "or": ir.or_,
            "xor": ir.xor,
            "shl": ir.shl,
            "shr": ir.lshr,
        }

    def imm_value(self, expr: tuple) -> Expr:
        """Evaluate a template immediate AST; slots become shared 32-bit
        symbols named after the slot (``i0``, ``i1``, ...)."""
        from repro.isa.operands import eval_immexpr

        class _SlotEnv:
            def __getitem__(_self, name: str) -> Expr:
                return ir.sym(32, str(name))

        return eval_immexpr(expr, _SlotEnv(), self._imm_ops)

    # -- MachineState protocol -----------------------------------------------

    def get_reg(self, name: str) -> Expr:
        value = self._regs.get(name)
        if value is None:
            value = ir.sym(32, f"{self.prefix}_{name}")
            self._regs[name] = value
        if name not in self._read_regs:
            self._read_regs.append(name)
        return value

    def set_reg(self, name: str, value: Expr) -> None:
        self._regs[name] = value
        if name not in self._written_regs:
            self._written_regs.append(name)

    def get_flag(self, name: str) -> Expr:
        value = self._flags.get(name)
        if value is None:
            value = ir.sym(1, f"{self.prefix}_flag_{name}")
            self._flags[name] = value
        return value

    def set_flag(self, name: str, value: Expr) -> None:
        self._flags[name] = value
        if name not in self._written_flags:
            self._written_flags.append(name)

    def load(self, addr: Expr, size: int) -> Expr:
        key = self.memory.canonical_key(addr)
        for store in reversed(self._stores):
            if store.key == key and store.size == size:
                value = store.value
                break
        else:
            value = self.memory.initial_value(addr, size)
        self._loads.append(MemoryAccess(key, addr, size, value))
        return value

    def store(self, addr: Expr, value: Expr, size: int) -> None:
        key = self.memory.canonical_key(addr)
        self._stores.append(MemoryAccess(key, addr, size, value))

    # -- inspection ------------------------------------------------------------

    @property
    def written_regs(self) -> tuple[str, ...]:
        return tuple(self._written_regs)

    @property
    def written_flags(self) -> tuple[str, ...]:
        return tuple(self._written_flags)

    @property
    def read_regs(self) -> tuple[str, ...]:
        return tuple(self._read_regs)

    @property
    def stores(self) -> tuple[MemoryAccess, ...]:
        return tuple(self._stores)

    @property
    def loads(self) -> tuple[MemoryAccess, ...]:
        return tuple(self._loads)

    def reg_value(self, name: str) -> Expr:
        """Current value of a register without recording a read."""
        value = self._regs.get(name)
        if value is None:
            raise KeyError(f"register {name} has no value")
        return value

    def flag_value(self, name: str) -> Expr:
        value = self._flags.get(name)
        if value is None:
            raise KeyError(f"flag {name} has no value")
        return value

    def final_stores(self) -> dict[tuple[str, int], Expr]:
        """Last-written value per (canonical address, size) location."""
        result: dict[tuple[str, int], Expr] = {}
        for store in self._stores:
            result[(store.key, store.size)] = store.value
        return result
