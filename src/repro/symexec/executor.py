"""Snippet execution: run instructions symbolically, collect outcomes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.expr import Expr
from repro.isa.alu import SymbolicALU
from repro.isa.operands import Label
from repro.isa.state import BranchOutcome
from repro.symexec.state import SymbolicState

_ALU = SymbolicALU()


class SymbolicExecutionError(Exception):
    """The snippet hit something the symbolic engine cannot handle.

    The learner counts these as "Other" verification failures, like the
    engine crashes/timeouts reported in the paper's Table 1.
    """


@dataclass
class SnippetResult:
    """Outcome of symbolically executing a straight-line snippet.

    Attributes:
        state: The final symbolic state.
        branch_cond: Condition expression of the final branch, if the
            snippet ends in a conditional/unconditional branch.
        branch_target: Its target label (or address expression).
        mid_branches: Number of non-final branch outcomes encountered —
            a well-formed learning snippet must have none.
    """

    state: SymbolicState
    branch_cond: Expr | None = None
    branch_target: object | None = None
    mid_branches: int = 0
    notes: dict = field(default_factory=dict)


def run_snippet(instructions, execute, state: SymbolicState) -> SnippetResult:
    """Execute ``instructions`` with the ISA's ``execute`` function.

    Raises :class:`SymbolicExecutionError` when an instruction's
    semantics raise (unsupported opcode/operand shape).
    """
    result = SnippetResult(state)
    last_index = len(instructions) - 1
    for i, instr in enumerate(instructions):
        try:
            outcome = execute(instr, state, _ALU)
        except SymbolicExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001 - engine boundary
            raise SymbolicExecutionError(f"{instr}: {exc}") from exc
        branch: BranchOutcome | None = outcome.branch
        if branch is None:
            continue
        if i != last_index:
            result.mid_branches += 1
            continue
        result.branch_cond = branch.cond
        target = branch.target
        result.branch_target = target.name if isinstance(target, Label) else target
    return result
