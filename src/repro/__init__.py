"""Reproduction of "Enhancing Cross-ISA DBT Through Automatically
Learned Translation Rules" (Wang, McCamant, Zhai, Yew — ASPLOS 2018).

Top-level quick tour (see README.md for the full map):

* :mod:`repro.minic` — dual-target C-subset compiler (the LLVM/GCC
  stand-in),
* :mod:`repro.learning` — the paper's contribution: rule learning with
  symbolic verification,
* :mod:`repro.dbt` — the QEMU-like DBT that applies the learned rules,
* :mod:`repro.benchsuite` — the synthetic SPEC CINT2006 programs,
* :mod:`repro.experiments` — regeneration of every table and figure.

>>> from repro.minic import compile_source
>>> from repro.learning import learn_rules
>>> src = '''
... int main(void) {
...   int s = 0;
...   int i = 0;
...   while (i < 9) {
...     s = s + i - 1;
...     i += 1;
...   }
...   return s;
... }
... '''
>>> outcome = learn_rules(compile_source(src, "arm"),
...                       compile_source(src, "x86"))
>>> outcome.report.rules > 0
True
"""

__version__ = "1.0.0"

__all__ = [
    "ir",
    "solver",
    "isa",
    "guest_arm",
    "host_x86",
    "symexec",
    "minic",
    "learning",
    "dbt",
    "benchsuite",
    "experiments",
]
