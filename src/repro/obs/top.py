"""``repro-top``: a live view of a running rule server.

Polls the server's ``stats`` op over the same wire protocol the DBT
clients use and renders the windowed telemetry as a terminal
dashboard::

    repro-top --socket /run/repro/rules.sock            # live, 2s refresh
    repro-top --socket /run/repro/rules.sock --once     # one snapshot
    python -m repro.obs.top --host db1 --port 7421 --json

The dashboard shows the server-side view of the online-learning loop:
gaps/sec arriving, the learner's queue depth, rules/bundles published,
and per-op frame latency quantiles.  Pointed at a ``repro-fleet``
coordinator (same wire protocol), it additionally renders the fleet
panel: per-shard ready/catching-up/down state, generations, queued
gaps, and observed kills.  ``--json`` dumps the raw ``stats`` response
for scripting; ``--once`` renders a single snapshot and exits (the
form CI and the e2e tests use).
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _fmt_rate(series: dict) -> str:
    rate = series.get("rate_per_sec", 0.0)
    window = series.get("window_seconds", 0)
    total = series.get("total", 0)
    lifetime = series.get("lifetime", 0)
    return (
        f"{rate:8.2f}/s  (last {int(window)}s: {int(total)},"
        f" lifetime: {int(lifetime)})"
    )


def _fmt_ms(value) -> str:
    return f"{value:.1f}ms" if isinstance(value, float) else f"{value}ms"


def render(stats: dict) -> str:
    """The ``stats`` response as a dashboard string."""
    lines = ["repro-top — rule service"]
    lines.append(
        "  generation {gen:<6} bundles {bundles:<5} "
        "rules published {rules:<6} learn rounds {rounds}".format(
            gen=stats.get("generation", 0),
            bundles=stats.get("bundles", 0),
            rules=stats.get("rules_published", 0),
            rounds=stats.get("learn_rounds", 0),
        )
    )
    gaps = stats.get("gaps", {})
    lines.append(
        "  gaps: seen {seen}, pending {pending}, settled {settled}".format(
            seen=gaps.get("seen", 0),
            pending=gaps.get("pending", 0),
            settled=gaps.get("settled", 0),
        )
    )
    corpus = stats.get("corpus")
    if corpus and any(corpus.values()):
        lines.append(
            "  corpus: {programs} program(s) ingested, "
            "{gaps} gap(s) queued, {rules} rule(s) learned".format(
                programs=corpus.get("programs", 0),
                gaps=corpus.get("gaps", 0),
                rules=corpus.get("rules", 0),
            )
        )
    fleet = stats.get("fleet")
    if fleet:
        lines.append(
            "  fleet: {ready}/{total} shard(s) ready, "
            "{routed} gap(s) routed, {queued} queued now "
            "({queued_total} ever), {catchups} catch-up(s)".format(
                ready=fleet.get("ready_shards", 0),
                total=fleet.get("total_shards", 0),
                routed=fleet.get("gaps_routed", 0),
                queued=fleet.get("queued_gaps", 0),
                queued_total=fleet.get("gaps_queued_total", 0),
                catchups=fleet.get("catchups", 0),
            )
        )
        shard_lines = fleet.get("shards", {})
        if shard_lines:
            lines.append(f"    {'shard':<10} {'state':<12} "
                         f"{'gen':>6} {'queued':>7} {'kills':>6}")
            for shard_id in sorted(shard_lines):
                link = shard_lines[shard_id]
                lines.append(
                    "    {sid:<10} {state:<12} {gen:>6} {queued:>7} "
                    "{kills:>6}".format(
                        sid=shard_id,
                        state=link.get("state", "?"),
                        gen=link.get("generation", 0),
                        queued=link.get("queued_gaps", 0),
                        kills=link.get("kills_observed", 0),
                    )
                )
    telemetry = stats.get("telemetry")
    if not telemetry:
        lines.append("  (server reports no live telemetry)")
        return "\n".join(lines)
    uptime = telemetry.get("uptime_seconds", 0.0)
    lines.append(f"  uptime {uptime:.0f}s   learner queue depth "
                 f"{telemetry.get('queue_depth', 0)}")
    lines.append("")
    lines.append("  windowed rates")
    for key, label in (("gaps", "gaps absorbed"),
                       ("rules", "rules published"),
                       ("frames", "frames handled")):
        series = telemetry.get(key)
        if series:
            lines.append(f"    {label:<16} {_fmt_rate(series)}")
    ops = telemetry.get("ops", {})
    if ops:
        lines.append("")
        lines.append("  per-op frame latency")
        lines.append(f"    {'op':<14} {'count':>7} {'mean':>9} "
                     f"{'p50':>7} {'p95':>7} {'p99':>7}")
        for op in sorted(ops):
            snap = ops[op]
            quantiles = snap.get("quantiles_ms", {})
            lines.append(
                "    {op:<14} {count:>7} {mean:>9} {p50:>7} {p95:>7} "
                "{p99:>7}".format(
                    op=op,
                    count=snap.get("count", 0),
                    mean=_fmt_ms(snap.get("mean_ms", 0.0)),
                    p50=_fmt_ms(quantiles.get("p50", 0)),
                    p95=_fmt_ms(quantiles.get("p95", 0)),
                    p99=_fmt_ms(quantiles.get("p99", 0)),
                )
            )
    slo = stats.get("slo")
    if slo:
        from repro.obs.slo import slo_report_lines

        lines.append("")
        breaches = slo.get("breaches", [])
        headline = "all objectives ok" if not breaches else \
            f"{len(breaches)} BREACHING: {', '.join(breaches)}"
        lines.append(f"  SLOs — {headline}")
        lines.extend(slo_report_lines(slo))
    profile = stats.get("profile")
    if profile:
        from repro.obs.profiler import profile_report

        lines.append("")
        lines.extend("  " + line
                     for line in profile_report(profile, top=8))
    return "\n".join(lines)


def fetch_stats(socket_path: str | None,
                address: tuple[str, int] | None) -> dict:
    # Imported here so `--help` works without the service package.
    from repro.service.client import RuleServiceClient

    with RuleServiceClient(socket_path=socket_path,
                           address=address) as client:
        return client.stats()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="live telemetry view of a running repro-serve",
    )
    parser.add_argument("--socket", help="unix socket path of the server")
    parser.add_argument("--host", help="TCP host of the server")
    parser.add_argument("--port", type=int, help="TCP port of the server")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh interval in seconds (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="render one snapshot and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw stats response as JSON")
    args = parser.parse_args(argv)

    if args.socket:
        socket_path, address = args.socket, None
    elif args.host and args.port:
        socket_path, address = None, (args.host, args.port)
    else:
        parser.error("pass --socket PATH or --host/--port")

    try:
        while True:
            stats = fetch_stats(socket_path, address)
            if args.json:
                output = json.dumps(stats, indent=2, sort_keys=True)
            else:
                output = render(stats)
            if args.once:
                print(output)
                return 0
            # Clear the screen between refreshes, home the cursor.
            sys.stdout.write("\x1b[2J\x1b[H" + output + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError) as exc:
        print(f"repro-top: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
