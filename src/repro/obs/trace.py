"""Structured tracing: JSON-lines span/event records with causal ids.

One trace file is a sequence of newline-delimited JSON objects::

    {"ts": 0.0, "kind": "event", "name": "trace.header",
     "fields": {"version": 1, "epoch": 1722945600.123, "pid": 4242}}
    {"ts": 0.00013, "kind": "begin", "name": "learn.verify",
     "fields": {"benchmark": "mcf"},
     "trace_id": "9f2c...", "span_id": "01ab..."}
    {"ts": 0.10240, "kind": "end",   "name": "learn.verify",
     "fields": {"benchmark": "mcf", "seconds": 0.10227},
     "trace_id": "9f2c...", "span_id": "01ab..."}

``ts`` is monotonic (``time.perf_counter``), measured from tracer
creation, so records order and subtract reliably within one trace.
The first record of every file is the **trace header**: it carries the
format's semantics ``version`` and the wall-clock ``epoch`` captured at
the same instant as the monotonic origin, so ``epoch + ts`` is an
absolute timestamp and the report layer can stitch trace files from
different processes onto one timeline.

``kind`` is one of ``event`` (a point record), ``begin``/``end`` (a
span; the ``end`` record repeats the ``begin`` fields and adds
``seconds``).  Aggregation by name + discriminating fields still works
exactly as before, but records now optionally carry **causal ids**:

* ``trace_id`` — one end-to-end causal chain (e.g. one translation
  gap's journey from capture to hot-install), shared across processes;
* ``span_id`` — this record's own identity;
* ``parent_id`` — the span this record happened inside.

Spans nest through a per-thread context stack on the tracer.  A
process boundary is crossed with :meth:`Tracer.inject` (current
context as a wire dict) and :func:`extract_context` (wire dict back to
a :class:`SpanContext` to parent remote work), which is how the rule
service's request envelopes carry one trace id from a client's engine
into the server's learning rounds and back.

Record emission is line-atomic (one lock per write), so concurrent
threads — rule-service sync clients, the server's learning executor —
can share one tracer without tearing lines.

The process-global tracer defaults to :data:`NULL_TRACER`, whose
``enabled`` attribute is ``False``; every instrumentation site guards
on it, so tracing-disabled runs pay one attribute check per site.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

RECORD_KINDS = ("event", "begin", "end")

#: Name of the one-record header every tracer emits first.
TRACE_HEADER_NAME = "trace.header"

#: Semantics version of the trace format.  Readers must reject files
#: whose header announces a version they do not understand (the field
#: meanings — not the JSON shape — are what is versioned).
TRACE_SEMANTICS_VERSION = 1


class TraceError(Exception):
    """A malformed trace record or trace file."""


@dataclass(frozen=True)
class SpanContext:
    """The causal coordinates of one record: (trace, span)."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict:
        """The wire form carried in protocol envelopes / gap records."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, data) -> "SpanContext | None":
        """Parse a wire dict; None for missing/malformed context (a
        peer with tracing disabled sends none)."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if isinstance(trace_id, str) and trace_id \
                and isinstance(span_id, str) and span_id:
            return cls(trace_id=trace_id, span_id=span_id)
        return None


def extract_context(data) -> SpanContext | None:
    """Module-level alias of :meth:`SpanContext.from_wire`."""
    return SpanContext.from_wire(data)


@dataclass
class TraceRecord:
    """One line of a trace file."""

    ts: float
    kind: str  # "event" | "begin" | "end"
    name: str
    fields: dict = field(default_factory=dict)
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None

    def to_json(self) -> dict:
        data = {
            "ts": self.ts,
            "kind": self.kind,
            "name": self.name,
            "fields": self.fields,
        }
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.span_id is not None:
            data["span_id"] = self.span_id
        if self.parent_id is not None:
            data["parent_id"] = self.parent_id
        return data

    @classmethod
    def from_json(cls, data: dict) -> "TraceRecord":
        if not isinstance(data, dict):
            raise TraceError(f"trace record must be an object: {data!r}")
        try:
            ts = data["ts"]
            kind = data["kind"]
            name = data["name"]
            fields = data.get("fields", {})
        except KeyError as exc:
            raise TraceError(f"trace record missing key {exc}") from exc
        if not isinstance(ts, (int, float)):
            raise TraceError(f"ts must be a number: {ts!r}")
        if kind not in RECORD_KINDS:
            raise TraceError(f"unknown record kind {kind!r}")
        if not isinstance(name, str) or not name:
            raise TraceError(f"record name must be a string: {name!r}")
        if not isinstance(fields, dict):
            raise TraceError(f"record fields must be an object: {fields!r}")
        ids = {}
        for key in ("trace_id", "span_id", "parent_id"):
            value = data.get(key)
            if value is not None and (not isinstance(value, str) or not value):
                raise TraceError(f"{key} must be a non-empty string: {value!r}")
            ids[key] = value
        return cls(ts=float(ts), kind=kind, name=name, fields=fields, **ids)

    @property
    def context(self) -> SpanContext | None:
        """This record's own causal coordinates (None when untraced)."""
        if self.trace_id is not None and self.span_id is not None:
            return SpanContext(self.trace_id, self.span_id)
        return None


def encode_line(record: TraceRecord) -> str:
    return json.dumps(record.to_json(), separators=(",", ":"))


def decode_line(line: str) -> TraceRecord:
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"bad trace line: {line!r}") from exc
    return TraceRecord.from_json(data)


def new_id() -> str:
    """A 64-bit random hex id (collision-safe at trace scale, and
    unique across processes — ids join records from different hosts)."""
    return os.urandom(8).hex()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code should guard payload construction on
    ``tracer.enabled`` so a disabled run never even builds the field
    dict — the no-op methods exist only as a safety net.
    """

    enabled = False

    def event(self, name: str, context: SpanContext | None = None,
              root: bool = False, **fields) -> SpanContext | None:
        return None

    @contextmanager
    def span(self, name: str, context: SpanContext | None = None,
             root: bool = False, **fields) -> Iterator[SpanContext | None]:
        yield None

    def current_context(self) -> SpanContext | None:
        return None

    def inject(self) -> dict | None:
        return None

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide default tracer.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """A tracer writing JSON-lines records to a file-like sink.

    Construction emits the trace header exactly once: a record named
    :data:`TRACE_HEADER_NAME` whose fields carry the format
    ``version``, the wall-clock ``epoch`` matching the monotonic
    origin, and the ``pid``.  ``records_written`` counts
    instrumentation records only (the header is excluded), so the
    disabled-overhead gate's site-visit bound is unchanged.
    """

    enabled = True

    def __init__(self, sink: IO[str]) -> None:
        self._sink = sink
        # Capture both clocks back-to-back so epoch + ts is wall-clock.
        self._t0 = time.perf_counter()
        self.epoch = time.time()
        # Rule-service deployments trace from several threads at once
        # (concurrent sync clients, the server's learning executor);
        # the lock keeps each JSON line intact.  The span-context stack
        # is per-thread so concurrent spans cannot corrupt each other's
        # parentage.
        self._lock = threading.Lock()
        self._local = threading.local()
        self.records_written = 0
        self._write(TraceRecord(
            ts=0.0, kind="event", name=TRACE_HEADER_NAME,
            fields={
                "version": TRACE_SEMANTICS_VERSION,
                "epoch": self.epoch,
                "pid": os.getpid(),
            },
        ))

    # -- span-context stack ---------------------------------------------------

    def _stack(self) -> list[SpanContext]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_context(self) -> SpanContext | None:
        """The innermost active span on this thread (None outside any)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def inject(self) -> dict | None:
        """The current context as a wire dict (None outside any span) —
        attach it to an outgoing request so the receiving process can
        :func:`extract_context` and continue the same trace."""
        context = self.current_context()
        return context.to_wire() if context is not None else None

    def _resolve_ids(
        self, context: SpanContext | None, root: bool,
    ) -> tuple[str | None, str | None]:
        """(trace_id, parent_id) for a new record under the rules:
        explicit remote context > fresh root > ambient stack."""
        if context is not None:
            return context.trace_id, context.span_id
        if root:
            return new_id(), None
        ambient = self.current_context()
        if ambient is not None:
            return ambient.trace_id, ambient.span_id
        return None, None

    # -- emission -------------------------------------------------------------

    def _write(self, record: TraceRecord, count: bool = False) -> None:
        line = encode_line(record) + "\n"
        with self._lock:
            self._sink.write(line)
            if count:
                self.records_written += 1

    def _emit(self, kind: str, name: str, fields: dict,
              trace_id: str | None = None, span_id: str | None = None,
              parent_id: str | None = None) -> None:
        self._write(TraceRecord(
            ts=time.perf_counter() - self._t0,
            kind=kind, name=name, fields=fields,
            trace_id=trace_id, span_id=span_id, parent_id=parent_id,
        ), count=True)

    def event(self, name: str, context: SpanContext | None = None,
              root: bool = False, **fields) -> SpanContext | None:
        """Emit a point record; returns its :class:`SpanContext` when it
        carries ids (so callers can propagate the new trace onward).

        ``context`` parents the event under a remote span (same trace
        id); ``root=True`` mints a fresh trace id, ignoring the ambient
        stack — the start of a new causal chain (e.g. one translation
        gap).  With neither, the event inherits the ambient span, or
        carries no ids at all outside any span.
        """
        trace_id, parent_id = self._resolve_ids(context, root)
        if trace_id is None:
            self._emit("event", name, fields)
            return None
        span_id = new_id()
        self._emit("event", name, fields,
                   trace_id=trace_id, span_id=span_id, parent_id=parent_id)
        return SpanContext(trace_id, span_id)

    @contextmanager
    def span(self, name: str, context: SpanContext | None = None,
             root: bool = False, **fields) -> Iterator[SpanContext]:
        """A begin/end pair sharing one span id, pushed on the ambient
        stack for its dynamic extent.  Spans always carry ids: with no
        ambient context they root a fresh trace."""
        trace_id, parent_id = self._resolve_ids(context, root)
        if trace_id is None:
            trace_id = new_id()
        span_id = new_id()
        own = SpanContext(trace_id, span_id)
        start = time.perf_counter()
        self._emit("begin", name, dict(fields),
                   trace_id=trace_id, span_id=span_id, parent_id=parent_id)
        stack = self._stack()
        stack.append(own)
        try:
            yield own
        finally:
            stack.pop()
            self._emit(
                "end", name,
                dict(fields, seconds=time.perf_counter() - start),
                trace_id=trace_id, span_id=span_id, parent_id=parent_id,
            )

    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        self.flush()


_TRACER: NullTracer = NULL_TRACER


def get_tracer() -> NullTracer:
    """The process-global tracer (the :data:`NULL_TRACER` by default)."""
    return _TRACER


def set_tracer(tracer: NullTracer | None) -> NullTracer:
    """Install ``tracer`` globally (None restores the null tracer);
    returns the previously installed one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(target: str | Path | IO[str]) -> Iterator[Tracer]:
    """Install a :class:`Tracer` writing to ``target`` for the dynamic
    extent of the block, restoring the previous tracer after.

    ``target`` may be a path (opened for writing, closed on exit) or an
    open file-like object (left open).
    """
    owns_sink = not hasattr(target, "write")
    sink = open(target, "w") if owns_sink else target
    tracer = Tracer(sink)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.flush()
        if owns_sink:
            sink.close()


def read_trace(source: str | Path | IO[str]) -> list[TraceRecord]:
    """Parse a whole trace file (or file-like / string buffer)."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = Path(source).read_text()
    records = []
    for line in io.StringIO(text):
        line = line.strip()
        if line:
            records.append(decode_line(line))
    return records


def trace_header(records: list[TraceRecord]) -> TraceRecord | None:
    """The header record of a parsed trace (None for headerless
    pre-span-format traces)."""
    for record in records:
        if record.name == TRACE_HEADER_NAME:
            return record
    return None


def check_trace_version(records: list[TraceRecord],
                        source: str = "trace") -> TraceRecord | None:
    """Validate the header's semantics version; returns the header.

    Headerless traces (written before the header existed) pass — they
    simply cannot be stitched.  A header announcing a version this
    reader does not understand raises :class:`TraceError`: silently
    misreading re-versioned field semantics is worse than refusing.
    """
    header = trace_header(records)
    if header is None:
        return None
    version = header.fields.get("version")
    if version != TRACE_SEMANTICS_VERSION:
        raise TraceError(
            f"{source}: trace header announces semantics version "
            f"{version!r}; this reader understands only "
            f"{TRACE_SEMANTICS_VERSION}"
        )
    return header
