"""Structured tracing: JSON-lines span/event records.

One trace is a sequence of newline-delimited JSON objects::

    {"ts": 0.00012, "kind": "event", "name": "learn.pair",
     "fields": {"benchmark": "mcf", "line": 14}}
    {"ts": 0.00013, "kind": "begin", "name": "learn.verify",
     "fields": {"benchmark": "mcf"}}
    {"ts": 0.10240, "kind": "end",   "name": "learn.verify",
     "fields": {"benchmark": "mcf", "seconds": 0.10227}}

``ts`` is monotonic (``time.perf_counter``), measured from tracer
creation, so records order and subtract reliably within one trace but
carry no wall-clock meaning.  ``kind`` is one of ``event`` (a point
record), ``begin``/``end`` (a span; the ``end`` record repeats the
``begin`` fields and adds ``seconds``).  Spans need no ids: the report
layer aggregates by ``name`` plus discriminating fields (benchmark,
engine), and spans never interleave within one discriminator.  Record
emission is line-atomic (one lock per write), so concurrent threads —
rule-service sync clients, the server's learning executor — can share
one tracer without tearing lines.

The process-global tracer defaults to :data:`NULL_TRACER`, whose
``enabled`` attribute is ``False``; every instrumentation site guards
on it, so tracing-disabled runs pay one attribute check per site.
"""

from __future__ import annotations

import io
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

RECORD_KINDS = ("event", "begin", "end")


class TraceError(Exception):
    """A malformed trace record or trace file."""


@dataclass
class TraceRecord:
    """One line of a trace file."""

    ts: float
    kind: str  # "event" | "begin" | "end"
    name: str
    fields: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "ts": self.ts,
            "kind": self.kind,
            "name": self.name,
            "fields": self.fields,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TraceRecord":
        if not isinstance(data, dict):
            raise TraceError(f"trace record must be an object: {data!r}")
        try:
            ts = data["ts"]
            kind = data["kind"]
            name = data["name"]
            fields = data.get("fields", {})
        except KeyError as exc:
            raise TraceError(f"trace record missing key {exc}") from exc
        if not isinstance(ts, (int, float)):
            raise TraceError(f"ts must be a number: {ts!r}")
        if kind not in RECORD_KINDS:
            raise TraceError(f"unknown record kind {kind!r}")
        if not isinstance(name, str) or not name:
            raise TraceError(f"record name must be a string: {name!r}")
        if not isinstance(fields, dict):
            raise TraceError(f"record fields must be an object: {fields!r}")
        return cls(ts=float(ts), kind=kind, name=name, fields=fields)


def encode_line(record: TraceRecord) -> str:
    return json.dumps(record.to_json(), separators=(",", ":"))


def decode_line(line: str) -> TraceRecord:
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"bad trace line: {line!r}") from exc
    return TraceRecord.from_json(data)


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code should guard payload construction on
    ``tracer.enabled`` so a disabled run never even builds the field
    dict — the no-op methods exist only as a safety net.
    """

    enabled = False

    def event(self, name: str, **fields) -> None:
        pass

    @contextmanager
    def span(self, name: str, **fields) -> Iterator[None]:
        yield

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide default tracer.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """A tracer writing JSON-lines records to a file-like sink."""

    enabled = True

    def __init__(self, sink: IO[str]) -> None:
        self._sink = sink
        self._t0 = time.perf_counter()
        # Rule-service deployments trace from several threads at once
        # (concurrent sync clients, the server's learning executor);
        # the lock keeps each JSON line intact.
        self._lock = threading.Lock()
        self.records_written = 0

    def _emit(self, kind: str, name: str, fields: dict) -> None:
        record = TraceRecord(
            ts=time.perf_counter() - self._t0,
            kind=kind, name=name, fields=fields,
        )
        line = encode_line(record) + "\n"
        with self._lock:
            self._sink.write(line)
            self.records_written += 1

    def event(self, name: str, **fields) -> None:
        self._emit("event", name, fields)

    @contextmanager
    def span(self, name: str, **fields) -> Iterator[None]:
        start = time.perf_counter()
        self._emit("begin", name, dict(fields))
        try:
            yield
        finally:
            self._emit(
                "end", name,
                dict(fields, seconds=time.perf_counter() - start),
            )

    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        self.flush()


_TRACER: NullTracer = NULL_TRACER


def get_tracer() -> NullTracer:
    """The process-global tracer (the :data:`NULL_TRACER` by default)."""
    return _TRACER


def set_tracer(tracer: NullTracer | None) -> NullTracer:
    """Install ``tracer`` globally (None restores the null tracer);
    returns the previously installed one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(target: str | Path | IO[str]) -> Iterator[Tracer]:
    """Install a :class:`Tracer` writing to ``target`` for the dynamic
    extent of the block, restoring the previous tracer after.

    ``target`` may be a path (opened for writing, closed on exit) or an
    open file-like object (left open).
    """
    owns_sink = not hasattr(target, "write")
    sink = open(target, "w") if owns_sink else target
    tracer = Tracer(sink)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.flush()
        if owns_sink:
            sink.close()


def read_trace(source: str | Path | IO[str]) -> list[TraceRecord]:
    """Parse a whole trace file (or file-like / string buffer)."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = Path(source).read_text()
    records = []
    for line in io.StringIO(text):
        line = line.strip()
        if line:
            records.append(decode_line(line))
    return records
