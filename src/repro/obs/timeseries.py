"""Windowed time-series for live service telemetry.

A :class:`TimeSeries` is a ring of per-second buckets: ``add(n)``
accumulates into the bucket for the current second, and ``rate()`` /
``total()`` read back only the buckets inside the window, so a
long-running ``repro-serve`` answers "gaps/sec right now" without ever
growing memory — the ring recycles buckets in place as time advances.
Reads accept an optional ``window`` narrower than the ring, which is
what multi-window SLO burn rates evaluate over (:mod:`repro.obs.slo`).

Staleness invariant: a bucket is only counted when its recorded
absolute second lies inside ``(now - window, now]``.  Buckets written
a full lap (or more) ago carry an older second and read as zero, so an
idle gap longer than the window can never resurrect previous-lap
counts — :class:`tests.obs.test_timeseries` locks this with injected
clocks.

:class:`SketchLatency` is the duration recorder: a bounded-error
:class:`~repro.obs.sketch.QuantileSketch` underneath, summarised with
guaranteed-accuracy p50/p95/p99.  :class:`LatencyRecorder` — the old
sparse exact-millisecond histogram — remains as a deprecated compat
shim for one release; it now bounds its bucket dict (collapsing the
lowest keys) so long-running servers no longer leak memory through it.

:class:`ServiceTelemetry` bundles the series and recorders the rule
server exposes through its ``stats`` op; ``repro.obs.top`` renders the
snapshot.  Everything here is wall-clock-free on the wire: snapshots
carry rates and histograms, not timestamps, so clients need no clock
agreement with the server.

All classes are thread-safe — the asyncio server records from its
event loop and from learning-executor threads concurrently.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import histogram_quantiles
from repro.obs.sketch import QuantileSketch

#: Cap on the compat LatencyRecorder's sparse histogram.  Small
#: histograms stay exact; beyond this the lowest millisecond keys
#: collapse together, preserving tail quantiles.
MAX_SPARSE_BUCKETS = 512


class TimeSeries:
    """A ring buffer of per-second counting buckets.

    ``window`` seconds of history are retained; older buckets are
    recycled lazily as ``add``/``rate`` observe time advancing.  The
    clock is injectable for deterministic tests.
    """

    def __init__(self, window: float = 60.0, clock=time.monotonic) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1 second: {window!r}")
        self.window = float(window)
        self._clock = clock
        self._slots = int(window)
        # Each slot holds (absolute_second, count); a slot whose
        # recorded second no longer matches is stale and reads as 0.
        self._buckets: list[list] = [[-1, 0.0] for _ in range(self._slots)]
        self._lifetime = 0.0
        self._lock = threading.Lock()

    def _bucket(self, second: int) -> list:
        slot = self._buckets[second % self._slots]
        if slot[0] != second:
            slot[0] = second
            slot[1] = 0.0
        return slot

    def add(self, amount: float = 1) -> None:
        now = int(self._clock())
        with self._lock:
            self._bucket(now)[1] += amount
            self._lifetime += amount

    def total(self, window: float | None = None) -> float:
        """Sum over the live window, or over the trailing ``window``
        seconds when given (clamped to the ring's span).

        Only buckets whose absolute second falls in
        ``[now - w + 1, now]`` count; a bucket last written on a
        previous lap of the ring carries an older second and is
        excluded, so idle gaps longer than the window read as zero.
        """
        now = int(self._clock())
        span = self._slots if window is None else max(
            1, min(self._slots, int(window))
        )
        floor = now - span + 1
        with self._lock:
            return sum(
                count for second, count in self._buckets
                if floor <= second <= now
            )

    def rate(self, window: float | None = None) -> float:
        """Events per second over the live (or trailing) window."""
        span = self.window if window is None else max(
            1.0, min(self.window, float(window))
        )
        return self.total(window) / span

    @property
    def lifetime(self) -> float:
        """Total ever added, independent of the window."""
        with self._lock:
            return self._lifetime

    def snapshot(self) -> dict:
        return {
            "window_seconds": self.window,
            "total": self.total(),
            "rate_per_sec": self.rate(),
            "lifetime": self.lifetime,
        }


class LatencyRecorder:
    """Sparse millisecond histogram with count/sum and quantiles.

    .. deprecated:: PR7
        Compat shim for one release — new callers should use
        :class:`SketchLatency`, whose quantiles carry a guaranteed
        error bound in constant memory.  The shim now caps its bucket
        dict at :data:`MAX_SPARSE_BUCKETS` (lowest keys collapse), so
        it no longer grows without limit under long-running servers.
    """

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        ms = int(round(seconds * 1000))
        with self._lock:
            self._buckets[ms] = self._buckets.get(ms, 0) + 1
            self._count += 1
            self._sum += seconds
            if len(self._buckets) > MAX_SPARSE_BUCKETS:
                self._collapse_locked()

    def _collapse_locked(self) -> None:
        # Fold the lowest millisecond keys together; tail quantiles
        # (the ones anyone alerts on) keep full resolution.
        keys = sorted(self._buckets)
        overflow = len(keys) - MAX_SPARSE_BUCKETS
        sink = keys[overflow]
        for key in keys[:overflow]:
            self._buckets[sink] += self._buckets.pop(key)

    def snapshot(self) -> dict:
        with self._lock:
            buckets = dict(self._buckets)
            count = self._count
            total = self._sum
        return {
            "count": count,
            "mean_ms": (total / count * 1000) if count else 0.0,
            "histogram_ms": buckets,
            "quantiles_ms": histogram_quantiles(buckets),
        }


class SketchLatency:
    """Bounded-error duration recorder: a quantile sketch over
    milliseconds, presenting the same snapshot shape the telemetry
    consumers (stats op, repro-top) already read."""

    def __init__(self, relative_error: float = 0.01) -> None:
        self.sketch = QuantileSketch(relative_error=relative_error)

    def observe(self, seconds: float) -> None:
        self.sketch.observe(seconds * 1000.0)

    def snapshot(self) -> dict:
        summary = self.sketch.summary()
        return {
            "count": summary["count"],
            "mean_ms": summary["mean"],
            "max_ms": summary["max"],
            "relative_error": summary["relative_error"],
            "quantiles_ms": summary["quantiles"],
        }


class ServiceTelemetry:
    """The rule server's live instrument cluster.

    * ``gaps`` — new gap windows absorbed (rate answers "gaps/sec");
    * ``rules`` — rules published by learning rounds;
    * ``frames`` — request frames handled, any op;
    * per-op latency sketches, keyed by op name.

    ``snapshot(queue_depth=...)`` is the JSON body of the ``stats``
    op's ``telemetry`` field; the caller supplies point-in-time gauges
    (learner queue depth) that live outside the telemetry object.
    """

    def __init__(self, window: float = 60.0, clock=time.monotonic) -> None:
        self.gaps = TimeSeries(window, clock)
        self.rules = TimeSeries(window, clock)
        self.frames = TimeSeries(window, clock)
        self._ops: dict[str, SketchLatency] = {}
        self._lock = threading.Lock()
        self._started = time.time()

    def observe_op(self, op: str, seconds: float) -> None:
        """Record one handled frame of ``op`` taking ``seconds``."""
        self.frames.add()
        with self._lock:
            recorder = self._ops.get(op)
            if recorder is None:
                recorder = self._ops[op] = SketchLatency()
        recorder.observe(seconds)

    def op_sketches(self) -> dict:
        """Live per-op :class:`QuantileSketch` objects, keyed by op —
        the exposition endpoint and SLO engine read these."""
        with self._lock:
            return {name: rec.sketch for name, rec in self._ops.items()}

    def snapshot(self, **gauges) -> dict:
        with self._lock:
            ops = dict(self._ops)
        return {
            "uptime_seconds": time.time() - self._started,
            "gaps": self.gaps.snapshot(),
            "rules": self.rules.snapshot(),
            "frames": self.frames.snapshot(),
            "ops": {name: rec.snapshot() for name, rec in ops.items()},
            **gauges,
        }
