"""Windowed time-series for live service telemetry.

A :class:`TimeSeries` is a ring of per-second buckets: ``add(n)``
accumulates into the bucket for the current second, and ``rate()`` /
``total()`` read back only the buckets inside the window, so a
long-running ``repro-serve`` answers "gaps/sec right now" without ever
growing memory — the ring recycles buckets in place as time advances.

:class:`LatencyRecorder` is the companion for durations: a sparse
histogram of millisecond-rounded observations plus running count/sum,
summarised through :func:`repro.obs.metrics.histogram_quantiles`.

:class:`ServiceTelemetry` bundles the series and recorders the rule
server exposes through its ``stats`` op; ``repro.obs.top`` renders the
snapshot.  Everything here is wall-clock-free on the wire: snapshots
carry rates and histograms, not timestamps, so clients need no clock
agreement with the server.

All classes are thread-safe — the asyncio server records from its
event loop and from learning-executor threads concurrently.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import histogram_quantiles


class TimeSeries:
    """A ring buffer of per-second counting buckets.

    ``window`` seconds of history are retained; older buckets are
    recycled lazily as ``add``/``rate`` observe time advancing.  The
    clock is injectable for deterministic tests.
    """

    def __init__(self, window: float = 60.0, clock=time.monotonic) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1 second: {window!r}")
        self.window = float(window)
        self._clock = clock
        self._slots = int(window)
        # Each slot holds (absolute_second, count); a slot whose
        # recorded second no longer matches is stale and reads as 0.
        self._buckets: list[list] = [[-1, 0.0] for _ in range(self._slots)]
        self._lifetime = 0.0
        self._lock = threading.Lock()

    def _bucket(self, second: int) -> list:
        slot = self._buckets[second % self._slots]
        if slot[0] != second:
            slot[0] = second
            slot[1] = 0.0
        return slot

    def add(self, amount: float = 1) -> None:
        now = int(self._clock())
        with self._lock:
            self._bucket(now)[1] += amount
            self._lifetime += amount

    def total(self) -> float:
        """Sum over the live window."""
        now = int(self._clock())
        floor = now - self._slots + 1
        with self._lock:
            return sum(
                count for second, count in self._buckets
                if floor <= second <= now
            )

    def rate(self) -> float:
        """Events per second over the live window."""
        return self.total() / self.window

    @property
    def lifetime(self) -> float:
        """Total ever added, independent of the window."""
        with self._lock:
            return self._lifetime

    def snapshot(self) -> dict:
        return {
            "window_seconds": self.window,
            "total": self.total(),
            "rate_per_sec": self.rate(),
            "lifetime": self.lifetime,
        }


class LatencyRecorder:
    """Sparse millisecond histogram with count/sum and quantiles."""

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        ms = int(round(seconds * 1000))
        with self._lock:
            self._buckets[ms] = self._buckets.get(ms, 0) + 1
            self._count += 1
            self._sum += seconds

    def snapshot(self) -> dict:
        with self._lock:
            buckets = dict(self._buckets)
            count = self._count
            total = self._sum
        return {
            "count": count,
            "mean_ms": (total / count * 1000) if count else 0.0,
            "histogram_ms": buckets,
            "quantiles_ms": histogram_quantiles(buckets),
        }


class ServiceTelemetry:
    """The rule server's live instrument cluster.

    * ``gaps`` — new gap windows absorbed (rate answers "gaps/sec");
    * ``rules`` — rules published by learning rounds;
    * ``frames`` — request frames handled, any op;
    * per-op latency recorders, keyed by op name.

    ``snapshot(queue_depth=...)`` is the JSON body of the ``stats``
    op's ``telemetry`` field; the caller supplies point-in-time gauges
    (learner queue depth) that live outside the telemetry object.
    """

    def __init__(self, window: float = 60.0, clock=time.monotonic) -> None:
        self.gaps = TimeSeries(window, clock)
        self.rules = TimeSeries(window, clock)
        self.frames = TimeSeries(window, clock)
        self._ops: dict[str, LatencyRecorder] = {}
        self._lock = threading.Lock()
        self._started = time.time()

    def observe_op(self, op: str, seconds: float) -> None:
        """Record one handled frame of ``op`` taking ``seconds``."""
        self.frames.add()
        with self._lock:
            recorder = self._ops.get(op)
            if recorder is None:
                recorder = self._ops[op] = LatencyRecorder()
        recorder.observe(seconds)

    def snapshot(self, **gauges) -> dict:
        with self._lock:
            ops = dict(self._ops)
        return {
            "uptime_seconds": time.time() - self._started,
            "gaps": self.gaps.snapshot(),
            "rules": self.rules.snapshot(),
            "frames": self.frames.snapshot(),
            "ops": {name: rec.snapshot() for name, rec in ops.items()},
            **gauges,
        }
