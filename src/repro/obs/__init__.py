"""Observability: structured tracing and metrics for learning + DBT.

The subsystem is dependency-free and always importable; instrumented
code pays near-zero cost while the global tracer is the default
:class:`~repro.obs.trace.NullTracer` (a single ``enabled`` attribute
check per instrumentation site).

* :mod:`repro.obs.trace` — JSON-lines span/event records with
  monotonic timestamps, a process-global tracer slot.
* :mod:`repro.obs.metrics` — named counters and histograms with a
  picklable ``snapshot()``/``merge()`` API that crosses the
  process-pool boundary in :mod:`repro.learning.parallel`.
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``
  aggregates a trace into a human-readable report and cross-checks the
  per-event aggregates against the ``LearningReport`` / ``DBTStats``
  summary records embedded in the same trace.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    format_metrics,
    get_metrics,
    set_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceError,
    TraceRecord,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    tracing,
)

__all__ = [
    "MetricsRegistry",
    "format_metrics",
    "get_metrics",
    "set_metrics",
    "NULL_TRACER",
    "NullTracer",
    "TraceError",
    "TraceRecord",
    "Tracer",
    "get_tracer",
    "read_trace",
    "set_tracer",
    "tracing",
]
