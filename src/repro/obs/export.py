"""Dependency-free Prometheus text-format exposition.

Renders the system's observability surfaces — MetricsRegistry
snapshots, live service telemetry, SLO reports, profiler dumps — as
Prometheus text exposition format 0.0.4, so any standard scraper
(Prometheus, VictoriaMetrics, a curl in a dashboard script) can
ingest a ``repro-serve`` fleet without this repo growing a client
dependency.

Three entry points:

* :func:`render_exposition` — pure function from snapshot dicts to
  exposition text; the server's ``metrics`` op calls this.
* ``python -m repro.obs.export`` — one-shot CLI: fetch a running
  server's exposition over the wire protocol, or render local
  snapshot JSON files.
* :func:`parse_exposition` — a strict validator/parser for the
  subset of the format we emit.  Tests run every rendering through
  it, so "output parses as valid Prometheus text" is enforced, not
  hoped.

Mapping conventions (the standard ones):

* counters  -> ``<ns>_<name>_total`` with ``# TYPE ... counter``;
* sparse histograms and sketches -> summaries: ``<ns>_<name>``
  samples labelled ``{quantile="0.5"}`` plus ``_sum``/``_count``;
* telemetry rates and gauges -> ``# TYPE ... gauge``;
* SLO state -> ``<ns>_slo_breach{objective="..."} 0|1`` plus
  per-window ``<ns>_slo_burn_rate{objective,window}``;
* profiles -> ``<ns>_profile_samples_total{phase="..."}``.

Metric and label names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``); dots in our internal names become
underscores.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.sketch import QuantileSketch

#: Default namespace every exported metric is prefixed with.
NAMESPACE = "repro"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One sample line: name{labels} value  — labels optional.
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{([^}]*)\})?"
    r" (-?(?:[0-9]*\.)?[0-9]+(?:[eE][+-]?[0-9]+)?|NaN|[+-]Inf)$"
)
_LABEL_PAIR = re.compile(
    r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$'
)


class ExpositionError(ValueError):
    """Text that does not conform to the exposition format."""


def sanitize_name(name: str) -> str:
    """Coerce an internal dotted metric name to the Prometheus
    grammar."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\")
            .replace('"', r'\"').replace("\n", r"\n"))


def _fmt(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


class _Writer:
    """Accumulates HELP/TYPE/sample lines, one family at a time."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._seen: set[str] = set()

    def family(self, name: str, kind: str, help_text: str) -> str:
        name = sanitize_name(name)
        if name not in self._seen:
            self._seen.add(name)
            self.lines.append(f"# HELP {name} {help_text}")
            self.lines.append(f"# TYPE {name} {kind}")
        return name

    def sample(self, name: str, value, labels: dict | None = None,
               suffix: str = "") -> None:
        rendered = ""
        if labels:
            pairs = ",".join(
                f'{sanitize_name(k)}="{_escape_label(v)}"'
                for k, v in labels.items()
            )
            rendered = "{" + pairs + "}"
        self.lines.append(
            f"{sanitize_name(name) + suffix}{rendered} {_fmt(value)}"
        )

    def text(self) -> str:
        return "\n".join(self.lines) + "\n" if self.lines else ""


def _render_summary(writer: _Writer, family: str, sketch,
                    help_text: str) -> None:
    name = writer.family(family, "summary", help_text)
    for q in (0.5, 0.95, 0.99):
        writer.sample(name, sketch.quantile(q),
                      labels={"quantile": str(q)})
    writer.sample(name, sketch.sum, suffix="_sum")
    writer.sample(name, sketch.count, suffix="_count")


def render_metrics(snapshot: dict, writer: _Writer,
                   namespace: str = NAMESPACE) -> None:
    """Counters, sparse histograms, and sketches from a
    MetricsRegistry snapshot."""
    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        family = writer.family(
            f"{namespace}_{sanitize_name(name)}_total", "counter",
            f"repro counter {name}",
        )
        writer.sample(family, float(value))
    for name in sorted(snapshot.get("histograms", {})):
        bucket = snapshot["histograms"][name]
        total = sum(bucket.values())
        if not total:
            continue
        weighted = sum(
            float(value) * count for value, count in bucket.items()
        )
        family = writer.family(
            f"{namespace}_{sanitize_name(name)}", "summary",
            f"repro histogram {name}",
        )
        quantiles = snapshot.get("quantiles", {}).get(name, {})
        for label, q in (("0.5", "p50"), ("0.95", "p95"),
                         ("0.99", "p99")):
            if q in quantiles:
                writer.sample(family, float(quantiles[q]),
                              labels={"quantile": label})
        writer.sample(family, weighted, suffix="_sum")
        writer.sample(family, total, suffix="_count")
    for name in sorted(snapshot.get("sketches", {})):
        sketch = QuantileSketch.from_snapshot(
            snapshot["sketches"][name]
        )
        _render_summary(
            writer, f"{namespace}_{sanitize_name(name)}", sketch,
            f"repro sketch {name} (relative error "
            f"{sketch.relative_error})",
        )


def render_telemetry(snapshot: dict, writer: _Writer,
                     namespace: str = NAMESPACE) -> None:
    """Service telemetry: series rates plus per-op latency summaries."""
    for series in ("gaps", "rules", "frames"):
        info = snapshot.get(series)
        if not info:
            continue
        family = writer.family(
            f"{namespace}_service_{series}_per_second", "gauge",
            f"windowed {series}/sec over the live window",
        )
        writer.sample(family, info.get("rate_per_sec", 0.0))
        family = writer.family(
            f"{namespace}_service_{series}_lifetime_total", "counter",
            f"lifetime {series} count",
        )
        writer.sample(family, info.get("lifetime", 0.0))
    ops = snapshot.get("ops", {})
    if ops:
        family = writer.family(
            f"{namespace}_service_op_latency_ms", "summary",
            "per-op frame latency (milliseconds, sketch-backed)",
        )
        for op in sorted(ops):
            info = ops[op]
            for label, q in (("0.5", "p50"), ("0.95", "p95"),
                             ("0.99", "p99")):
                value = info.get("quantiles_ms", {}).get(q)
                if value is not None:
                    writer.sample(
                        family, value,
                        labels={"op": op, "quantile": label},
                    )
            writer.sample(
                family,
                info.get("mean_ms", 0.0) * info.get("count", 0),
                labels={"op": op}, suffix="_sum",
            )
            writer.sample(family, info.get("count", 0),
                          labels={"op": op}, suffix="_count")
    for gauge in ("queue_depth", "uptime_seconds"):
        if gauge in snapshot:
            family = writer.family(
                f"{namespace}_service_{gauge}", "gauge",
                f"service {gauge}",
            )
            writer.sample(family, float(snapshot[gauge]))


def render_slo(report: dict, writer: _Writer,
               namespace: str = NAMESPACE) -> None:
    """SLO evaluation: breach flags and per-window burn rates."""
    objectives = report.get("objectives", [])
    if not objectives:
        return
    breach = writer.family(
        f"{namespace}_slo_breach", "gauge",
        "1 when the objective is in breach, else 0",
    )
    for result in objectives:
        writer.sample(breach, 1.0 if result["state"] == "breach"
                      else 0.0,
                      labels={"objective": result["name"]})
    burn = None
    for result in objectives:
        for window in result.get("windows", []):
            if burn is None:
                burn = writer.family(
                    f"{namespace}_slo_burn_rate", "gauge",
                    "error-budget burn rate per evaluation window",
                )
            writer.sample(
                burn, window["burn_rate"],
                labels={
                    "objective": result["name"],
                    "window": str(window["window_seconds"]),
                },
            )


def render_profile(snapshot: dict, writer: _Writer,
                   namespace: str = NAMESPACE) -> None:
    """Profiler: per-phase sample counts."""
    phases = snapshot.get("phases", {})
    if not phases:
        return
    family = writer.family(
        f"{namespace}_profile_samples_total", "counter",
        f"profiler samples by phase ({snapshot.get('hz', 0)}hz)",
    )
    for phase in sorted(phases):
        writer.sample(family, phases[phase].get("self_samples", 0),
                      labels={"phase": phase})
    family = writer.family(
        f"{namespace}_profile_wall_seconds", "gauge",
        "profiler wall-clock coverage",
    )
    writer.sample(family, snapshot.get("wall_seconds", 0.0))


def render_exposition(metrics: dict | None = None,
                      telemetry: dict | None = None,
                      slo: dict | None = None,
                      profile: dict | None = None,
                      namespace: str = NAMESPACE) -> str:
    """The full exposition page from whichever surfaces exist."""
    writer = _Writer()
    if metrics:
        render_metrics(metrics, writer, namespace)
    if telemetry:
        render_telemetry(telemetry, writer, namespace)
    if slo:
        render_slo(slo, writer, namespace)
    if profile:
        render_profile(profile, writer, namespace)
    return writer.text()


# -- validation ---------------------------------------------------------------


def parse_exposition(text: str) -> list:
    """Parse exposition text, strictly.

    Returns ``[(name, labels_dict, value)]`` samples.  Raises
    :class:`ExpositionError` on any grammar violation: bad names, bad
    label syntax, TYPE-less samples, unparsable values.
    """
    samples = []
    typed: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ExpositionError(
                    f"line {lineno}: malformed comment: {raw!r}"
                )
            if not _NAME_OK.match(parts[2]):
                raise ExpositionError(
                    f"line {lineno}: bad metric name {parts[2]!r}"
                )
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "summary",
                                    "histogram", "untyped"):
                    raise ExpositionError(
                        f"line {lineno}: bad type {parts[3]!r}"
                    )
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free comment
        match = _SAMPLE.match(line)
        if not match:
            raise ExpositionError(
                f"line {lineno}: unparsable sample: {raw!r}"
            )
        name, label_blob, value = match.groups()
        base = name
        for suffix in ("_sum", "_count", "_total", "_bucket"):
            if name.endswith(suffix) and name[:-len(suffix)] in typed:
                base = name[:-len(suffix)]
                break
        if base not in typed and name not in typed:
            raise ExpositionError(
                f"line {lineno}: sample {name!r} has no TYPE"
            )
        labels = {}
        if label_blob:
            for pair in _split_labels(label_blob, lineno):
                pair_match = _LABEL_PAIR.match(pair)
                if not pair_match:
                    raise ExpositionError(
                        f"line {lineno}: bad label pair {pair!r}"
                    )
                key, val = pair_match.groups()
                if not _LABEL_OK.match(key):
                    raise ExpositionError(
                        f"line {lineno}: bad label name {key!r}"
                    )
                labels[key] = val
        samples.append((name, labels, float(value)))
    return samples


def _split_labels(blob: str, lineno: int) -> list:
    """Split ``a="x",b="y"`` at commas outside quoted values."""
    parts = []
    current = []
    in_quotes = False
    escaped = False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if in_quotes:
        raise ExpositionError(
            f"line {lineno}: unterminated label value in {blob!r}"
        )
    if current:
        parts.append("".join(current))
    return [p for p in parts if p]


# -- CLI ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="One-shot Prometheus exposition: fetch from a "
                    "running repro-serve, or render snapshot JSON.",
    )
    parser.add_argument("--socket", help="server unix socket path")
    parser.add_argument("--host", help="server TCP host")
    parser.add_argument("--port", type=int, help="server TCP port")
    parser.add_argument(
        "--metrics-json",
        help="render a MetricsRegistry snapshot JSON file",
    )
    parser.add_argument(
        "--profile-json",
        help="render a profiler snapshot JSON file",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="parse the output before printing (exit 1 on invalid)",
    )
    args = parser.parse_args(argv)

    if args.socket or args.host:
        from repro.service.client import RuleServiceClient

        address = (args.host, args.port) if args.host else None
        client = RuleServiceClient(
            socket_path=args.socket, address=address
        )
        try:
            response = client.metrics()
        finally:
            client.close()
        text = render_exposition(
            metrics=response.get("metrics"),
            telemetry=response.get("telemetry"),
            slo=response.get("slo"),
            profile=response.get("profile"),
        )
    else:
        metrics = None
        if args.metrics_json:
            with open(args.metrics_json, encoding="utf-8") as handle:
                metrics = json.load(handle)
        else:
            registry = get_metrics()
            if isinstance(registry, MetricsRegistry):
                metrics = registry.snapshot()
        profile = None
        if args.profile_json:
            with open(args.profile_json, encoding="utf-8") as handle:
                profile = json.load(handle)
        text = render_exposition(metrics=metrics, profile=profile)

    if args.validate:
        try:
            parse_exposition(text)
        except ExpositionError as exc:
            print(f"invalid exposition: {exc}", file=sys.stderr)
            return 1
    sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
