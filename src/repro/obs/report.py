"""Aggregate a trace file into a human-readable report.

``python -m repro.obs.report trace.jsonl`` parses the JSON-lines trace
written by ``--trace`` (on ``repro-learn`` / ``repro-experiments``) and
prints:

* the learning-stage time breakdown and the full Table 1 counts,
  re-derived purely from per-candidate lifecycle events;
* per-engine DBT summaries — rule coverage (Figure 11's S_p/D_p), the
  rule-hit length distribution (Figure 12), rule-miss reasons ranked,
  and the top-N hottest blocks by attributed execution cycles;
* rule-service activity (gap reports, bundle publishes, syncs and
  hot-installs) when the trace covers a ``repro-serve`` deployment;
* a per-rule **profitability table** (cycles saved vs. lookup cost per
  rule digest, from ``dbt.rule_profile`` ledgers), flagging rules
  whose lookup cost exceeds their savings;
* a reconciliation section cross-checking the per-event aggregates
  against the ``LearningReport`` (``learn.report`` records) and
  ``DBTStats`` (``dbt.run`` records) accounting paths embedded in the
  same trace — plus, for service traces, the client's claimed sync
  installs against the engines' ``dbt.hot_install`` events, and the
  profitability ledgers against the per-translate rule-hit counters.
  The paths are computed independently, so agreement validates both;
  any discrepancy fails the CLI with exit code 1.

Several trace files aggregate together (``report a.jsonl b.jsonl``),
and ``--stitch`` additionally joins them onto one absolute timeline
using each file's trace-header epoch: a gap's ``service.gap_capture``
(client file), its ``service.gap_settled`` naming the published bundle
(server file), and the ``dbt.hot_install`` of that bundle (client
file) share one trace id, so the report can state end-to-end
gap-to-installed-rule latency percentiles for the whole deployment.

Files whose trace header announces an unknown semantics version are
rejected loudly — misreading re-versioned fields would silently
corrupt every figure this tool re-derives.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.trace import (
    TraceError,
    TraceRecord,
    check_trace_version,
    read_trace,
)

PREP_REASONS = ("CI", "PI", "MB")
PARAM_REASONS = ("Num", "Name", "FailG")
VERIFY_REASONS = ("Rg", "Mm", "Br", "Other", "TO", "EC")

#: count_signature field -> how it derives from per-event aggregation.
_SIGNATURE_FIELDS = (
    "total_sequences", "prep_ci", "prep_pi", "prep_mb", "param_num",
    "param_name", "param_failg", "verify_rg", "verify_mm", "verify_br",
    "verify_other", "rules", "verify_calls", "dedup_saved_calls",
    "cache_hits", "cache_misses", "verify_to", "verify_ec",
)


@dataclass
class LearningAggregate:
    """Per-benchmark learning counts re-derived from lifecycle events."""

    benchmark: str
    pairs: int = 0
    #: Sequences empty after control-glue stripping (learn.empty):
    #: counted in total_sequences, absent from the failure taxonomy.
    empty: int = 0
    prep_fail: dict = field(default_factory=dict)    # reason -> count
    param_fail: dict = field(default_factory=dict)   # reason -> count
    verify_fail: dict = field(default_factory=dict)  # reason -> count
    verdicts: int = 0
    rules_pre_dedup: int = 0
    rules: int = 0
    verify_calls: int = 0
    dedup_saved_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: The LearningReport accounting path, summed over every
    #: learn.report event for this benchmark — a corpus origin is
    #: learned once per codegen style, and the per-event aggregates
    #: above accumulate across those calls too.
    report_counts: dict | None = None
    report_timings: dict | None = None

    @property
    def total_sequences(self) -> int:
        return self.pairs + self.empty + sum(self.prep_fail.values())

    def counts(self) -> dict:
        """Table 1 counts in ``LearningReport`` field names."""
        return {
            "total_sequences": self.total_sequences,
            "prep_ci": self.prep_fail.get("CI", 0),
            "prep_pi": self.prep_fail.get("PI", 0),
            "prep_mb": self.prep_fail.get("MB", 0),
            "param_num": self.param_fail.get("Num", 0),
            "param_name": self.param_fail.get("Name", 0),
            "param_failg": self.param_fail.get("FailG", 0),
            "verify_rg": self.verify_fail.get("Rg", 0),
            "verify_mm": self.verify_fail.get("Mm", 0),
            "verify_br": self.verify_fail.get("Br", 0),
            "verify_other": self.verify_fail.get("Other", 0),
            "rules": self.rules,
            "verify_calls": self.verify_calls,
            "dedup_saved_calls": self.dedup_saved_calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "verify_to": self.verify_fail.get("TO", 0),
            "verify_ec": self.verify_fail.get("EC", 0),
        }

    def count_signature(self) -> tuple:
        """Shaped exactly like
        :meth:`repro.learning.pipeline.LearningReport.count_signature`."""
        counts = self.counts()
        return (self.benchmark,) + tuple(
            counts[name] for name in _SIGNATURE_FIELDS
        )


@dataclass
class EngineAggregate:
    """Per-engine DBT counters re-derived from translate/block events."""

    engine: int
    mode: str = ""
    translated_blocks: int = 0
    static_guest: int = 0
    static_rule: int = 0
    translation_cycles: float = 0.0
    hit_lengths: dict = field(default_factory=dict)   # length -> count
    miss_reasons: dict = field(default_factory=dict)  # reason -> count
    #: addr -> [exec_count, exec_cycles, exec*guest_len, exec*covered],
    #: summed over every run the trace saw.  Products are accumulated
    #: per event (not recomputed from a single stored length) because a
    #: guard retranslation can replace a block at the same address with
    #: different coverage mid-run.
    blocks: dict = field(default_factory=dict)
    #: digest -> the LAST dbt.rule_profile record's fields.  The
    #: engine emits lifetime-cumulative ledgers at every run end, so
    #: later records supersede earlier ones rather than summing.
    rule_profiles: dict = field(default_factory=dict)
    #: The DBTStats accounting path (the last dbt.run event).
    run_record: dict | None = None
    runs: int = 0

    @property
    def dispatches(self) -> int:
        return sum(b[0] for b in self.blocks.values())

    @property
    def dynamic_guest(self) -> int:
        return sum(b[2] for b in self.blocks.values())

    @property
    def dynamic_rule_guest(self) -> int:
        return sum(b[3] for b in self.blocks.values())

    @property
    def exec_cycles(self) -> float:
        return sum(b[1] for b in self.blocks.values())

    @property
    def static_coverage(self) -> float:
        return self.static_rule / self.static_guest \
            if self.static_guest else 0.0

    @property
    def dynamic_coverage(self) -> float:
        return self.dynamic_rule_guest / self.dynamic_guest \
            if self.dynamic_guest else 0.0

    def hottest_blocks(self, top: int = 10) -> list[tuple]:
        """(addr, exec_cycles, exec_count, share) rows, hottest first."""
        total = self.exec_cycles or 1.0
        ranked = sorted(
            self.blocks.items(), key=lambda kv: kv[1][1], reverse=True
        )
        return [
            (addr, cycles, count, cycles / total)
            for addr, (count, cycles, _, _) in ranked[:top]
        ]

    def ranked_miss_reasons(self) -> list[tuple[str, int]]:
        return sorted(self.miss_reasons.items(),
                      key=lambda kv: kv[1], reverse=True)

    def profitability(self) -> list[dict]:
        """Per-rule ledgers, most profitable first (the engine's own
        ``rule_profitability()`` ordering: net cycles desc, digest)."""
        return sorted(
            self.rule_profiles.values(),
            key=lambda p: (-p.get("net_cycles", 0.0),
                           p.get("digest", "")),
        )

    def unprofitable_rules(self) -> list[dict]:
        return [p for p in self.profitability()
                if not p.get("profitable")]


#: corpus.report count fields — exactly IngestSummary's counts().
_CORPUS_COUNT_FIELDS = (
    "programs", "fed", "skipped_dup", "skipped_settled", "unsound",
    "rules", "novel_rules", "published", "verify_calls",
)


@dataclass
class CorpusAggregate:
    """Corpus-ingestion activity re-derived from corpus.* events
    (the continuous grammar-fuzzed program stream)."""

    programs: int = 0
    verdicts: dict = field(default_factory=dict)  # verdict -> count
    fed: int = 0
    unsound: int = 0
    rules: int = 0
    novel_rules: int = 0
    published: int = 0
    verify_calls: int = 0
    #: region -> [programs, fed, novel rules]
    regions: dict = field(default_factory=dict)
    #: The IngestSummary accounting path, summed over every
    #: corpus.report event (one per ingestion run in the trace).
    report_counts: dict | None = None
    reports: int = 0
    elapsed_seconds: float = 0.0

    @property
    def active(self) -> bool:
        return bool(self.programs or self.reports)

    @property
    def skipped_dup(self) -> int:
        return self.verdicts.get("dup_program", 0)

    @property
    def skipped_settled(self) -> int:
        return self.verdicts.get("all_settled", 0)

    def counts(self) -> dict:
        """Derived counts in ``IngestSummary`` field names."""
        return {
            "programs": self.programs,
            "fed": self.fed,
            "skipped_dup": self.skipped_dup,
            "skipped_settled": self.skipped_settled,
            "unsound": self.unsound,
            "rules": self.rules,
            "novel_rules": self.novel_rules,
            "published": self.published,
            "verify_calls": self.verify_calls,
        }


@dataclass
class ServiceAggregate:
    """Rule-service activity re-derived from service.* / hot-install
    events (PR 4's gap-driven online learning loop)."""

    gap_reports: int = 0
    gaps_uploaded: int = 0
    gaps_new: int = 0
    publishes: int = 0
    publish_rules: int = 0
    publish_candidates: int = 0
    publish_verify_calls: int = 0
    last_generation: int = 0
    syncs: int = 0
    cold_syncs: int = 0
    sync_bundles: int = 0
    sync_rules_fetched: int = 0
    sync_rules_installed: int = 0
    sync_blocks_invalidated: int = 0
    #: source -> [events, installed, invalidated] from dbt.hot_install.
    hot_installs: dict = field(default_factory=dict)

    @property
    def active(self) -> bool:
        return bool(self.gap_reports or self.publishes or self.syncs
                    or self.hot_installs)


@dataclass
class TraceAggregate:
    learning: dict[str, LearningAggregate] = field(default_factory=dict)
    engines: dict[int, EngineAggregate] = field(default_factory=dict)
    service: ServiceAggregate = field(default_factory=ServiceAggregate)
    corpus: CorpusAggregate = field(default_factory=CorpusAggregate)
    #: (span name, benchmark) -> summed seconds
    spans: dict = field(default_factory=dict)
    records: int = 0


def aggregate(records: list[TraceRecord]) -> TraceAggregate:
    """Fold a trace into per-benchmark / per-engine aggregates."""
    agg = TraceAggregate()

    def bench(fields) -> LearningAggregate:
        name = fields.get("benchmark", "")
        if name not in agg.learning:
            agg.learning[name] = LearningAggregate(benchmark=name)
        return agg.learning[name]

    def engine(fields) -> EngineAggregate:
        key = fields.get("engine", 0)
        if key not in agg.engines:
            agg.engines[key] = EngineAggregate(engine=key)
        return agg.engines[key]

    for record in records:
        agg.records += 1
        fields = record.fields
        name = record.name
        if record.kind == "end" and "seconds" in fields:
            key = (name, fields.get("benchmark", ""))
            agg.spans[key] = agg.spans.get(key, 0.0) + fields["seconds"]
        elif name == "learn.pair":
            bench(fields).pairs += 1
        elif name == "learn.empty":
            bench(fields).empty += fields.get("count", 1)
        elif name == "learn.prep_fail":
            b = bench(fields)
            reason = fields["reason"]
            b.prep_fail[reason] = \
                b.prep_fail.get(reason, 0) + fields.get("count", 1)
        elif name == "learn.param_fail":
            b = bench(fields)
            reason = fields["reason"]
            b.param_fail[reason] = b.param_fail.get(reason, 0) + 1
        elif name == "learn.verdict":
            b = bench(fields)
            b.verdicts += 1
            source = fields["source"]
            calls = fields.get("calls", 0)
            if source in ("live", "journal"):
                # Journal replays are resumed live work: counting them
                # as live keeps a resumed run's signature identical to
                # the uninterrupted run it completes.
                b.verify_calls += calls
            elif source == "memo":
                b.dedup_saved_calls += calls
            elif source == "cache":
                b.cache_hits += 1
            if fields.get("cache_miss"):
                b.cache_misses += 1
            if fields["result"] == "rule":
                b.rules_pre_dedup += 1
            else:
                reason = fields.get("reason") or "Other"
                b.verify_fail[reason] = b.verify_fail.get(reason, 0) + 1
        elif name == "learn.rule":
            bench(fields).rules += 1
        elif name == "learn.report":
            b = bench(fields)
            for attr, payload in (("report_counts", "counts"),
                                  ("report_timings", "timings")):
                current = getattr(b, attr)
                if current is None:
                    setattr(b, attr, dict(fields.get(payload) or {}))
                else:
                    for key, value in (fields.get(payload) or {}).items():
                        current[key] = current.get(key, 0) + value
        elif name == "dbt.translate":
            e = engine(fields)
            e.mode = fields.get("mode", e.mode)
            e.translated_blocks += 1
            e.static_guest += fields.get("guest_len", 0)
            e.static_rule += fields.get("covered", 0)
            e.translation_cycles += fields.get("cost", 0.0)
            for length in fields.get("hit_lengths", ()):
                e.hit_lengths[length] = e.hit_lengths.get(length, 0) + 1
            for reason, count in fields.get("miss_reasons", {}).items():
                e.miss_reasons[reason] = \
                    e.miss_reasons.get(reason, 0) + count
        elif name == "dbt.block":
            e = engine(fields)
            entry = e.blocks.setdefault(fields["addr"], [0, 0.0, 0, 0])
            count = fields.get("exec_count", 0)
            entry[0] += count
            entry[1] += fields.get("exec_cycles", 0.0)
            entry[2] += count * fields.get("guest_len", 0)
            entry[3] += count * fields.get("covered", 0)
        elif name == "dbt.run":
            e = engine(fields)
            e.mode = fields.get("mode", e.mode)
            e.run_record = fields
            e.runs += 1
        elif name == "dbt.rule_profile":
            # Lifetime-cumulative ledger snapshots: last one wins.
            engine(fields).rule_profiles[fields.get("digest", "")] = \
                fields
        elif name == "dbt.hot_install":
            s = agg.service
            entry = s.hot_installs.setdefault(
                fields.get("source", "direct"), [0, 0, 0]
            )
            entry[0] += 1
            entry[1] += fields.get("installed", 0)
            entry[2] += fields.get("invalidated", 0)
        elif name == "corpus.program":
            c = agg.corpus
            c.programs += 1
            verdict = fields.get("verdict", "")
            c.verdicts[verdict] = c.verdicts.get(verdict, 0) + 1
            entry = c.regions.setdefault(
                fields.get("region", ""), [0, 0, 0]
            )
            entry[0] += 1
        elif name == "corpus.fed":
            c = agg.corpus
            c.fed += 1
            c.rules += fields.get("rules", 0)
            c.novel_rules += fields.get("novel", 0)
            c.published += fields.get("published", 0)
            c.verify_calls += fields.get("verify_calls", 0)
            entry = c.regions.setdefault(
                fields.get("region", ""), [0, 0, 0]
            )
            entry[1] += 1
            entry[2] += fields.get("novel", 0)
        elif name == "corpus.unsound":
            agg.corpus.unsound += 1
        elif name == "corpus.report":
            c = agg.corpus
            c.reports += 1
            c.elapsed_seconds += fields.get("elapsed_seconds", 0.0)
            counts = fields.get("counts") or {}
            if c.report_counts is None:
                c.report_counts = dict(counts)
            else:
                for key, value in counts.items():
                    c.report_counts[key] = \
                        c.report_counts.get(key, 0) + value
        elif name == "service.gap_report":
            s = agg.service
            s.gap_reports += 1
            s.gaps_uploaded += fields.get("gaps", 0)
            s.gaps_new += fields.get("new", 0)
        elif name == "service.publish":
            s = agg.service
            s.publishes += 1
            s.publish_rules += fields.get("rules", 0)
            s.publish_candidates += fields.get("candidates", 0)
            s.publish_verify_calls += fields.get("verify_calls", 0)
            s.last_generation = max(
                s.last_generation, fields.get("generation", 0)
            )
        elif name == "service.sync_result":
            s = agg.service
            s.syncs += 1
            if fields.get("cold"):
                s.cold_syncs += 1
            s.sync_bundles += fields.get("bundles", 0)
            s.sync_rules_fetched += fields.get("rules_fetched", 0)
            s.sync_rules_installed += fields.get("rules_installed", 0)
            s.sync_blocks_invalidated += \
                fields.get("blocks_invalidated", 0)
            s.last_generation = max(
                s.last_generation, fields.get("generation", 0)
            )
    return agg


# -- cross-checks --------------------------------------------------------------


def reconcile_learning(agg: TraceAggregate) -> list[str]:
    """Compare per-event learning aggregates against the embedded
    ``learn.report`` records.  Returns discrepancy descriptions
    (empty = the two accounting paths agree exactly)."""
    problems = []
    for name, b in sorted(agg.learning.items()):
        if b.report_counts is None:
            problems.append(f"{name}: no learn.report record in trace")
            continue
        derived = b.counts()
        for fname in _SIGNATURE_FIELDS:
            expected = b.report_counts.get(fname)
            if derived[fname] != expected:
                problems.append(
                    f"{name}: {fname} derived {derived[fname]} != "
                    f"report {expected}"
                )
    return problems


def reconcile_dbt(agg: TraceAggregate,
                  rel_tol: float = 1e-9) -> list[str]:
    """Compare per-event DBT aggregates against the embedded
    ``dbt.run`` (DBTStats lifetime) records."""
    problems = []
    for key, e in sorted(agg.engines.items()):
        if e.run_record is None:
            if e.translated_blocks:
                problems.append(f"engine {key}: no dbt.run record")
            continue
        lifetime = e.run_record.get("lifetime", {})
        exact = {
            "translated_blocks": e.translated_blocks,
            "static_guest_instructions": e.static_guest,
            "static_rule_guest_instructions": e.static_rule,
            "dynamic_guest_instructions": e.dynamic_guest,
            "dynamic_rule_guest_instructions": e.dynamic_rule_guest,
            "dispatches": e.dispatches,
        }
        for fname, derived in exact.items():
            expected = lifetime.get(fname)
            if derived != expected:
                problems.append(
                    f"engine {key}: {fname} derived {derived} != "
                    f"run record {expected}"
                )
        for fname, derived in (
            ("exec_cycles", e.exec_cycles),
            ("translation_cycles", e.translation_cycles),
        ):
            expected = lifetime.get(fname, 0.0)
            if abs(derived - expected) > \
                    rel_tol * max(abs(derived), abs(expected), 1.0):
                problems.append(
                    f"engine {key}: {fname} derived {derived} != "
                    f"run record {expected}"
                )
    return problems


def reconcile_profitability(agg: TraceAggregate) -> list[str]:
    """Cross-check the per-rule profitability ledgers
    (``dbt.rule_profile``, the engine's ``_account_hit`` path) against
    the per-translate rule-hit counters (``dbt.translate`` events'
    ``hit_lengths``).  Both count every translate-time rule
    instantiation, through entirely separate code paths, so totals
    must agree exactly."""
    problems = []
    for key, e in sorted(agg.engines.items()):
        if not e.rule_profiles:
            continue
        profile_hits = sum(
            p.get("hits", 0) for p in e.rule_profiles.values()
        )
        event_hits = sum(e.hit_lengths.values())
        if profile_hits != event_hits:
            problems.append(
                f"engine {key}: rule_profile hits {profile_hits} != "
                f"translate hit_lengths total {event_hits}"
            )
        profile_covered = sum(
            p.get("guest_covered", 0) for p in e.rule_profiles.values()
        )
        event_covered = sum(
            length * count for length, count in e.hit_lengths.items()
        )
        if profile_covered != event_covered:
            problems.append(
                f"engine {key}: rule_profile guest_covered "
                f"{profile_covered} != translate hit_lengths coverage "
                f"{event_covered}"
            )
    return problems


def reconcile_service(agg: TraceAggregate) -> list[str]:
    """Cross-check the client path (``service.sync_result`` spans'
    install totals) against the engine path (``dbt.hot_install``
    events with ``source="sync"``).  The two are emitted by different
    layers — the service client and the DBT engine — so agreement
    means every rule a sync claimed to deliver actually landed in a
    live store, and vice versa."""
    s = agg.service
    if not s.active:
        return []
    problems = []
    events, installed, invalidated = \
        s.hot_installs.get("sync", [0, 0, 0])
    if s.sync_rules_installed != installed:
        problems.append(
            f"service: sync_result rules_installed "
            f"{s.sync_rules_installed} != hot_install(source=sync) "
            f"installed {installed}"
        )
    if s.sync_blocks_invalidated != invalidated:
        problems.append(
            f"service: sync_result blocks_invalidated "
            f"{s.sync_blocks_invalidated} != hot_install(source=sync) "
            f"invalidated {invalidated}"
        )
    if s.sync_bundles < events:
        problems.append(
            f"service: {events} sync hot-installs but only "
            f"{s.sync_bundles} bundles installed by sync_results"
        )
    return problems


def reconcile_corpus(agg: TraceAggregate) -> list[str]:
    """Compare the per-event corpus aggregates (``corpus.program`` /
    ``corpus.fed`` / ``corpus.unsound``) against the embedded
    ``corpus.report`` records — the IngestSummary accounting path.
    The two are computed independently (per-program events as the
    stream runs vs. the run's own counters), so exact agreement
    validates both; this is the ingest gate's yield-metric check."""
    c = agg.corpus
    if not c.active:
        return []
    if c.report_counts is None:
        return ["corpus: no corpus.report record in trace"]
    problems = []
    derived = c.counts()
    for fname in _CORPUS_COUNT_FIELDS:
        expected = c.report_counts.get(fname)
        if derived[fname] != expected:
            problems.append(
                f"corpus: {fname} derived {derived[fname]} != "
                f"report {expected}"
            )
    return problems


def reconcile(agg: TraceAggregate) -> list[str]:
    return (reconcile_learning(agg) + reconcile_dbt(agg)
            + reconcile_profitability(agg) + reconcile_service(agg)
            + reconcile_corpus(agg))


# -- figure derivations --------------------------------------------------------


def table1_from_trace(agg: TraceAggregate) -> dict[str, dict]:
    """Table 1 counts per benchmark, from the trace alone.

    Corpus-fed programs (``corpus:<digest>`` origins) are excluded —
    they are fuzzed streams, not the paper's benchmark rows; their
    learning activity rolls up in the corpus section instead."""
    return {
        name: b.counts() for name, b in sorted(agg.learning.items())
        if not name.startswith("corpus:")
    }


def coverage_from_trace(agg: TraceAggregate) -> dict[int, tuple]:
    """Figure 11's (S_p, D_p) per rules-mode engine, from the trace
    alone."""
    return {
        key: (e.static_coverage, e.dynamic_coverage)
        for key, e in sorted(agg.engines.items())
        if e.mode == "rules"
    }


def hit_lengths_from_trace(agg: TraceAggregate) -> dict[int, dict]:
    """Figure 12's rule-hit length histogram per rules-mode engine."""
    return {
        key: dict(sorted(e.hit_lengths.items()))
        for key, e in sorted(agg.engines.items())
        if e.mode == "rules"
    }


def profitability_from_trace(agg: TraceAggregate) -> dict[int, list]:
    """Per-rule profitability ledgers per engine, net cycles desc."""
    return {
        key: e.profitability()
        for key, e in sorted(agg.engines.items())
        if e.rule_profiles
    }


# -- multi-file stitching ------------------------------------------------------


@dataclass
class GapJourney:
    """One gap's life across processes, on the absolute timeline.

    Joined by trace id: the client's ``service.gap_capture`` roots the
    trace, the server's ``service.gap_settled`` names the bundle the
    covering rules published into, and the client's ``dbt.hot_install``
    of that bundle digest completes the journey."""

    trace_id: str
    digest: str
    captured_at: float
    settled_at: float | None = None
    bundle: str | None = None
    installed_at: float | None = None

    @property
    def latency(self) -> float | None:
        """Capture-to-hot-install seconds; None while incomplete."""
        if self.installed_at is None:
            return None
        return self.installed_at - self.captured_at


@dataclass
class StitchResult:
    """Several trace files joined onto one wall-clock timeline."""

    #: (source, header epoch, record count) per input file.
    files: list = field(default_factory=list)
    #: Every captured gap, ordered by capture time.
    journeys: list = field(default_factory=list)

    @property
    def completed(self) -> list:
        return [j for j in self.journeys if j.latency is not None]

    def latency_sketch(self):
        """The end-to-end latencies (ms) as a bounded-error quantile
        sketch — the mergeable form the SLO engine's convergence
        objective (``stitch:gap_install``) evaluates."""
        from repro.obs.sketch import QuantileSketch

        sketch = QuantileSketch()
        for journey in self.completed:
            sketch.observe(journey.latency * 1000.0)
        return sketch

    def latency_summary(self) -> dict:
        """count / p50 / p95 / p99 / max of end-to-end latency (ms).

        Quantiles come from the sketch (so they match what the SLO
        engine evaluates, within the declared ``relative_error``);
        count and max stay exact.
        """
        latencies = [j.latency * 1000.0 for j in self.completed]
        if not latencies:
            return {"count": 0}
        sketch = self.latency_sketch()
        summary = {"count": len(latencies)}
        summary.update(
            {k: round(v, 3) for k, v in sketch.quantiles().items()}
        )
        summary["max"] = round(max(latencies), 3)
        summary["relative_error"] = sketch.relative_error
        return summary

    def to_json(self) -> dict:
        return {
            "files": [
                {"source": source, "epoch": epoch, "records": count}
                for source, epoch, count in self.files
            ],
            "gaps": {
                "captured": len(self.journeys),
                "settled": sum(
                    1 for j in self.journeys if j.settled_at is not None
                ),
                "installed": len(self.completed),
            },
            "latency_ms": self.latency_summary(),
        }


def stitch(sources: list[tuple[str, list[TraceRecord]]]) -> StitchResult:
    """Join trace files onto one absolute timeline by header epoch.

    Each file's ``trace.header`` records the wall-clock epoch of its
    tracer's monotonic zero, so ``epoch + record.ts`` places every
    record — from any process — on one comparable axis.  Gap journeys
    are then joined by trace id (capture -> settled) and bundle digest
    (settled -> hot-install); the install matched is the earliest one
    of that bundle at or after the capture.
    """
    result = StitchResult()
    captures: dict[str, GapJourney] = {}
    settles: dict[str, tuple] = {}
    installs: list[tuple] = []
    for source, records in sources:
        header = check_trace_version(records, source=source)
        if header is None or "epoch" not in header.fields:
            raise TraceError(
                f"{source}: no trace-header epoch — written by a "
                "pre-header tracer? --stitch needs wall-clock anchors"
            )
        epoch = float(header.fields["epoch"])
        result.files.append((source, epoch, len(records)))
        for record in records:
            abs_ts = epoch + record.ts
            name = record.name
            if name == "service.gap_capture" and record.trace_id:
                captures.setdefault(
                    record.trace_id,
                    GapJourney(
                        trace_id=record.trace_id,
                        digest=record.fields.get("digest", ""),
                        captured_at=abs_ts,
                    ),
                )
            elif name == "service.gap_settled" and record.trace_id:
                settles[record.trace_id] = \
                    (record.fields.get("bundle"), abs_ts)
            elif name == "dbt.hot_install" \
                    and record.fields.get("digest"):
                installs.append((record.fields["digest"], abs_ts))
    installs.sort(key=lambda item: item[1])
    for trace_id, journey in captures.items():
        settled = settles.get(trace_id)
        if settled is not None:
            journey.bundle, journey.settled_at = settled
            if journey.bundle:
                for digest, abs_ts in installs:
                    if digest == journey.bundle \
                            and abs_ts >= journey.captured_at:
                        journey.installed_at = abs_ts
                        break
        result.journeys.append(journey)
    result.journeys.sort(key=lambda j: j.captured_at)
    return result


def reconcile_stitch_quantiles(result: StitchResult) -> list[str]:
    """Cross-check the sketch-derived latency percentiles against the
    exact nearest-rank quantiles of the raw journey latencies.

    The sketch declares a relative-error bound; every reported
    quantile must honour it against the ground-truth trace events, or
    the summary (and anything the SLO engine concluded from it) is
    lying.  Returns discrepancy descriptions (empty = within bound).
    """
    import math as _math

    latencies = sorted(j.latency * 1000.0 for j in result.completed)
    if not latencies:
        return []
    summary = result.latency_summary()
    alpha = summary["relative_error"]
    problems = []
    for q in (0.50, 0.95, 0.99):
        rank = max(1, _math.ceil(q * len(latencies)))
        exact = latencies[rank - 1]
        estimated = summary[f"p{round(q * 100)}"]
        # round(…, 3) in the summary adds up to 0.5us on top.
        if abs(estimated - exact) > alpha * exact + 5e-4:
            problems.append(
                f"stitch p{round(q * 100)}: sketch {estimated:.3f}ms "
                f"vs exact {exact:.3f}ms exceeds the declared "
                f"{alpha:.0%} relative-error bound"
            )
    return problems


def render_stitch(result: StitchResult) -> str:
    lines = [f"== stitched timeline ({len(result.files)} files) =="]
    for source, epoch, count in result.files:
        lines.append(f"  {source}: {count} records, epoch {epoch:.3f}")
    journeys = result.journeys
    settled = sum(1 for j in journeys if j.settled_at is not None)
    lines.append(
        f"gaps: {len(journeys)} captured, {settled} settled, "
        f"{len(result.completed)} hot-installed"
    )
    summary = result.latency_summary()
    if summary["count"]:
        lines.append(
            "gap-report -> hot-install latency: "
            f"count {summary['count']}, p50 {summary['p50']:.1f}ms, "
            f"p95 {summary['p95']:.1f}ms, max {summary['max']:.1f}ms"
        )
    else:
        lines.append(
            "gap-report -> hot-install latency: no completed journeys"
        )
    return "\n".join(lines)


# -- rendering -----------------------------------------------------------------


def _stage_breakdown(agg: TraceAggregate, benchmark: str) -> str:
    parts = []
    for stage in ("learn.extract", "learn.paramize", "learn.verify"):
        seconds = agg.spans.get((stage, benchmark))
        if seconds is not None:
            parts.append(f"{stage.split('.')[1]} {seconds:.3f}s")
    return ", ".join(parts)


def render_report(agg: TraceAggregate, top: int = 10) -> str:
    lines = [f"trace: {agg.records} records"]

    benchmarks = {name: b for name, b in agg.learning.items()
                  if not name.startswith("corpus:")}
    corpus_origins = {name: b for name, b in agg.learning.items()
                      if name.startswith("corpus:")}
    if benchmarks:
        lines.append("")
        lines.append("== learning (derived from per-candidate events) ==")
        for name, b in sorted(benchmarks.items()):
            counts = b.counts()
            lines.append(
                f"{name or '(unnamed)'}: {counts['total_sequences']} seq "
                f"-> {counts['rules']} rules; "
                f"verify calls {counts['verify_calls']} "
                f"(deduped {counts['dedup_saved_calls']}, "
                f"cache {counts['cache_hits']} hit"
                f"/{counts['cache_misses']} miss)"
            )
            fails = [
                f"{code}={b.prep_fail.get(code, 0)}"
                for code in PREP_REASONS
            ] + [
                f"{code}={b.param_fail.get(code, 0)}"
                for code in PARAM_REASONS
            ] + [
                f"{code}={b.verify_fail.get(code, 0)}"
                for code in VERIFY_REASONS
            ]
            lines.append(f"  failures: {' '.join(fails)}")
            stages = _stage_breakdown(agg, name)
            if stages:
                lines.append(f"  stages: {stages}")
        pool = agg.spans.get(("learn.pool", ""))
        if pool is not None:
            lines.append(f"(parallel pool: {pool:.3f}s)")
    if corpus_origins:
        rolled_rules = sum(b.rules for b in corpus_origins.values())
        rolled_calls = sum(
            b.verify_calls for b in corpus_origins.values()
        )
        if not benchmarks:
            lines.append("")
            lines.append(
                "== learning (derived from per-candidate events) =="
            )
        lines.append(
            f"corpus origins: {len(corpus_origins)} program(s) -> "
            f"{rolled_rules} rules, {rolled_calls} verify calls "
            "(per-origin detail suppressed; see corpus section)"
        )

    for key, e in sorted(agg.engines.items()):
        lines.append("")
        lines.append(
            f"== dbt engine {key} ({e.mode or 'unknown'} mode, "
            f"{e.runs} run{'s' if e.runs != 1 else ''}) =="
        )
        lines.append(
            f"translated {e.translated_blocks} blocks "
            f"({e.static_guest} guest instrs), "
            f"{e.dispatches} dispatches, "
            f"{e.exec_cycles:.0f} exec cycles, "
            f"{e.translation_cycles:.0f} translation cycles"
        )
        if e.mode == "rules":
            lines.append(
                f"coverage: static {e.static_coverage:.1%}, "
                f"dynamic {e.dynamic_coverage:.1%}"
            )
            if e.hit_lengths:
                dist = ", ".join(
                    f"len {length}: {count}"
                    for length, count in sorted(e.hit_lengths.items())
                )
                lines.append(f"rule hits by length: {dist}")
            misses = e.ranked_miss_reasons()
            if misses:
                ranked = ", ".join(
                    f"{reason} x{count}" for reason, count in misses
                )
                lines.append(f"rule-miss reasons (ranked): {ranked}")
        profiles = e.profitability()
        if profiles:
            shown = profiles if len(profiles) <= 2 * top else \
                profiles[:top] + profiles[-top:]
            lines.append(
                f"rule profitability ({len(profiles)} rules, "
                f"net cycles = saved - lookup cost):"
            )
            lines.append(
                "  digest            hits  exec      saved     lookup"
                "        net"
            )
            for i, p in enumerate(shown):
                if len(shown) < len(profiles) and i == top:
                    lines.append("  ...")
                flag = "" if p.get("profitable") else "  UNPROFITABLE"
                lines.append(
                    f"  {p.get('digest', '?'):<16s}  "
                    f"{p.get('hits', 0):<4d}  "
                    f"{p.get('exec_hits', 0):<6d}  "
                    f"{p.get('cycles_saved', 0.0):9.0f}  "
                    f"{p.get('lookup_cost', 0.0):9.0f}  "
                    f"{p.get('net_cycles', 0.0):9.0f}{flag}"
                )
            unprofitable = e.unprofitable_rules()
            if unprofitable:
                lines.append(
                    f"  {len(unprofitable)} rule(s) cost more to look "
                    "up than they save"
                )
        hot = e.hottest_blocks(top)
        if hot:
            lines.append(f"hottest blocks (top {len(hot)}):")
            for addr, cycles, count, share in hot:
                lines.append(
                    f"  {addr:#08x}  {cycles:12.0f} cycles  "
                    f"x{count:<8d} {share:6.1%}"
                )

    if agg.corpus.active:
        c = agg.corpus
        lines.append("")
        lines.append("== corpus ingestion ==")
        lines.append(
            f"programs: {c.programs} ({c.fed} fed, "
            f"{c.skipped_dup} duplicate, {c.skipped_settled} settled, "
            f"{c.unsound} unsound)"
        )
        lines.append(
            f"yield: {c.rules} rules ({c.novel_rules} novel, "
            f"{c.published} published), {c.verify_calls} verify calls"
            + (f", {c.elapsed_seconds:.1f}s ingest time"
               if c.elapsed_seconds else "")
        )
        if c.regions:
            ranked = sorted(
                c.regions.items(),
                key=lambda kv: (-kv[1][2], -kv[1][1], kv[0]),
            )
            lines.append("regions (fed/programs, novel rules):")
            for region, (programs, fed, novel) in ranked:
                lines.append(
                    f"  {region or '(unnamed)':<10s} {fed}/{programs}"
                    f"  novel {novel}"
                )

    if agg.service.active:
        s = agg.service
        lines.append("")
        lines.append("== rule service ==")
        lines.append(
            f"gap reports: {s.gap_reports} "
            f"({s.gaps_uploaded} gaps uploaded, {s.gaps_new} new)"
        )
        lines.append(
            f"publishes: {s.publishes} bundle(s), "
            f"{s.publish_rules} rule(s) from "
            f"{s.publish_candidates} candidate(s) "
            f"({s.publish_verify_calls} verify calls); "
            f"generation {s.last_generation}"
        )
        lines.append(
            f"syncs: {s.syncs} ({s.cold_syncs} cold), "
            f"{s.sync_bundles} bundle(s), "
            f"{s.sync_rules_installed}/{s.sync_rules_fetched} "
            f"rules installed/fetched, "
            f"{s.sync_blocks_invalidated} block(s) invalidated"
        )
        for source, (events, installed, invalidated) in \
                sorted(s.hot_installs.items()):
            lines.append(
                f"hot-installs [{source}]: {events} event(s), "
                f"{installed} rule(s), {invalidated} block(s) "
                f"invalidated"
            )

    lines.append("")
    problems = reconcile(agg)
    if problems:
        lines.append("reconciliation: FAILED")
        for problem in problems:
            lines.append(f"  MISMATCH {problem}")
    else:
        checked = []
        if agg.learning:
            checked.append(
                f"{len(agg.learning)} benchmark(s) vs LearningReport"
            )
        if agg.engines:
            checked.append(f"{len(agg.engines)} engine(s) vs DBTStats")
        if any(e.rule_profiles for e in agg.engines.values()):
            checked.append("rule profiles vs translate hits")
        if agg.service.active:
            checked.append("service syncs vs hot-installs")
        if agg.corpus.active:
            checked.append("corpus events vs IngestSummary")
        lines.append(
            "reconciliation: OK ("
            + (", ".join(checked) if checked else "nothing to check")
            + ")"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Aggregate a --trace file into a report and "
                    "cross-check it against the LearningReport/DBTStats "
                    "records embedded in the trace.",
    )
    parser.add_argument("trace", nargs="+",
                        help="JSON-lines trace file(s); several "
                             "aggregate together")
    parser.add_argument("--stitch", action="store_true",
                        help="join the files onto one wall-clock "
                             "timeline (via trace-header epochs) and "
                             "report end-to-end gap-to-hot-install "
                             "latency")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="hottest blocks to list per engine "
                             "(default: 10)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable aggregates instead "
                             "of the text report")
    args = parser.parse_args(argv)

    try:
        sources = [
            (str(Path(path)), read_trace(path)) for path in args.trace
        ]
        for source, records in sources:
            check_trace_version(records, source=source)
        stitched = stitch(sources) if args.stitch else None
    except (TraceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    agg = aggregate(
        [record for _, records in sources for record in records]
    )
    problems = reconcile(agg)
    if args.json:
        payload = {
            "records": agg.records,
            "table1": table1_from_trace(agg),
            "coverage": {
                str(key): list(value)
                for key, value in coverage_from_trace(agg).items()
            },
            "hit_lengths": {
                str(key): value
                for key, value in hit_lengths_from_trace(agg).items()
            },
            "profitability": {
                str(key): value
                for key, value in profitability_from_trace(agg).items()
            },
            "reconciliation": problems,
        }
        if agg.corpus.active:
            payload["corpus"] = dict(
                agg.corpus.counts(),
                regions=agg.corpus.regions,
                elapsed_seconds=round(agg.corpus.elapsed_seconds, 3),
            )
        if stitched is not None:
            payload["stitch"] = stitched.to_json()
        print(json.dumps(payload, indent=1))
    else:
        if stitched is not None:
            print(render_stitch(stitched))
            print()
        print(render_report(agg, top=args.top))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
