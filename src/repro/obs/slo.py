"""Service-level objectives with multi-window burn-rate alerting.

Objectives are *declared* in a checked-in TOML file (``slo.toml`` at
the repo root) and *evaluated* against the live telemetry the system
already produces — per-event recordings routed into windowed
good/bad counters, quantile-sketch snapshots, and point-in-time
gauges.  Three kinds:

``latency``
    An event-driven objective: ``target`` fraction of events must
    complete within ``threshold_ms``.  Each recorded event lands in a
    pair of :class:`~repro.obs.timeseries.TimeSeries` (total, bad);
    evaluation computes the **burn rate** over each configured window:

        ``burn = bad_fraction / (1 - target)``

    Burn 1.0 means the error budget is being spent exactly as fast as
    it accrues; burn 10 means ten times too fast.  The objective
    breaches only when burn >= ``burn_threshold`` on **every** window
    (the multi-window rule from the SRE workbook: the long window
    proves the problem is material, the short window proves it is
    still happening — so alerts both fire fast and reset fast).

``quantile``
    A sketch-backed objective: quantile ``q`` of the named sketch
    must not exceed ``max_ms``.  Covers convergence-style SLOs
    (gap→install stitch p99) where the signal is a distribution
    snapshot, not an event stream.

``gauge``
    A scalar bound: a named gauge must be >= ``min`` (or <= ``max``).
    Covers throughput floors (verified candidates per second).

State transitions (ok → breach, breach → ok) are emitted as
``slo.alert`` / ``slo.recover`` events into the trace stream when a
tracer is enabled, so alerts stitch into the same timeline as the
spans that caused them.

The engine is dependency-free: on Python 3.11+ it uses ``tomllib``;
older interpreters fall back to a minimal TOML-subset parser that
handles exactly the grammar ``slo.toml`` uses (``[[objective]]``
tables, scalar keys, inline arrays of numbers).
"""

from __future__ import annotations

import threading
import time

from repro.obs.sketch import QuantileSketch
from repro.obs.timeseries import TimeSeries
from repro.obs.trace import get_tracer

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on 3.10 CI only
    _toml = None

#: Default burn-rate evaluation windows (seconds): fast and slow.
DEFAULT_WINDOWS = (60, 300)

#: Default burn threshold: spending budget 2x too fast alerts.
DEFAULT_BURN_THRESHOLD = 2.0

#: Events required in the longest window before a latency objective
#: can breach — tiny samples make noisy fractions.
DEFAULT_MIN_EVENTS = 10


class SloError(ValueError):
    """Malformed SLO declaration."""


def _parse_toml_text(text: str) -> dict:
    if _toml is not None:
        return _toml.loads(text)
    return _mini_toml(text)


def _mini_toml(text: str) -> dict:
    """Parse the TOML subset slo.toml uses (3.10 fallback): top-level
    keys, ``[[table]]`` arrays, strings, numbers, booleans, inline
    arrays of numbers."""
    root: dict = {}
    current = root
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            current = {}
            root.setdefault(name, []).append(current)
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            current = root.setdefault(name, {})
            continue
        if "=" not in line:
            raise SloError(f"unparsable slo.toml line: {raw!r}")
        key, _, value = line.partition("=")
        current[key.strip()] = _mini_toml_value(value.strip())
    return root


def _mini_toml_value(token: str):
    if token.startswith('"') and token.endswith('"'):
        return token[1:-1]
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [_mini_toml_value(part.strip())
                for part in inner.split(",") if part.strip()]
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError as exc:
        raise SloError(f"unparsable slo.toml value: {token!r}") from exc


class Objective:
    """One declared objective; see module docstring for kinds."""

    def __init__(self, name: str, kind: str, source: str,
                 description: str = "", **params) -> None:
        if kind not in ("latency", "quantile", "gauge"):
            raise SloError(f"unknown objective kind: {kind!r}")
        self.name = name
        self.kind = kind
        self.source = source
        self.description = description
        self.params = params
        if kind == "latency":
            self.threshold_ms = float(params["threshold_ms"])
            self.target = float(params["target"])
            if not 0.0 < self.target < 1.0:
                raise SloError(
                    f"{name}: target must be in (0, 1): {self.target}"
                )
            self.windows = tuple(
                int(w) for w in params.get("windows", DEFAULT_WINDOWS)
            )
            if not self.windows:
                raise SloError(f"{name}: at least one window required")
            self.burn_threshold = float(
                params.get("burn_threshold", DEFAULT_BURN_THRESHOLD)
            )
            self.min_events = int(
                params.get("min_events", DEFAULT_MIN_EVENTS)
            )
        elif kind == "quantile":
            self.quantile = float(params.get("quantile", 0.99))
            self.max_ms = float(params["max_ms"])
            self.min_events = int(params.get("min_events", 1))
        else:  # gauge
            self.min = params.get("min")
            self.max = params.get("max")
            if self.min is None and self.max is None:
                raise SloError(
                    f"{name}: gauge objective needs min and/or max"
                )

    @classmethod
    def from_dict(cls, data: dict) -> "Objective":
        data = dict(data)
        try:
            name = data.pop("name")
            kind = data.pop("kind")
            source = data.pop("source")
        except KeyError as exc:
            raise SloError(
                f"objective missing required key {exc.args[0]!r}: {data}"
            ) from exc
        return cls(name, kind, source,
                   data.pop("description", ""), **data)


class _BurnCounter:
    """Windowed good/bad event counters behind a latency objective."""

    def __init__(self, objective: Objective, clock) -> None:
        window = max(objective.windows)
        self.total = TimeSeries(window, clock)
        self.bad = TimeSeries(window, clock)

    def record(self, value_ms: float, threshold_ms: float) -> None:
        self.total.add()
        if value_ms > threshold_ms:
            self.bad.add()


class SloEngine:
    """Holds declared objectives, routes recordings, evaluates burn.

    ``record(source, value_ms)`` feeds latency objectives listening on
    ``source``; ``evaluate(sketches=..., gauges=...)`` supplies the
    snapshot-style signals and returns the full report.  Thread-safe.
    """

    def __init__(self, objectives, clock=time.monotonic) -> None:
        self.objectives = list(objectives)
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise SloError(f"duplicate objective names: {names}")
        self._clock = clock
        self._lock = threading.Lock()
        self._counters = {
            o.name: _BurnCounter(o, clock)
            for o in self.objectives if o.kind == "latency"
        }
        self._states: dict[str, str] = {
            o.name: "ok" for o in self.objectives
        }
        self._alerts: list[dict] = []

    # -- construction --------------------------------------------------------

    @classmethod
    def from_toml_text(cls, text: str,
                       clock=time.monotonic) -> "SloEngine":
        data = _parse_toml_text(text)
        objectives = [
            Objective.from_dict(entry)
            for entry in data.get("objective", [])
        ]
        if not objectives:
            raise SloError("slo.toml declares no [[objective]] tables")
        return cls(objectives, clock=clock)

    @classmethod
    def from_toml(cls, path, clock=time.monotonic) -> "SloEngine":
        with open(path, encoding="utf-8") as handle:
            return cls.from_toml_text(handle.read(), clock=clock)

    # -- recording -----------------------------------------------------------

    def record(self, source: str, value_ms: float) -> None:
        """Feed one event into every latency objective on ``source``."""
        for objective in self.objectives:
            if objective.kind == "latency" \
                    and objective.source == source:
                self._counters[objective.name].record(
                    value_ms, objective.threshold_ms
                )

    def sources(self) -> set:
        """All sources any objective listens on (wiring sanity)."""
        return {o.source for o in self.objectives}

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, sketches: dict | None = None,
                 gauges: dict | None = None) -> dict:
        """Evaluate every objective; emit alert/recover trace events
        on state transitions; return the report dict."""
        sketches = sketches or {}
        gauges = gauges or {}
        results = []
        with self._lock:
            for objective in self.objectives:
                if objective.kind == "latency":
                    result = self._eval_latency(objective)
                elif objective.kind == "quantile":
                    result = self._eval_quantile(
                        objective, sketches.get(objective.source)
                    )
                else:
                    result = self._eval_gauge(
                        objective, gauges.get(objective.source)
                    )
                self._transition(objective, result)
                results.append(result)
            breaches = [r["name"] for r in results
                        if r["state"] == "breach"]
            return {
                "objectives": results,
                "breaches": breaches,
                "ok": not breaches,
                "alerts": list(self._alerts),
            }

    def _eval_latency(self, objective: Objective) -> dict:
        counter = self._counters[objective.name]
        budget = 1.0 - objective.target
        windows = []
        breach = True
        for window in objective.windows:
            total = counter.total.total(window)
            bad = counter.bad.total(window)
            fraction = (bad / total) if total else 0.0
            burn = fraction / budget if budget else 0.0
            windows.append({
                "window_seconds": window,
                "events": total,
                "bad": bad,
                "bad_fraction": fraction,
                "burn_rate": burn,
            })
            if burn < objective.burn_threshold:
                breach = False
        long_total = counter.total.total(max(objective.windows))
        if long_total < objective.min_events:
            breach = False
        return {
            "name": objective.name,
            "kind": "latency",
            "source": objective.source,
            "threshold_ms": objective.threshold_ms,
            "target": objective.target,
            "burn_threshold": objective.burn_threshold,
            "windows": windows,
            "state": "breach" if breach else "ok",
        }

    def _eval_quantile(self, objective: Objective,
                       sketch) -> dict:
        observed = None
        count = 0
        if sketch is not None:
            if isinstance(sketch, dict):
                sketch = QuantileSketch.from_snapshot(sketch)
            observed = sketch.quantile(objective.quantile)
            count = sketch.count
        breach = (
            observed is not None
            and count >= objective.min_events
            and observed > objective.max_ms
        )
        return {
            "name": objective.name,
            "kind": "quantile",
            "source": objective.source,
            "quantile": objective.quantile,
            "max_ms": objective.max_ms,
            "observed_ms": observed,
            "events": count,
            "state": "breach" if breach else "ok",
        }

    def _eval_gauge(self, objective: Objective, value) -> dict:
        breach = False
        if value is not None:
            if objective.min is not None and value < objective.min:
                breach = True
            if objective.max is not None and value > objective.max:
                breach = True
        return {
            "name": objective.name,
            "kind": "gauge",
            "source": objective.source,
            "min": objective.min,
            "max": objective.max,
            "observed": value,
            "state": "breach" if breach else "ok",
        }

    def _transition(self, objective: Objective, result: dict) -> None:
        previous = self._states[objective.name]
        state = result["state"]
        if state == previous:
            return
        self._states[objective.name] = state
        event = {
            "objective": objective.name,
            "from": previous,
            "to": state,
            "at": self._clock(),
            "detail": result,
        }
        self._alerts.append(event)
        tracer = get_tracer()
        if tracer.enabled:
            kind = "slo.alert" if state == "breach" else "slo.recover"
            tracer.event(kind, objective=objective.name,
                         source=objective.source, state=state)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, sketches: dict | None = None,
                 gauges: dict | None = None) -> dict:
        """Alias of :meth:`evaluate` for the stats-op payload shape."""
        return self.evaluate(sketches=sketches, gauges=gauges)


def slo_report_lines(report: dict) -> list:
    """Render an SLO report as aligned text lines for repro-top."""
    lines = []
    for result in report.get("objectives", []):
        state = result["state"]
        marker = "BREACH" if state == "breach" else "ok"
        if result["kind"] == "latency":
            burns = "/".join(
                f"{w['burn_rate']:.2f}" for w in result["windows"]
            )
            detail = (
                f"burn {burns} (x{result['burn_threshold']:.0f} "
                f"over {result['threshold_ms']:.0f}ms)"
            )
        elif result["kind"] == "quantile":
            observed = result["observed_ms"]
            shown = "n/a" if observed is None else f"{observed:.1f}ms"
            detail = (
                f"p{round(result['quantile'] * 100)} {shown} "
                f"(max {result['max_ms']:.0f}ms)"
            )
        else:
            detail = f"value {result['observed']!r}"
        lines.append(f"  {result['name']:<28} {marker:<6} {detail}")
    return lines
