"""Statistical sampling profiler with phase attribution.

Instrumenting profilers (``sys.setprofile`` / cProfile) slow every
function call by a large constant factor, which disqualifies them from
an always-on deployment.  :class:`SamplingProfiler` instead runs a
daemon thread that wakes ``hz`` times per second and, for each live
thread, records (a) which **phase** that thread has declared itself in
(see :class:`phase`) and (b) the innermost in-project code location
from ``sys._current_frames()``.  Cost scales with the *sampling rate*,
not the workload — the profiled code pays only for entering/leaving
phases (two dict operations on a ``__slots__`` context manager),
which the profiler-overhead benchmark gates at <=3%.

Phases form a per-thread stack, so nested attribution works the way
the tracer's spans do: a sample taken inside ``dbt.match`` while a
``dbt.translate`` phase is open counts toward ``dbt.match`` (innermost
wins), and ``self_samples`` vs ``cumulative_samples`` distinguish time
in a phase proper from time including its children.  Threads with no
declared phase attribute to ``(idle)`` — on a quiet server that is
most samples, which is itself the signal that the server is quiet.

The phase registry is a process-global dict keyed by thread id rather
than a ``threading.local``: the sampler thread must read *other*
threads' stacks, which thread-locals by design prevent.  Individual
dict get/set/del operations are atomic under the GIL, so no lock sits
on the hot path.

Profiles are plain dicts (:meth:`SamplingProfiler.snapshot`) and merge
associatively/commutatively, so per-worker profiles from the parallel
learning pool travel home piggybacked on the MetricsRegistry snapshot
each worker already returns, exactly like metrics do.

Usage::

    profiler = SamplingProfiler(hz=97)
    profiler.start()
    with phase("learn.verify"):
        ...                       # samples land in learn.verify
    profiler.stop()
    profiler.snapshot()["phases"]["learn.verify"]["self_samples"]
"""

from __future__ import annotations

import sys
import threading
import time

#: Default sampling rate.  Prime, so the sampler cannot phase-lock
#: with periodic work that runs at a round frequency.
DEFAULT_HZ = 97

#: Phase name used for threads that have not declared a phase.
IDLE_PHASE = "(idle)"

#: Per-thread phase stacks, keyed by thread id.  Read by the sampler
#: thread, written by :class:`phase` on the instrumented threads; all
#: accesses are single atomic dict ops.
_PHASES: dict[int, list] = {}

#: Cap on distinct (file, line, function) locations kept per phase.
MAX_LOCATIONS = 256


class phase:
    """Declare the current thread to be inside ``name``.

    A re-entrant, nestable context manager deliberately kept as cheap
    as possible: entering is one list-append (plus one dict insert for
    a thread's first phase), leaving is one list-pop.  Usable whether
    or not any profiler is running — when none is, this *is* the whole
    overhead, which is what the <=3% gate measures.
    """

    __slots__ = ("name", "_tid")

    def __init__(self, name: str) -> None:
        self.name = name
        self._tid = 0

    def __enter__(self) -> "phase":
        tid = threading.get_ident()
        self._tid = tid
        stack = _PHASES.get(tid)
        if stack is None:
            _PHASES[tid] = [self.name]
        else:
            stack.append(self.name)
        return self

    def __exit__(self, *exc) -> None:
        stack = _PHASES.get(self._tid)
        if stack:
            stack.pop()
            if not stack:
                # Drop empty stacks so finished threads don't leak
                # registry entries.
                _PHASES.pop(self._tid, None)
        return None


def current_phase() -> str:
    """The innermost phase of the calling thread (for tests/tools)."""
    stack = _PHASES.get(threading.get_ident())
    return stack[-1] if stack else IDLE_PHASE


class SamplingProfiler:
    """Wall-clock sampling profiler; see module docstring.

    ``hz`` is the target sampling rate.  ``include_idle`` controls
    whether samples from phase-less threads are recorded under
    ``(idle)`` (kept by default so utilisation is visible).
    """

    def __init__(self, hz: int = DEFAULT_HZ,
                 include_idle: bool = True,
                 clock: "callable | None" = None) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive: {hz!r}")
        self.hz = int(hz)
        self.include_idle = bool(include_idle)
        self._clock = clock or time.monotonic
        self._interval = 1.0 / self.hz
        self._lock = threading.Lock()
        self._phase_samples: dict[str, int] = {}
        self._cumulative: dict[str, int] = {}
        self._locations: dict[str, dict[str, int]] = {}
        self._total_samples = 0
        self._started_at: float | None = None
        self._wall_seconds = 0.0
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop_event.clear()
        self._started_at = self._clock()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=2.0)
        self._thread = None
        if self._started_at is not None:
            self._wall_seconds += self._clock() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
        return None

    def _run(self) -> None:
        sampler_tid = threading.get_ident()
        while not self._stop_event.wait(self._interval):
            self.sample_once(exclude={sampler_tid})

    # -- sampling ------------------------------------------------------------

    def sample_once(self, exclude: set | None = None) -> None:
        """Take one sample of every live thread.  Public so tests can
        drive sampling deterministically without the timer thread."""
        try:
            frames = sys._current_frames()
        except Exception:  # pragma: no cover - interpreter teardown
            return
        exclude = exclude or set()
        with self._lock:
            for tid, frame in frames.items():
                if tid in exclude:
                    continue
                stack = _PHASES.get(tid)
                if stack:
                    # Copy defensively: the owning thread may mutate
                    # the list between our reads.
                    snapshot = tuple(stack)
                    leaf = snapshot[-1] if snapshot else IDLE_PHASE
                    self._phase_samples[leaf] = (
                        self._phase_samples.get(leaf, 0) + 1
                    )
                    for name in set(snapshot):
                        self._cumulative[name] = (
                            self._cumulative.get(name, 0) + 1
                        )
                    self._record_location(leaf, frame)
                elif self.include_idle:
                    self._phase_samples[IDLE_PHASE] = (
                        self._phase_samples.get(IDLE_PHASE, 0) + 1
                    )
                    self._cumulative[IDLE_PHASE] = (
                        self._cumulative.get(IDLE_PHASE, 0) + 1
                    )
                self._total_samples += 1

    def _record_location(self, phase_name: str, frame) -> None:
        # Walk out of stdlib/interpreter frames to the innermost
        # in-project location; fall back to the raw leaf if none.
        leaf = None
        probe = frame
        depth = 0
        while probe is not None and depth < 64:
            filename = probe.f_code.co_filename
            if "/repro/" in filename.replace("\\", "/"):
                leaf = probe
                break
            if leaf is None:
                leaf = probe
            probe = probe.f_back
            depth += 1
        if leaf is None:
            return
        code = leaf.f_code
        where = (
            f"{code.co_filename.rsplit('/', 1)[-1]}"
            f":{leaf.f_lineno}:{code.co_name}"
        )
        locs = self._locations.setdefault(phase_name, {})
        if where in locs or len(locs) < MAX_LOCATIONS:
            locs[where] = locs.get(where, 0) + 1

    # -- snapshots & merging -------------------------------------------------

    def snapshot(self) -> dict:
        """A plain picklable/JSON-able profile.

        Deterministic layout (sorted keys) so identical profiles
        serialise byte-identically, like sketch snapshots.
        """
        with self._lock:
            wall = self._wall_seconds
            if self._started_at is not None:
                wall += self._clock() - self._started_at
            return {
                "kind": "profile",
                "hz": self.hz,
                "total_samples": self._total_samples,
                "wall_seconds": wall,
                "phases": {
                    name: {
                        "self_samples": self._phase_samples.get(
                            name, 0
                        ),
                        "cumulative_samples": self._cumulative.get(
                            name, 0
                        ),
                        "locations": dict(sorted(
                            self._locations.get(name, {}).items()
                        )),
                    }
                    for name in sorted(
                        set(self._phase_samples) | set(self._cumulative)
                    )
                },
            }

    def merge(self, other: "SamplingProfiler | dict") -> None:
        """Fold another profile (or a ``snapshot()`` dict) into this
        one.  Associative and commutative: sample counts add."""
        data = other.snapshot() \
            if isinstance(other, SamplingProfiler) else other
        if not isinstance(data, dict) or data.get("kind") != "profile":
            raise ValueError(f"cannot merge non-profile: {data!r}")
        with self._lock:
            self._total_samples += int(data.get("total_samples", 0))
            self._wall_seconds += float(data.get("wall_seconds", 0.0))
            for name, info in data.get("phases", {}).items():
                self._phase_samples[name] = (
                    self._phase_samples.get(name, 0)
                    + int(info.get("self_samples", 0))
                )
                self._cumulative[name] = (
                    self._cumulative.get(name, 0)
                    + int(info.get("cumulative_samples", 0))
                )
                locs = self._locations.setdefault(name, {})
                for where, count in info.get(
                    "locations", {}
                ).items():
                    if where in locs or len(locs) < MAX_LOCATIONS:
                        locs[where] = locs.get(where, 0) + count

    def clear(self) -> None:
        with self._lock:
            self._phase_samples.clear()
            self._cumulative.clear()
            self._locations.clear()
            self._total_samples = 0
            self._wall_seconds = 0.0
            if self._started_at is not None:
                self._started_at = self._clock()


def profile_report(snapshot: dict, top: int = 10) -> list:
    """Render a profile snapshot as aligned text lines for repro-top
    and the CLI dumps: phases by self time with sample shares."""
    phases = snapshot.get("phases", {})
    total = snapshot.get("total_samples", 0) or 1
    rows = sorted(
        phases.items(),
        key=lambda item: (-item[1].get("self_samples", 0), item[0]),
    )
    lines = [
        f"profile: {snapshot.get('total_samples', 0)} samples @ "
        f"{snapshot.get('hz', 0)}hz over "
        f"{snapshot.get('wall_seconds', 0.0):.1f}s"
    ]
    for name, info in rows[:top]:
        self_samples = info.get("self_samples", 0)
        share = 100.0 * self_samples / total
        lines.append(
            f"  {name:<24} {self_samples:>8} self "
            f"({share:5.1f}%)  {info.get('cumulative_samples', 0):>8} cum"
        )
    return lines


# -- module-level registry ---------------------------------------------------

_GLOBAL_PROFILER: SamplingProfiler | None = None
_GLOBAL_LOCK = threading.Lock()


def get_profiler() -> SamplingProfiler:
    """The process-global profiler (created stopped on first use)."""
    global _GLOBAL_PROFILER
    with _GLOBAL_LOCK:
        if _GLOBAL_PROFILER is None:
            _GLOBAL_PROFILER = SamplingProfiler()
        return _GLOBAL_PROFILER


def set_profiler(profiler: "SamplingProfiler | None") -> None:
    """Swap the process-global profiler (tests, CLI wiring)."""
    global _GLOBAL_PROFILER
    with _GLOBAL_LOCK:
        _GLOBAL_PROFILER = profiler
