"""Named counters and histograms with snapshot/merge semantics.

A :class:`MetricsRegistry` is a plain in-process accumulator: counters
are ``name -> number`` and histograms are ``name -> {value: count}``
(sparse — exact observed values, not pre-binned buckets, which is the
right shape for small-integer distributions like rule lengths or
solver calls per candidate).

``snapshot()`` returns a picklable plain-dict view and ``merge()``
adds one registry/snapshot into another, which is how worker processes
in :mod:`repro.learning.parallel` report their side of the accounting:
each worker fills a fresh registry, ships ``snapshot()`` back with its
results, and the parent merges.

:func:`format_metrics` is the one formatter every CLI routes metric
dumps through, so cache/dedup/engine stats render identically
everywhere.
"""

from __future__ import annotations

import threading

from repro.obs.sketch import QuantileSketch

#: The quantiles every summary view reports.
SUMMARY_QUANTILES = (0.50, 0.95, 0.99)


def histogram_quantiles(bucket: dict, quantiles=SUMMARY_QUANTILES) -> dict:
    """Weighted nearest-rank quantiles of a sparse ``{value: count}``
    histogram, as ``{"p50": v, "p95": v, "p99": v}``.

    Exact, not interpolated: each reported quantile is a value that was
    actually observed, which keeps summaries honest for the small
    discrete distributions (rule lengths, solver calls, frame
    latencies) these histograms hold.  Empty input gives ``{}``.
    """
    pairs = sorted(
        (value, count) for value, count in bucket.items() if count > 0
    )
    total = sum(count for _, count in pairs)
    if total == 0:
        return {}
    result = {}
    for q in quantiles:
        # nearest-rank: the smallest value whose cumulative count
        # reaches ceil(q * total).
        rank = max(1, -(-int(q * total * 1_000_000) // 1_000_000))
        rank = min(rank, total)
        cumulative = 0
        for value, count in pairs:
            cumulative += count
            if cumulative >= rank:
                result[f"p{int(q * 100)}"] = value
                break
    return result


class MetricsRegistry:
    """Process-local named counters and histograms.

    Updates are guarded by a lock: rule-service deployments record
    from several threads (concurrent sync clients, the server's
    learning executor), and ``dict.get``-then-store is not atomic.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, dict] = {}
        self._sketches: dict[str, QuantileSketch] = {}
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value, count: int = 1) -> None:
        with self._lock:
            bucket = self._histograms.setdefault(name, {})
            bucket[value] = bucket.get(value, 0) + count

    def observe_sketch(self, name: str, value: float,
                       count: int = 1) -> None:
        """Record into a named bounded-error quantile sketch — the
        shape for continuous latencies (unbounded distinct values),
        where the sparse exact histograms would grow without limit."""
        with self._lock:
            sketch = self._sketches.get(name)
            if sketch is None:
                sketch = self._sketches[name] = QuantileSketch()
        sketch.observe(value, count)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> dict:
        return dict(self._histograms.get(name, {}))

    def sketch(self, name: str) -> QuantileSketch | None:
        """The live named sketch, or None if nothing was recorded."""
        return self._sketches.get(name)

    def __len__(self) -> int:
        return (len(self._counters) + len(self._histograms)
                + len(self._sketches))

    def snapshot(self) -> dict:
        """A plain-dict (picklable, JSON-able for string keys) view.

        Includes a derived ``quantiles`` summary per histogram;
        ``merge()`` recomputes from the raw buckets, so shipping a
        snapshot across a process boundary loses nothing.
        """
        with self._lock:
            histograms = {
                name: dict(bucket)
                for name, bucket in self._histograms.items()
            }
            counters = dict(self._counters)
            sketches = {
                name: sketch.snapshot()
                for name, sketch in self._sketches.items()
            }
        snapshot = {
            "counters": counters,
            "histograms": histograms,
            "quantiles": {
                name: histogram_quantiles(bucket)
                for name, bucket in histograms.items()
            },
        }
        if sketches:
            # Only present when used, so sketch-free snapshots keep
            # their pre-sketch shape (replay byte-compatibility).
            snapshot["sketches"] = sketches
        return snapshot

    # -- combining -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Add ``other`` (a registry or a ``snapshot()`` dict) into
        this registry."""
        snapshot = other.snapshot() if isinstance(other, MetricsRegistry) \
            else other
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, bucket in snapshot.get("histograms", {}).items():
            for value, count in bucket.items():
                self.observe(name, value, count)
        for name, data in snapshot.get("sketches", {}).items():
            with self._lock:
                sketch = self._sketches.get(name)
                if sketch is None:
                    sketch = self._sketches[name] = QuantileSketch(
                        relative_error=data.get("relative_error", 0.01)
                        if isinstance(data, dict) else 0.01
                    )
            sketch.merge(data)

    def clear(self) -> None:
        self._counters.clear()
        self._histograms.clear()
        self._sketches.clear()


def format_metrics(source: MetricsRegistry | dict, title: str = "metrics",
                   prefix: str | tuple[str, ...] = "") -> str:
    """Render counters/histograms as aligned ``name = value`` lines.

    ``prefix`` filters to names starting with it (a tuple matches any
    of several prefixes, e.g. ``("learning.cache.", "learning.verify.")``).
    Counters print as integers when whole; histograms print their
    value/count pairs sorted by value, followed by a p50/p95/p99
    summary row.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) \
        else source
    rows: list[tuple[str, str]] = []
    for name in sorted(snapshot.get("counters", {})):
        if not name.startswith(prefix):
            continue
        value = snapshot["counters"][name]
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        text = f"{value:.3f}" if isinstance(value, float) else str(value)
        rows.append((name, text))
    for name in sorted(snapshot.get("histograms", {})):
        if not name.startswith(prefix):
            continue
        bucket = snapshot["histograms"][name]
        text = ", ".join(
            f"{value}:{count}"
            for value, count in sorted(bucket.items(), key=lambda kv: kv[0])
        )
        rows.append((name + "{}", "{" + text + "}"))
        summary = snapshot.get("quantiles", {}).get(name) \
            or histogram_quantiles(bucket)
        if summary:
            text = " ".join(f"{q}={v}" for q, v in summary.items())
            rows.append((name + ".quantiles", text))
    for name in sorted(snapshot.get("sketches", {})):
        if not name.startswith(prefix):
            continue
        sketch = QuantileSketch.from_snapshot(
            snapshot["sketches"][name]
        )
        summary = sketch.summary()
        text = " ".join(
            [f"count={summary['count']}"]
            + [f"{q}={v:.3f}" for q, v in summary["quantiles"].items()]
        )
        rows.append((name + ".sketch", text))
    if not rows:
        return f"{title}: (none)"
    width = max(len(name) for name, _ in rows)
    lines = [f"{title}:"]
    for name, text in rows:
        lines.append(f"  {name.ljust(width)}  {text}")
    return "\n".join(lines)


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry instrumented code records into."""
    return _METRICS


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Swap the global registry (None installs a fresh one); returns
    the previous registry.  Tests use this for isolation."""
    global _METRICS
    previous = _METRICS
    _METRICS = registry if registry is not None else MetricsRegistry()
    return previous
