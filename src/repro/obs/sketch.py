"""Bounded-error quantile sketches (DDSketch-style log buckets).

:class:`QuantileSketch` summarises a stream of non-negative values in
O(log(max/min)) space with a **guaranteed relative error**: for every
quantile ``q``, the reported value ``est`` satisfies
``|est - true| <= relative_error * true`` (the true value being the
nearest-rank sample quantile of everything observed).  That guarantee
is what the ad-hoc sparse histograms (:class:`~repro.obs.timeseries.
LatencyRecorder`, :func:`~repro.obs.metrics.histogram_quantiles`)
could not give: their memory grew with the number of *distinct*
values, and under a long-running server a latency distribution has
unboundedly many of those.

Mechanics: values map to geometric buckets ``key = ceil(log_gamma v)``
with ``gamma = (1 + a) / (1 - a)``, so every value in a bucket is
within ``a`` (relative) of the bucket's midpoint
``2 * gamma^key / (gamma + 1)``.  A quantile query walks the sorted
keys to the target rank and returns the midpoint.  Zero (and anything
below :data:`MIN_TRACKABLE`) lands in a dedicated zero bucket and is
reported exactly as ``0.0``.

Sketches **merge**: bucket counts add key-wise, so per-worker sketches
from the parallel-learning pool (or per-shard sketches from a future
service fleet) combine into the fleet view without losing the error
bound.  Merge is associative and commutative, and ``snapshot()`` is a
plain picklable/JSON-able dict whose serialisation is deterministic —
two sketches that absorbed the same multiset of values snapshot
byte-identically, regardless of observation or merge order.

Memory stays bounded even for adversarial inputs: beyond
``max_buckets`` distinct keys the **lowest** keys collapse into one
(the standard DDSketch collapsing variant), which sacrifices accuracy
only for the smallest values — the upper quantiles (p95/p99, the ones
SLOs gate on) keep their guarantee.

All mutating and reading operations are thread-safe.
"""

from __future__ import annotations

import json
import math
import threading

#: Default guaranteed relative error (1%).
DEFAULT_RELATIVE_ERROR = 0.01

#: Default cap on distinct buckets.  At 1% error this spans more than
#: 8 orders of magnitude before any collapsing happens.
DEFAULT_MAX_BUCKETS = 1024

#: Values at or below this are counted in the zero bucket (reported as
#: exactly 0.0).  Nanosecond-scale latencies in seconds are still far
#: above it.
MIN_TRACKABLE = 1e-12

#: The quantiles summary views report, matching
#: :data:`repro.obs.metrics.SUMMARY_QUANTILES`.
SKETCH_QUANTILES = (0.50, 0.95, 0.99)


class SketchError(ValueError):
    """A malformed sketch snapshot or invalid parameter."""


class QuantileSketch:
    """A mergeable log-bucketed quantile sketch.

    ``relative_error`` is the guaranteed bound ``a``; ``max_buckets``
    caps memory (lowest keys collapse beyond it).
    """

    __slots__ = (
        "relative_error", "max_buckets", "_gamma", "_log_gamma",
        "_buckets", "_zero", "_count", "_sum", "_min", "_max", "_lock",
    )

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR,
                 max_buckets: int = DEFAULT_MAX_BUCKETS) -> None:
        if not 0.0 < relative_error < 1.0:
            raise SketchError(
                f"relative_error must be in (0, 1): {relative_error!r}"
            )
        if max_buckets < 2:
            raise SketchError(
                f"max_buckets must be >= 2: {max_buckets!r}"
            )
        self.relative_error = float(relative_error)
        self.max_buckets = int(max_buckets)
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def _key(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def _bucket_value(self, key: int) -> float:
        # Midpoint of (gamma^(key-1), gamma^key]: within relative_error
        # of every value the bucket holds.
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def observe(self, value: float, count: int = 1) -> None:
        """Absorb ``count`` observations of ``value`` (negative values
        clamp to the zero bucket — latencies and durations only)."""
        if count <= 0:
            return
        value = float(value)
        with self._lock:
            self._count += count
            self._sum += value * count
            clamped = max(value, 0.0)
            if self._min is None or clamped < self._min:
                self._min = clamped
            if self._max is None or clamped > self._max:
                self._max = clamped
            if value <= MIN_TRACKABLE:
                self._zero += count
            else:
                key = self._key(value)
                self._buckets[key] = self._buckets.get(key, 0) + count
                if len(self._buckets) > self.max_buckets:
                    self._collapse_locked()

    def _collapse_locked(self) -> None:
        """Fold the lowest keys together until within ``max_buckets``.

        Collapsing low keys degrades only the smallest values' accuracy;
        every bucket at or above the collapse point keeps the bound.
        """
        keys = sorted(self._buckets)
        overflow = len(keys) - self.max_buckets
        if overflow <= 0:
            return
        sink = keys[overflow]
        for key in keys[:overflow]:
            self._buckets[sink] = (
                self._buckets.get(sink, 0) + self._buckets.pop(key)
            )

    # -- reading -------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (nearest-rank semantics), within
        ``relative_error`` (relative) of the true sample quantile.
        Returns 0.0 for an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise SketchError(f"quantile must be in [0, 1]: {q!r}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, math.ceil(q * self._count))
            cumulative = self._zero
            if cumulative >= rank:
                return 0.0
            for key in sorted(self._buckets):
                cumulative += self._buckets[key]
                if cumulative >= rank:
                    return self._bucket_value(key)
            # Float edge: fall back to the top bucket.
            return self._bucket_value(max(self._buckets))

    def quantiles(self, qs=SKETCH_QUANTILES) -> dict:
        """``{"p50": v, "p95": v, "p99": v}`` summary."""
        return {f"p{round(q * 100)}": self.quantile(q) for q in qs}

    def fraction_over(self, threshold: float) -> float:
        """The fraction of observations strictly greater than
        ``threshold``, to within ``relative_error`` of the boundary —
        the SLI behind latency SLOs (bad events / total events)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            over = 0
            for key, count in self._buckets.items():
                if self._bucket_value(key) > threshold:
                    over += count
            return over / self._count

    # -- snapshots & merging -------------------------------------------------

    def snapshot(self) -> dict:
        """A plain picklable/JSON-able dict; deterministic layout
        (buckets as a key-sorted list) so equal sketches serialise
        byte-identically."""
        with self._lock:
            return {
                "kind": "ddsketch",
                "relative_error": self.relative_error,
                "max_buckets": self.max_buckets,
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "zero": self._zero,
                "buckets": [
                    [key, self._buckets[key]]
                    for key in sorted(self._buckets)
                ],
            }

    @classmethod
    def from_snapshot(cls, data: dict) -> "QuantileSketch":
        if not isinstance(data, dict) or data.get("kind") != "ddsketch":
            raise SketchError(f"not a sketch snapshot: {data!r}")
        sketch = cls(
            relative_error=data.get(
                "relative_error", DEFAULT_RELATIVE_ERROR
            ),
            max_buckets=data.get("max_buckets", DEFAULT_MAX_BUCKETS),
        )
        sketch.merge(data)
        return sketch

    def merge(self, other: "QuantileSketch | dict") -> None:
        """Add ``other`` (a sketch or a ``snapshot()`` dict) into this
        sketch.  Requires matching ``relative_error`` — merging
        different-resolution sketches would silently void the bound."""
        data = other.snapshot() if isinstance(other, QuantileSketch) \
            else other
        if not isinstance(data, dict) or data.get("kind") != "ddsketch":
            raise SketchError(f"cannot merge non-sketch: {data!r}")
        if abs(data.get("relative_error", -1.0)
               - self.relative_error) > 1e-12:
            raise SketchError(
                f"relative_error mismatch: {data.get('relative_error')}"
                f" != {self.relative_error}"
            )
        with self._lock:
            self._count += int(data.get("count", 0))
            self._sum += float(data.get("sum", 0.0))
            self._zero += int(data.get("zero", 0))
            for bound, pick in (("min", min), ("max", max)):
                theirs = data.get(bound)
                if theirs is not None:
                    ours = self._min if bound == "min" else self._max
                    merged = theirs if ours is None \
                        else pick(ours, theirs)
                    if bound == "min":
                        self._min = merged
                    else:
                        self._max = merged
            for key, count in data.get("buckets", []):
                key = int(key)
                self._buckets[key] = self._buckets.get(key, 0) + count
            if len(self._buckets) > self.max_buckets:
                self._collapse_locked()

    def to_json(self) -> str:
        """Deterministic JSON serialisation of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))

    def summary(self) -> dict:
        """The reporting shape: count/mean/min/max plus quantiles and
        the declared error bound."""
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        return {
            "count": count,
            "mean": (total / count) if count else 0.0,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "relative_error": self.relative_error,
            "quantiles": self.quantiles(),
        }

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QuantileSketch(count={self._count}, "
            f"buckets={len(self._buckets)}, "
            f"relative_error={self.relative_error})"
        )
