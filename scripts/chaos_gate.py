#!/usr/bin/env python
"""Chaos gate: end-to-end fault-tolerance check for CI.

Runs the learning pipeline twice over a small corpus — once clean and
sequential, once parallel under an injected fault plan (a worker
crash, a worker hang, and a torn cache write) — and asserts the
chaotic run converges to exactly the clean rule set, with the injected
faults surfacing only as EC/TO reclassifications of already-failing
candidates.  Then corrupts one learned rule's host template and checks
the differential guard quarantines it and restores the baseline
result.

Exit status 0 means the gate passed.  Run from the repo root:

    PYTHONPATH=src python scripts/chaos_gate.py

Set ``REPRO_GATE_ARTIFACT_DIR`` to write a full trace of the gate's
learning runs (``chaos.jsonl``) there for CI artifact upload on
failure; tracing is off by default.
"""

import contextlib
import os
import sys
import tempfile
from pathlib import Path

from repro.obs.trace import tracing

from repro.benchsuite import BENCHMARK_NAMES, build_learning_pair
from repro.dbt.engine import DBTEngine
from repro.dbt.guard import GuardPolicy
from repro.faults.deadline import DeadlineBudget
from repro.faults.plan import FaultPlan, corrupt_rule, fault_plan_scope
from repro.learning.cache import VerificationCache
from repro.learning.journal import OutcomeJournal
from repro.learning.parallel import learn_corpus_parallel
from repro.learning.pipeline import learn_corpus
from repro.learning.store import RuleStore

GATE_BENCHMARKS = BENCHMARK_NAMES[:3]


def fail(message: str) -> None:
    print(f"chaos_gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def rule_strings(outcomes):
    return {
        name: [str(rule) for rule in outcome.rules]
        for name, outcome in outcomes.items()
    }


def failing_digests(cache: VerificationCache, count: int) -> list[str]:
    """Digests of candidates that yielded no rule in the clean run —
    injecting faults into these must not change the learned rule set."""
    chosen = []
    for digest in cache.digests():
        outcome = cache.peek(digest)
        if outcome is not None and outcome.rule is None:
            chosen.append(digest)
            if len(chosen) == count:
                return chosen
    fail(f"corpus has only {len(chosen)} failing candidates, need {count}")


def check_learning_chaos(builds, clean, clean_cache, workdir: Path) -> None:
    victims = failing_digests(clean_cache, 2)
    plan = FaultPlan(
        crash_digests=frozenset(victims[:1]),
        hang_digests=frozenset(victims[1:2]),
        corrupt_cache_on_save=1,
    )
    chaos_cache = VerificationCache.at_dir(workdir)
    journal = OutcomeJournal.at_dir(workdir)
    with fault_plan_scope(plan):
        chaotic = learn_corpus_parallel(
            builds, jobs=2, chunk_size=4,
            cache=chaos_cache, journal=journal,
            budget=DeadlineBudget(max_steps=100_000),
            backoff_seconds=0.0,
        )
    journal.close()

    if rule_strings(chaotic) != rule_strings(clean):
        fail("chaotic run learned a different rule set than the clean run")
    ec = sum(o.report.verify_ec for o in chaotic.values())
    to = sum(o.report.verify_to for o in chaotic.values())
    if ec < 1:
        fail(f"expected >= 1 EC outcome from the injected crash, got {ec}")
    if to < 1:
        fail(f"expected >= 1 TO outcome from the injected hang, got {to}")

    # The injected torn write corrupted the persisted cache; reloading
    # must quarantine it aside and start empty rather than crash.
    reloaded = VerificationCache.at_dir(workdir)
    if reloaded.stats.corrupt != 1:
        fail("torn cache write was not quarantined on reload")
    print(f"chaos_gate: learning OK ({ec} EC, {to} TO, "
          f"rules identical, torn cache quarantined)")


def check_guard_self_healing(builds) -> None:
    name = GATE_BENCHMARKS[0]
    guest, host = builds[name]
    from repro.learning import learn_rules
    rules = learn_rules(guest, host, benchmark=name).rules
    bad = None
    corrupted = list(rules)
    for index, rule in enumerate(rules):
        try:
            bad = corrupt_rule(rule)
        except ValueError:
            continue
        corrupted[index] = bad
        break
    if bad is None:
        fail("no corruptible rule learned for the guard check")

    baseline = DBTEngine(guest, "qemu").run().return_value
    # check_interval=1 re-checks every dispatch: an injected corruption
    # can be data-dependent (e.g. sub vs add agree while an operand is
    # zero), so first-dispatch sampling alone may miss it.
    engine = DBTEngine(guest, "rules", RuleStore.from_rules(corrupted),
                       guard=GuardPolicy(check_interval=1))
    result = engine.run()
    if result.return_value != baseline:
        fail(f"guarded run returned {result.return_value}, "
             f"baseline is {baseline}")
    unguarded = DBTEngine(guest, "rules",
                          RuleStore.from_rules(corrupted)).run()
    if unguarded.return_value != baseline \
            and engine.guard_stats.divergences < 1:
        fail("corruption was live but the guard saw no divergence")
    print(f"chaos_gate: guard OK (checks={engine.guard_stats.checks}, "
          f"divergences={engine.guard_stats.divergences}, "
          f"quarantined={len(engine.quarantined_rules)})")


def main() -> None:
    artifact_dir = os.environ.get("REPRO_GATE_ARTIFACT_DIR")
    if artifact_dir:
        Path(artifact_dir).mkdir(parents=True, exist_ok=True)
        trace_scope = tracing(Path(artifact_dir) / "chaos.jsonl")
    else:
        trace_scope = contextlib.nullcontext()
    with trace_scope:
        builds = {
            name: build_learning_pair(name) for name in GATE_BENCHMARKS
        }
        clean_cache = VerificationCache()
        clean = learn_corpus(builds, cache=clean_cache)
        with tempfile.TemporaryDirectory() as tmp:
            check_learning_chaos(builds, clean, clean_cache, Path(tmp))
        check_guard_self_healing(builds)
    print("chaos_gate: PASS")


if __name__ == "__main__":
    main()
