#!/usr/bin/env python
"""Ingest gate: the corpus stream is deterministic and keeps yielding.

Runs the continuous-ingestion loop end to end, entirely in-process
(the LocalFeed path — the same learning pipeline ``repro-corpus``
drives), and checks the subsystem's four contracts:

* **yield** — a fixed-seed stream of generated programs teaches at
  least ``MIN_NOVEL_RULES`` verified rules *beyond* what the whole
  benchsuite already teaches (novelty is rule identity, which ignores
  origin/line, so rediscovering a benchsuite rule counts for nothing);
* **determinism** — a second run from fresh state reproduces the first
  run's accounting counter for counter;
* **dedup** — a third run over the first run's warm seen-store +
  verification cache skips at least ``MIN_WARM_SKIP_RATE`` of the
  stream without paying for compilation or verification;
* **reconciliation** — the per-event trace records, the embedded
  ``corpus.report`` / ``learn.report`` accounting paths, and the run's
  own ``IngestSummary`` all agree exactly, and the run satisfies the
  ``corpus-yield`` objective in ``slo.toml``.

Exit status 0 means the gate passed.  Run from the repo root:

    PYTHONPATH=src python scripts/ingest_gate.py

Set ``REPRO_GATE_ARTIFACT_DIR`` to keep the working directory at a
known path; the gate writes ``ingest_report.json`` (full verdict) and
``BENCH_ingest.json`` (the bench_compare payload) there for CI
artifact upload.
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.benchsuite import BENCHMARKS, build_learning_pair
from repro.corpus.cli import run_ingest
from repro.corpus.dedup import SeenStore
from repro.corpus.feed import LocalFeed
from repro.learning.cache import VerificationCache
from repro.learning.pipeline import learn_corpus
from repro.obs.report import aggregate, reconcile
from repro.obs.slo import SloEngine
from repro.obs.trace import read_trace, tracing

GATE_SEED = 7
GATE_PROGRAMS = 40
MIN_NOVEL_RULES = 15
MIN_WARM_SKIP_RATE = 0.30
SLO_TOML = Path("slo.toml")


def fail(message: str) -> None:
    print(f"ingest_gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def benchsuite_baseline():
    """Every rule the benchsuite teaches — the novelty floor."""
    builds = {
        name: build_learning_pair(name) for name in BENCHMARKS
    }
    outcomes = learn_corpus(builds)
    rules = [
        rule for outcome in outcomes.values() for rule in outcome.rules
    ]
    return rules


def ingest_run(tmp: Path, label: str, baseline, state: str,
               trace_name: str | None = None):
    """One full ingestion run against the named state directory."""
    state_dir = tmp / state
    store = SeenStore.at_dir(state_dir)
    cache = VerificationCache.at_dir(state_dir / "verify-cache")
    feed = LocalFeed(cache=cache, baseline=baseline)
    trace_path = tmp / trace_name if trace_name else None
    scope = tracing(trace_path) if trace_path else None
    if scope is not None:
        with scope:
            summary = run_ingest(seed=GATE_SEED, programs=GATE_PROGRAMS,
                                 store=store, cache=cache, feed=feed)
    else:
        summary = run_ingest(seed=GATE_SEED, programs=GATE_PROGRAMS,
                             store=store, cache=cache, feed=feed)
    print(f"ingest_gate: [{label}] {summary.programs} programs, "
          f"{summary.fed} fed, {summary.skipped} skipped, "
          f"{summary.novel_rules} novel rules, "
          f"{summary.verify_calls} verify calls, "
          f"{summary.elapsed_seconds:.1f}s")
    return summary


def check_reconciliation(trace_path: Path, summary) -> int:
    """The trace's independent accounting paths must agree exactly —
    with each other and with the run's own IngestSummary."""
    records = read_trace(trace_path)
    agg = aggregate(records)
    problems = reconcile(agg)
    if problems:
        fail("trace reconciliation: " + "; ".join(problems[:5]))
    derived = agg.corpus.counts()
    for name, value in summary.counts().items():
        if derived.get(name) != value:
            fail(f"trace-derived corpus {name} {derived.get(name)} != "
                 f"IngestSummary {value}")
    return len(records)


def main() -> None:
    artifact_dir = os.environ.get("REPRO_GATE_ARTIFACT_DIR")
    if artifact_dir:
        tmp = Path(artifact_dir)
        tmp.mkdir(parents=True, exist_ok=True)
    else:
        tmp = Path(tempfile.mkdtemp(prefix="ingest-gate-"))

    started = time.perf_counter()
    baseline = benchsuite_baseline()
    print(f"ingest_gate: benchsuite baseline: {len(baseline)} rules "
          f"from {len(BENCHMARKS)} benchmarks")

    # Run A: fresh state, traced — the yield + reconciliation run.
    run_a = ingest_run(tmp, "fresh", baseline, "state-a",
                       trace_name="ingest.jsonl")
    if run_a.novel_rules < MIN_NOVEL_RULES:
        fail(f"fresh run taught only {run_a.novel_rules} novel rules "
             f"(need >= {MIN_NOVEL_RULES} beyond the benchsuite)")
    # A fresh run may legitimately skip all_settled programs (earlier
    # programs in the same stream settle windows into the cache), but
    # duplicate source text from a cold start is a generator defect.
    if run_a.skipped_dup:
        fail(f"fresh run saw {run_a.skipped_dup} duplicate programs — "
             "the generator is repeating itself from a cold start")

    # Run B: fresh state again — byte-for-byte deterministic counters.
    run_b = ingest_run(tmp, "repeat", baseline, "state-b")
    if run_a.counts() != run_b.counts():
        diffs = [
            f"{name} {run_a.counts()[name]} != {run_b.counts()[name]}"
            for name in run_a.counts()
            if run_a.counts()[name] != run_b.counts()[name]
        ]
        fail("determinism: fresh reruns disagree: " + "; ".join(diffs))

    # Run C: run A's warm store + cache — the dedup layer must skip.
    run_c = ingest_run(tmp, "warm", baseline, "state-a")
    if run_c.dedup_skip_rate < MIN_WARM_SKIP_RATE:
        fail(f"warm rerun skipped only {run_c.dedup_skip_rate:.0%} "
             f"(need >= {MIN_WARM_SKIP_RATE:.0%})")
    if run_c.verify_calls >= run_a.verify_calls:
        fail(f"warm rerun paid {run_c.verify_calls} verify calls vs "
             f"{run_a.verify_calls} cold — the verification cache is "
             "not settling windows")

    records = check_reconciliation(tmp / "ingest.jsonl", run_a)
    print(f"ingest_gate: reconciliation OK ({records} trace records)")

    report = SloEngine.from_toml(SLO_TOML).evaluate(gauges={
        "gauge:corpus_novel_rules_per_min": run_a.novel_per_minute,
    })
    if report["breaches"]:
        fail("SLO breach: " + ", ".join(report["breaches"]))
    print(f"ingest_gate: SLOs OK "
          f"({run_a.novel_per_minute:.1f} novel rules/min)")

    verdict = {
        "seed": GATE_SEED,
        "baseline_rules": len(baseline),
        "fresh": run_a.to_json(),
        "repeat": run_b.to_json(),
        "warm": run_c.to_json(),
        "trace_records": records,
        "slo": report,
        "gate_seconds": round(time.perf_counter() - started, 3),
    }
    (tmp / "ingest_report.json").write_text(
        json.dumps(verdict, indent=1) + "\n"
    )
    bench = {
        "bench": "ingest_gate",
        "programs": run_a.programs,
        "fed": run_a.fed,
        "novel_rules": run_a.novel_rules,
        "verify_calls": run_a.verify_calls,
        "warm_skip_rate": round(run_c.dedup_skip_rate, 4),
        "warm_verify_calls": run_c.verify_calls,
        "novel_rules_per_min": round(run_a.novel_per_minute, 3),
        "elapsed_seconds": round(run_a.elapsed_seconds, 3),
    }
    (tmp / "BENCH_ingest.json").write_text(
        json.dumps(bench, indent=1) + "\n"
    )
    print(f"ingest_gate: artifacts in {tmp}")
    print("ingest_gate: PASS")


if __name__ == "__main__":
    main()
