#!/usr/bin/env python
"""Service gate: end-to-end rule-service integration check for CI.

Boots a real ``repro-serve`` server process on a unix socket with a
two-benchmark learning corpus, then drives two concurrent DBT clients
against it:

* each client runs its benchmark with an **empty** rule store,
  reports the translation gaps it hit, asks the server to learn, and
  cold-syncs the published bundles into its live engine;
* each client's second run must reach dynamic rule coverage within
  1% of offline leave-nothing-out learning for its benchmark;
* client A then delta-syncs the bundle client B's gaps produced
  (incremental sync moves only the new bundle, never re-transfers);
* the client-side trace must reconcile: every rule a sync claimed to
  install matches the engines' ``dbt.hot_install`` events;
* the client and server traces must **stitch**: at least one gap's
  trace id is observable in both files (capture client-side, settled
  server-side, hot-installed client-side) and the stitched timeline
  yields end-to-end gap-to-hot-install latency percentiles.

Exit status 0 means the gate passed.  Run from the repo root:

    PYTHONPATH=src python scripts/service_gate.py

Set ``REPRO_GATE_ARTIFACT_DIR`` to keep the working directory (trace
files included) at a known path for CI artifact upload; by default a
throwaway temp dir is used.
"""

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.benchsuite import build_learning_pair
from repro.dbt.engine import DBTEngine
from repro.learning.pipeline import learn_rules
from repro.learning.store import RuleStore
from repro.obs.report import aggregate, reconcile, stitch
from repro.obs.trace import TraceError, read_trace, tracing
from repro.service.client import RuleServiceClient

GATE_BENCHMARKS = ("mcf", "libquantum")
COVERAGE_TOLERANCE = 0.01
SERVER_STARTUP_SECONDS = 30


def fail(message: str) -> None:
    print(f"service_gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_socket(path: Path, process: subprocess.Popen) -> None:
    deadline = time.monotonic() + SERVER_STARTUP_SECONDS
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"server exited early with status {process.returncode}")
        if path.exists():
            return
        time.sleep(0.1)
    fail(f"server socket {path} never appeared")


class ClientRun(threading.Thread):
    """One benchmark driven through the full gap -> rule cycle."""

    def __init__(self, name: str, socket_path: str) -> None:
        super().__init__(name=f"client-{name}")
        self.benchmark = name
        self.socket_path = socket_path
        self.error: str | None = None
        self.client: RuleServiceClient | None = None
        self.engine: DBTEngine | None = None
        self.online_coverage = 0.0

    def run(self) -> None:
        try:
            self._drive()
        except Exception as exc:  # surfaced by the main thread
            self.error = f"{type(exc).__name__}: {exc}"

    def _drive(self) -> None:
        guest, _ = build_learning_pair(self.benchmark)
        self.client = RuleServiceClient(socket_path=self.socket_path)
        self.engine = DBTEngine(guest, "rules",
                                gap_sink=self.client.recorder)
        first = self.engine.run()
        if self.engine.last_run.dynamic_coverage != 0.0:
            raise AssertionError("empty store should cover nothing")
        if self.client.report_gaps() == 0:
            raise AssertionError("no gaps captured")
        self.client.flush()
        result = self.client.sync(self.engine)
        if result.rules_installed == 0:
            raise AssertionError("sync installed no rules")
        second = self.engine.run()
        if second.return_value != first.return_value:
            raise AssertionError(
                f"hot-install changed the result: "
                f"{second.return_value} != {first.return_value}"
            )
        self.online_coverage = self.engine.last_run.dynamic_coverage


def offline_coverage(name: str) -> float:
    guest, host = build_learning_pair(name)
    rules = learn_rules(guest, host, benchmark=name).rules
    engine = DBTEngine(guest, "rules", RuleStore.from_rules(rules))
    engine.run()
    return engine.last_run.dynamic_coverage


def stop_server(server: subprocess.Popen) -> None:
    """Shut the server down gracefully so its trace sink flushes.

    SIGINT unwinds the server's ``tracing`` context manager (the
    asyncio loop surfaces it as KeyboardInterrupt); SIGTERM would kill
    the process with the trace tail still buffered.
    """
    if server.poll() is not None:
        return
    server.send_signal(signal.SIGINT)
    try:
        server.wait(timeout=10)
    except subprocess.TimeoutExpired:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()


def main() -> None:
    artifact_dir = os.environ.get("REPRO_GATE_ARTIFACT_DIR")
    if artifact_dir:
        tmp = Path(artifact_dir)
        tmp.mkdir(parents=True, exist_ok=True)
    else:
        tmp = Path(tempfile.mkdtemp(prefix="service-gate-"))
    socket_path = tmp / "rules.sock"
    trace_path = tmp / "clients.jsonl"
    server_trace_path = tmp / "server.jsonl"
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.server",
            "--repo", str(tmp / "repo"),
            "--socket", str(socket_path),
            "--corpus", ",".join(GATE_BENCHMARKS),
            "--no-auto-learn",
            "--no-cache",
            "--trace", str(server_trace_path),
        ],
    )
    try:
        wait_for_socket(socket_path, server)

        with tracing(str(trace_path)):
            clients = [
                ClientRun(name, str(socket_path))
                for name in GATE_BENCHMARKS
            ]
            for client in clients:
                client.start()
            for client in clients:
                client.join(timeout=300)
                if client.is_alive():
                    fail(f"{client.name} timed out")
                if client.error:
                    fail(f"{client.name}: {client.error}")

            # incremental delta sync: client A picks up the bundle
            # client B's gaps produced without re-transferring its own.
            lead = clients[0]
            before = set(lead.client.installed_digests)
            delta = lead.client.sync(lead.engine)
            if delta.cold:
                fail("second sync should be incremental, not cold")
            if not set(delta.digests).isdisjoint(before):
                fail("delta sync re-transferred an installed bundle")
            for client in clients:
                client.client.close()

        for client in clients:
            offline = offline_coverage(client.benchmark)
            gap = abs(client.online_coverage - offline)
            print(
                f"service_gate: {client.benchmark}: online "
                f"{client.online_coverage:.4f} vs offline "
                f"{offline:.4f} (|delta| {gap:.4f})"
            )
            if gap > COVERAGE_TOLERANCE:
                fail(
                    f"{client.benchmark}: online coverage "
                    f"{client.online_coverage:.4f} not within "
                    f"{COVERAGE_TOLERANCE:.0%} of offline {offline:.4f}"
                )

        client_records = read_trace(str(trace_path))
        problems = reconcile(aggregate(client_records))
        if problems:
            fail("trace reconciliation: " + "; ".join(problems))
        print("service_gate: trace reconciliation OK")

        # The stitched-timeline check needs the server's flushed trace.
        stop_server(server)
        try:
            stitched = stitch([
                (str(trace_path), client_records),
                (str(server_trace_path),
                 read_trace(str(server_trace_path))),
            ])
        except TraceError as exc:
            fail(f"stitch: {exc}")
        summary = stitched.latency_summary()
        if summary["count"] < 1:
            fail(
                "stitch: no gap completed the capture -> settled -> "
                "hot-install journey across the client+server traces"
            )
        print(
            "service_gate: stitched gap->install latency: "
            f"count {summary['count']}, p50 {summary['p50']:.1f}ms, "
            f"p95 {summary['p95']:.1f}ms"
        )
    finally:
        stop_server(server)

    print("service_gate: PASS")


if __name__ == "__main__":
    main()
