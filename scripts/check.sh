#!/usr/bin/env bash
# Tier-1 gate: the fast checks every PR must keep green.
#
#   scripts/check.sh          # unit tests + lint + overhead gates
#   scripts/check.sh --bench  # also regenerate BENCH_learning.json
#   scripts/check.sh --slo    # also run the SLO burn-rate gate
#   scripts/check.sh --fleet  # also run the fleet chaos gate
#   scripts/check.sh --ingest # also run the corpus-ingestion gate
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q

# Chaos gate: an injected-fault learning run (worker crash + hang +
# torn cache write) must converge to the clean rule set, and the
# differential guard must quarantine a corrupted rule back to the
# baseline result.
python scripts/chaos_gate.py

# Service gate: a real repro-serve process plus two concurrent DBT
# clients over a unix socket must complete the gap -> learn ->
# hot-install cycle with online coverage within 1% of offline
# learning, and the trace must reconcile.
python scripts/service_gate.py

# Observability must stay cheap: bound the disabled-tracer cost
# (<= 2%) and the profiler-on cost (<= 3%) against sequential
# learning wall-clock.
python -m pytest benchmarks/test_learning_throughput.py::test_disabled_tracer_overhead \
    benchmarks/test_learning_throughput.py::test_profiler_on_overhead \
    -x -q --benchmark-disable

if command -v ruff >/dev/null 2>&1; then
    ruff check src
elif python -m ruff --version >/dev/null 2>&1; then
    python -m ruff check src
else
    echo "check.sh: ruff not installed; skipping lint" >&2
fi

if [[ "${1:-}" == "--bench" ]]; then
    python -m pytest benchmarks/test_learning_throughput.py \
        benchmarks/test_translate_throughput.py -x -q
fi

# SLO gate: boot repro-serve with slo.toml + the sampling profiler,
# drive the gap -> learn -> hot-install workload, require valid
# Prometheus exposition and no burn-rate breach.
if [[ "${1:-}" == "--slo" ]]; then
    python scripts/slo_gate.py
fi

# Fleet gate: a 3-shard repro-serve fleet behind the repro-fleet
# coordinator survives two mid-run shard kills (one restart from an
# empty repo) with coverage parity, monotone generations, and no
# duplicate hot-installs across a dozen concurrent clients.
if [[ "${1:-}" == "--fleet" ]]; then
    python scripts/fleet_gate.py
fi

# Ingest gate: a fixed-seed corpus stream must teach >= 15 novel
# verified rules beyond the benchsuite, reproduce its counters exactly
# from fresh state, skip >= 30% of a warm rerun through the dedup
# layer, and reconcile its trace against the embedded IngestSummary.
if [[ "${1:-}" == "--ingest" ]]; then
    python scripts/ingest_gate.py
fi

echo "check.sh: all checks passed"
