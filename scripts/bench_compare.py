#!/usr/bin/env python3
"""Perf-regression gate: diff fresh bench payloads against baselines.

``BENCH_*.json`` files committed at the repo root are the perf
trajectory; a fresh run (``REPRO_BENCH_OUT_DIR=... pytest
benchmarks/test_learning_throughput.py``) writes candidate payloads
elsewhere, and this script diffs candidate against baseline with
per-metric tolerance bands:

    python scripts/bench_compare.py \
        --baseline BENCH_learning.json --candidate fresh/BENCH_learning.json
    python scripts/bench_compare.py --baseline-dir . --candidate-dir fresh

Each payload's ``bench`` field selects its check profile.  Wall-clock
metrics get wide bands (CI boxes are noisy); deterministic counter
metrics (solver calls, dedup savings, cache hit rate) get tight ones.
A metric that moves past its band in the *bad* direction is a
``regression`` and the exit code is 1; improvements are reported but
never fail.

Provenance-aware annotation: parallel speedup on a box with fewer
cores than worker processes measures scheduling churn, not the code
(the payload records ``cpus``/``jobs`` for exactly this reason).  Such
figures are downgraded to ``annotated`` — printed, kept in the JSON
verdict, but never a failure.

The verdict is machine-readable with ``--json``:
``{"ok": bool, "regressions": N, "results": [...]}``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class Check:
    """One metric's tolerance band.

    ``direction`` is the *good* direction; the band is relative: a
    higher-is-better metric regresses below ``baseline * (1 - tol)``,
    a lower-is-better one above ``baseline * (1 + tol)``.
    """

    path: str            # dotted path into the payload
    direction: str       # "higher" | "lower"
    tolerance: float     # relative band


#: bench name (the payload's "bench" field) -> its check profile.
CHECKS: dict[str, tuple[Check, ...]] = {
    "learning_throughput": (
        # Wall-clock rates: wide bands, shared CI runners are noisy.
        Check("sequential.candidates_per_second", "higher", 0.30),
        Check("warm_cache.candidates_per_second", "higher", 0.30),
        Check("warm_cache.speedup_over_cold", "higher", 0.40),
        Check("parallel.speedup_over_sequential", "higher", 0.40),
        # Deterministic counters: tight bands — these only move when
        # the algorithm changes, and more solver work is a regression
        # regardless of how fast the box is.
        Check("sequential.verify_calls", "lower", 0.0),
        Check("sequential.dedup_saved_calls", "higher", 0.0),
        Check("warm_cache.verify_calls", "lower", 0.0),
        Check("warm_cache.hit_rate", "higher", 0.0),
        Check("rules", "higher", 0.0),
    ),
    "disabled_tracer_overhead": (
        # The bound itself is tiny and jittery; what must hold is the
        # budget, with headroom for timer noise.
        Check("overhead_fraction", "lower", 1.0),
        Check("trace_site_visits", "lower", 0.10),
    ),
    "profiler_overhead": (
        # The bound multiplies out two microsecond-scale timings, so
        # it jitters a few-x run to run; the hard <=3% gate lives in
        # the bench itself, and this band only catches
        # order-of-magnitude cost regressions.  The budget itself
        # must never be loosened, and the sampler must keep
        # collecting data.
        Check("bounded_overhead_fraction", "lower", 4.0),
        Check("budget_fraction", "lower", 0.0),
        Check("samples", "higher", 0.95),
    ),
    "fleet_gate": (
        # Deterministic shape of the chaos run: the schedule and the
        # client count are fixed, so these only move when the gate
        # itself changes.
        Check("shards", "higher", 0.0),
        Check("clients", "higher", 0.0),
        Check("kills", "higher", 0.0),
        # Throughput/latency under churn: wide bands — the run shares
        # a CI box with 12 client threads plus 3 shard processes, and
        # install latency includes the deliberate kill downtime.
        Check("gaps_per_second", "higher", 0.60),
        Check("sync_p99_ms", "lower", 2.0),
        Check("install_p99_ms", "lower", 2.0),
        # At least as many gaps must complete the stitched capture ->
        # settle -> hot-install journey; losing most of them means the
        # trace plumbing or the redelivery path broke.
        Check("stitched_installs", "higher", 0.50),
    ),
    "ingest_gate": (
        # The stream is seed-deterministic and the gate re-checks that
        # itself, so the counter metrics only move when the grammar,
        # dedup layer, or learning pipeline changes: tight bands.
        Check("programs", "higher", 0.0),
        Check("fed", "higher", 0.0),
        Check("novel_rules", "higher", 0.0),
        Check("verify_calls", "lower", 0.0),
        Check("warm_skip_rate", "higher", 0.0),
        Check("warm_verify_calls", "lower", 0.0),
        # Wall-clock yield: wide bands for shared CI runners.
        Check("novel_rules_per_min", "higher", 0.60),
        Check("elapsed_seconds", "lower", 1.50),
    ),
    "translate_throughput": (
        # Wall-clock throughput: wide bands for shared CI runners.
        Check("lookup.indexed.lookups_per_second", "higher", 0.40),
        Check("translate.indexed.blocks_per_second", "higher", 0.40),
        Check("translate.indexed_dp.blocks_per_second", "higher", 0.40),
        # The indexed-over-legacy ratio divides out box speed, so its
        # band is tight — and the >= 2x acceptance floor lives in the
        # bench itself.
        Check("lookup_speedup", "higher", 0.25),
        # Deterministic: both matchers must keep hitting the same
        # positions, and the rule population must not shrink.
        Check("lookup.indexed.hit_positions", "higher", 0.0),
        Check("rules", "higher", 0.0),
    ),
}

#: Metrics meaningless when the host is oversubscribed (jobs > cpus):
#: annotate instead of failing.
OVERSUBSCRIPTION_SENSITIVE = {"parallel.speedup_over_sequential"}


def _lookup(payload: dict, path: str):
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _oversubscribed(payload: dict) -> bool:
    cpus, jobs = payload.get("cpus"), payload.get("jobs")
    return isinstance(cpus, int) and isinstance(jobs, int) and jobs > cpus


def compare(baseline: dict, candidate: dict) -> list[dict]:
    """Per-metric verdicts for one baseline/candidate payload pair."""
    bench = candidate.get("bench") or baseline.get("bench") or ""
    checks = CHECKS.get(bench)
    if checks is None:
        return [{
            "bench": bench, "metric": None, "verdict": "skipped",
            "note": f"no check profile for bench {bench!r}",
        }]
    results = []
    for check in checks:
        base = _lookup(baseline, check.path)
        cand = _lookup(candidate, check.path)
        result = {
            "bench": bench,
            "metric": check.path,
            "baseline": base,
            "candidate": cand,
            "direction": check.direction,
            "tolerance": check.tolerance,
        }
        if base is None:
            result.update(verdict="skipped",
                          note="metric absent from baseline")
        elif cand is None:
            result.update(verdict="regression",
                          note="metric vanished from candidate payload")
        else:
            if check.direction == "higher":
                bound = base * (1.0 - check.tolerance)
                bad = cand < bound
                good = cand > base
            else:
                bound = base * (1.0 + check.tolerance)
                bad = cand > bound
                good = cand < base
            result["bound"] = round(bound, 6)
            if bad and check.path in OVERSUBSCRIPTION_SENSITIVE and (
                    _oversubscribed(candidate)
                    or _oversubscribed(baseline)):
                result.update(
                    verdict="annotated",
                    note=(
                        "oversubscribed host (jobs "
                        f"{candidate.get('jobs', baseline.get('jobs'))}"
                        f" > cpus "
                        f"{candidate.get('cpus', baseline.get('cpus'))})"
                        " — parallel figure is informational only"
                    ),
                )
            elif bad:
                result["verdict"] = "regression"
            elif good:
                result["verdict"] = "improved"
            else:
                result["verdict"] = "ok"
        results.append(result)
    return results


def _load(path: Path) -> dict:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: bench payload must be a JSON object")
    return payload


def _pairs(args) -> list[tuple[Path, Path]]:
    if args.baseline and args.candidate:
        return [(Path(args.baseline), Path(args.candidate))]
    baseline_dir = Path(args.baseline_dir)
    candidate_dir = Path(args.candidate_dir)
    pairs = []
    for baseline in sorted(baseline_dir.glob("BENCH_*.json")):
        candidate = candidate_dir / baseline.name
        if candidate.exists():
            pairs.append((baseline, candidate))
    return pairs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_compare.py",
        description="Diff fresh BENCH_*.json payloads against committed "
                    "baselines with per-metric tolerance bands.",
    )
    parser.add_argument("--baseline", help="one baseline payload")
    parser.add_argument("--candidate", help="one candidate payload")
    parser.add_argument("--baseline-dir",
                        help="directory of committed BENCH_*.json")
    parser.add_argument("--candidate-dir",
                        help="directory of freshly written BENCH_*.json")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable verdict")
    args = parser.parse_args(argv)

    single = bool(args.baseline or args.candidate)
    if single and not (args.baseline and args.candidate):
        parser.error("--baseline and --candidate go together")
    if not single and not (args.baseline_dir and args.candidate_dir):
        parser.error("pass --baseline/--candidate or "
                     "--baseline-dir/--candidate-dir")

    try:
        pairs = _pairs(args)
        if not pairs:
            print("error: no baseline/candidate payload pairs found",
                  file=sys.stderr)
            return 2
        results = []
        for baseline_path, candidate_path in pairs:
            results.extend(
                compare(_load(baseline_path), _load(candidate_path))
            )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    regressions = [r for r in results if r["verdict"] == "regression"]
    verdict = {
        "ok": not regressions,
        "regressions": len(regressions),
        "results": results,
    }
    if args.json:
        print(json.dumps(verdict, indent=1))
    else:
        width = max(
            (len(r["metric"]) for r in results if r["metric"]),
            default=10,
        )
        for r in results:
            if r["metric"] is None:
                print(f"SKIP  {r['note']}")
                continue
            line = (
                f"{r['verdict'].upper():<10s} "
                f"{r['bench']}:{r['metric']:<{width}s} "
                f"baseline {r['baseline']} -> candidate {r['candidate']}"
            )
            if r.get("note"):
                line += f"  [{r['note']}]"
            print(line)
        print(
            f"verdict: {'OK' if verdict['ok'] else 'REGRESSION'} "
            f"({len(regressions)} regression(s) across "
            f"{len(pairs)} payload(s))"
        )
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
