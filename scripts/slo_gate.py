#!/usr/bin/env python
"""SLO gate: burn-rate objectives hold on the service-gate workload.

Boots a real ``repro-serve`` process with the checked-in ``slo.toml``
and the sampling profiler on, drives one DBT client through the full
gap -> learn -> hot-install cycle, and then checks the production
observability surface end to end:

* the ``metrics`` op returns the full frame — metrics snapshot, live
  telemetry, the server-side SLO report, and the live profile;
* the frame renders as **valid Prometheus exposition text** (the
  strict parser from :mod:`repro.obs.export` must accept it);
* no server-side objective (per-op latency burn rates) is breaching;
* the client+server traces stitch, and the stitched gap->install
  latency sketch plus the verification throughput derived from the
  frame satisfy the offline objectives in ``slo.toml``
  (``hot-install-convergence``, ``verify-throughput``).

Exit status 0 means the gate passed.  Run from the repo root:

    PYTHONPATH=src python scripts/slo_gate.py

Set ``REPRO_GATE_ARTIFACT_DIR`` to keep the working directory at a
known path; the gate writes ``slo_report.json``, ``profile.json`` and
``exposition.txt`` there for CI artifact upload.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.benchsuite import build_learning_pair
from repro.dbt.engine import DBTEngine
from repro.obs.export import (
    ExpositionError,
    parse_exposition,
    render_exposition,
)
from repro.obs.report import stitch
from repro.obs.trace import TraceError, read_trace, tracing
from repro.obs.slo import SloEngine, slo_report_lines
from repro.service.client import RuleServiceClient

GATE_BENCHMARK = "mcf"
SLO_TOML = Path("slo.toml")
SERVER_STARTUP_SECONDS = 30
PROFILE_HZ = 97


def fail(message: str) -> None:
    print(f"slo_gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_socket(path: Path, process: subprocess.Popen) -> None:
    deadline = time.monotonic() + SERVER_STARTUP_SECONDS
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"server exited early with status {process.returncode}")
        if path.exists():
            return
        time.sleep(0.1)
    fail(f"server socket {path} never appeared")


def stop_server(server: subprocess.Popen) -> None:
    """SIGINT so the server's trace sink flushes before exit."""
    if server.poll() is not None:
        return
    server.send_signal(signal.SIGINT)
    try:
        server.wait(timeout=10)
    except subprocess.TimeoutExpired:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()


def drive_workload(socket_path: Path) -> None:
    """One client through the whole online-learning loop."""
    guest, _ = build_learning_pair(GATE_BENCHMARK)
    with RuleServiceClient(socket_path=str(socket_path)) as client:
        engine = DBTEngine(guest, "rules", gap_sink=client.recorder)
        first = engine.run()
        if client.report_gaps() == 0:
            fail("no gaps captured on the empty-store run")
        client.flush()
        result = client.sync(engine)
        if result.rules_installed == 0:
            fail("sync installed no rules")
        second = engine.run()
        if second.return_value != first.return_value:
            fail("hot-install changed the benchmark result")


def fetch_frame(socket_path: Path) -> dict:
    with RuleServiceClient(socket_path=str(socket_path)) as client:
        return client.metrics()


def throughput_gauges(frame: dict) -> dict:
    """Derive ``gauge:verified_per_s`` from the frame: the online
    learner's solver calls per second of verification wall-clock
    (both counters ride home in the worker snapshots)."""
    counters = frame["metrics"]["counters"]
    calls = counters.get("learning.worker.verify_calls", 0)
    seconds = counters.get("learning.worker.seconds", 0.0)
    if not calls or seconds <= 0:
        return {}
    return {"gauge:verified_per_s": calls / seconds}


def main() -> None:
    artifact_dir = os.environ.get("REPRO_GATE_ARTIFACT_DIR")
    if artifact_dir:
        tmp = Path(artifact_dir)
        tmp.mkdir(parents=True, exist_ok=True)
    else:
        tmp = Path(tempfile.mkdtemp(prefix="slo-gate-"))
    if not SLO_TOML.exists():
        fail(f"{SLO_TOML} not found (run from the repo root)")
    socket_path = tmp / "rules.sock"
    trace_path = tmp / "clients.jsonl"
    server_trace_path = tmp / "server.jsonl"
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.server",
            "--repo", str(tmp / "repo"),
            "--socket", str(socket_path),
            "--corpus", GATE_BENCHMARK,
            "--no-auto-learn",
            "--no-cache",
            "--trace", str(server_trace_path),
            "--slo", str(SLO_TOML),
            "--profile-hz", str(PROFILE_HZ),
        ],
    )
    try:
        wait_for_socket(socket_path, server)
        with tracing(str(trace_path)):
            drive_workload(socket_path)
            frame = fetch_frame(socket_path)
    finally:
        stop_server(server)

    # -- the frame must carry the whole observability surface ------------
    for key in ("metrics", "telemetry", "slo", "profile"):
        if key not in frame:
            fail(f"metrics op frame is missing {key!r}")
    (tmp / "slo_report.json").write_text(
        json.dumps(frame["slo"], indent=2, sort_keys=True)
    )
    (tmp / "profile.json").write_text(
        json.dumps(frame["profile"], indent=2, sort_keys=True)
    )

    # -- and render as valid Prometheus text -----------------------------
    text = render_exposition(
        metrics=frame["metrics"],
        telemetry=frame["telemetry"],
        slo=frame["slo"],
        profile=frame["profile"],
    )
    (tmp / "exposition.txt").write_text(text)
    try:
        samples = parse_exposition(text)
    except ExpositionError as exc:
        fail(f"exposition text invalid: {exc}")
    print(f"slo_gate: exposition OK ({len(samples)} samples)")

    # -- server-side burn rates must be under budget ----------------------
    print("slo_gate: server-side objectives:")
    for line in slo_report_lines(frame["slo"]):
        print(f"slo_gate:{line}")
    if frame["slo"]["breaches"]:
        fail(
            "server-side SLO breach: "
            + ", ".join(frame["slo"]["breaches"])
        )

    # -- offline objectives: stitch + throughput --------------------------
    try:
        client_records = read_trace(str(trace_path))
        server_records = read_trace(str(server_trace_path))
        stitched = stitch([
            (str(trace_path), client_records),
            (str(server_trace_path), server_records),
        ])
    except TraceError as exc:
        fail(f"stitch: {exc}")
    summary = stitched.latency_summary()
    if summary["count"] < 1:
        fail("no gap completed the capture -> install journey")
    print(
        "slo_gate: stitched gap->install latency: "
        f"count {summary['count']}, p99 {summary['p99']:.1f}ms"
    )
    offline = SloEngine.from_toml(str(SLO_TOML))
    report = offline.evaluate(
        sketches={"stitch:gap_install": stitched.latency_sketch()},
        gauges=throughput_gauges(frame),
    )
    print("slo_gate: offline objectives:")
    for line in slo_report_lines(report):
        print(f"slo_gate:{line}")
    # Latency objectives saw no offline events and stay quiet here;
    # the quantile/gauge objectives must hold.
    if report["breaches"]:
        fail("offline SLO breach: " + ", ".join(report["breaches"]))

    print("slo_gate: PASS")


if __name__ == "__main__":
    main()
