#!/usr/bin/env python
"""Fleet chaos gate: shard churn must not break the online contract.

Boots a 3-shard ``repro-serve`` fleet behind a ``repro-fleet``
coordinator, drives a dozen concurrent DBT clients through it, and —
mid-run — SIGKILLs shards on a deterministic
:class:`~repro.faults.plan.KillSchedule`, restarting each after its
downtime (one comes back with an **empty** repository, exercising the
full journal catch-up; one keeps its directory).  The run must end
with the single-server guarantees intact:

* no client ever raises out of ``engine.run()`` — ticks that cannot
  reach the fleet degrade to stale-rules mode and recover;
* every client's synced generation sequence is monotone (the
  coordinator's journal is the fleet generation);
* no client hot-installs the same bundle digest twice;
* after the churn settles, fresh engines reach dynamic rule coverage
  within 1% of offline leave-nothing-out learning per benchmark —
  gaps routed to a shard that died are redelivered, re-learned, and
  served by the survivors;
* at least two shard kills actually happened while clients were
  running, and the coordinator observed them;
* the client + shard + coordinator traces stitch into an end-to-end
  gap -> hot-install latency distribution.

Artifacts: ``fleet_report.json`` (full verdict), ``BENCH_fleet.json``
(throughput/latency baseline payload for ``bench_compare.py``), plus
per-shard-incarnation trace files.  Exit status 0 means the gate
passed.  Run from the repo root:

    PYTHONPATH=src python scripts/fleet_gate.py

Set ``REPRO_GATE_ARTIFACT_DIR`` to keep the working directory at a
known path for CI artifact upload.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.benchsuite import build_learning_pair
from repro.dbt.engine import DBTEngine
from repro.faults import KillSchedule
from repro.learning.pipeline import learn_rules
from repro.learning.store import RuleStore
from repro.obs.report import aggregate, reconcile, stitch
from repro.obs.trace import TraceError, read_trace, tracing
from repro.service.client import RuleServiceClient

SHARD_IDS = ("a", "b", "c")
GATE_BENCHMARKS = ("mcf", "libquantum")
CLIENTS = 12
COVERAGE_TOLERANCE = 0.01
STARTUP_SECONDS = 30
PHASE_TIMEOUT = 600
#: Two staggered kills while clients run; shard a returns with an
#: empty repository (full catch-up), shard b keeps its directory.
KILL_SCHEDULE = KillSchedule.staggered(("a", "b"), first=1.0,
                                       spacing=2.5, downtime=1.0)
FRESH_RESTART_SHARDS = {"a"}


def fail(message: str) -> None:
    print(f"fleet_gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def read_trace_tolerant(path: Path) -> list:
    """A SIGKILLed shard leaves a torn trace tail; keep what parses."""
    records = []
    try:
        text = path.read_text()
    except OSError:
        return records
    from repro.obs.trace import decode_line

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(decode_line(line))
        except (TraceError, ValueError, KeyError):
            break  # torn tail: everything after is suspect
    return records


class ShardProc:
    """One shard's subprocess across kill/restart incarnations."""

    def __init__(self, tmp: Path, shard_id: str) -> None:
        self.tmp = tmp
        self.shard_id = shard_id
        self.socket_path = tmp / f"shard-{shard_id}.sock"
        self.repo_epoch = 0
        self.spawns = 0
        self.proc: subprocess.Popen | None = None
        self.trace_paths: list[Path] = []

    def spawn(self, fresh: bool = False,
              join_fleet: bool = False) -> None:
        if fresh:
            self.repo_epoch += 1
        trace = self.tmp / (
            f"shard-{self.shard_id}-{self.spawns}.jsonl"
        )
        self.trace_paths.append(trace)
        self.spawns += 1
        repo = self.tmp / (
            f"shard-{self.shard_id}-repo-{self.repo_epoch}"
        )
        args = [
            sys.executable, "-m", "repro.service.server",
            "--repo", str(repo),
            "--socket", str(self.socket_path),
            "--corpus", ",".join(GATE_BENCHMARKS),
            "--no-auto-learn", "--no-cache",
            "--trace", str(trace),
        ]
        if join_fleet:
            args.append("--join-fleet")
        self.proc = subprocess.Popen(args)

    def kill(self) -> None:
        """SIGKILL: no drain, no cleanup — a real crash."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()

    def stop(self) -> None:
        """Graceful stop (SIGINT) so the trace tail flushes."""
        if self.proc is None or self.proc.poll() is not None:
            return
        self.proc.send_signal(signal.SIGINT)
        try:
            self.proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


class ChaosThread(threading.Thread):
    """Fires the kill schedule against live shard subprocesses."""

    def __init__(self, shards: dict[str, ShardProc],
                 schedule: KillSchedule) -> None:
        super().__init__(name="chaos")
        self.shards = shards
        self.schedule = schedule
        self.kills: list[str] = []
        self.restarts: list[str] = []
        self.abort = threading.Event()

    def run(self) -> None:
        start = time.monotonic()
        fired: set[int] = set()
        pending: list[tuple[float, str]] = []
        while (len(fired) < len(self.schedule.events) or pending):
            if self.abort.is_set():
                break
            elapsed = time.monotonic() - start
            for index, event in self.schedule.due(elapsed, fired):
                fired.add(index)
                self.shards[event.shard].kill()
                self.kills.append(event.shard)
                print(f"fleet_gate: killed shard {event.shard} at "
                      f"t+{elapsed:.1f}s", file=sys.stderr)
                pending.append((elapsed + event.downtime, event.shard))
            for item in list(pending):
                due_at, shard_id = item
                if elapsed >= due_at:
                    pending.remove(item)
                    fresh = shard_id in FRESH_RESTART_SHARDS
                    self.shards[shard_id].spawn(fresh=fresh,
                                                join_fleet=True)
                    self.restarts.append(shard_id)
                    print(f"fleet_gate: restarted shard {shard_id} "
                          f"({'fresh repo' if fresh else 'same repo'}, "
                          f"--join-fleet)", file=sys.stderr)
            time.sleep(0.05)


class ClientRun(threading.Thread):
    """One DBT client attached through the coordinator, under churn."""

    def __init__(self, index: int, benchmark: str,
                 fleet_socket: str) -> None:
        super().__init__(name=f"client-{index}")
        self.benchmark = benchmark
        self.fleet_socket = fleet_socket
        self.flushes = index % 3 == 0
        self.error: str | None = None
        self.generations: list[int] = []
        self.digests: list[str] = []
        self.sync_seconds: list[float] = []
        self.gaps_reported = 0
        self.was_degraded = False

    def _instrument(self, client: RuleServiceClient) -> None:
        original_sync = client.sync
        original_report = client.report_gaps

        def timed_sync(engine):
            begin = time.perf_counter()
            result = original_sync(engine)
            self.sync_seconds.append(time.perf_counter() - begin)
            self.generations.append(result.generation)
            self.digests.extend(result.digests)
            return result

        def counted_report():
            sent = original_report()
            self.gaps_reported += sent
            return sent

        client.sync = timed_sync
        client.report_gaps = counted_report

    def run(self) -> None:
        try:
            self._drive()
        except Exception as exc:  # surfaced by the main thread
            self.error = f"{type(exc).__name__}: {exc}"

    def _drive(self) -> None:
        guest, _ = build_learning_pair(self.benchmark)
        client = RuleServiceClient(
            socket_path=self.fleet_socket, retries=4,
            backoff_base=0.05, op_timeouts={"flush": 600.0},
        )
        self._instrument(client)
        try:
            engine = DBTEngine(guest, "rules")
            client.attach(engine, every=64, flush=self.flushes)
            result = engine.run()
            if result is None:
                raise AssertionError("engine produced no result")
            self.was_degraded = self.was_degraded or client.degraded
            # One more tick's worth of explicit traffic; every op here
            # rides the retry/degrade machinery under churn too.
            client.report_gaps()
            try:
                client.flush()
                client.sync(engine)
            except (ConnectionError, OSError):
                # Fleet momentarily unreachable past the retry budget:
                # that is what degraded mode is for; the convergence
                # phase below settles the rest.
                self.was_degraded = True
        finally:
            client.close()


class ConvergedRun(threading.Thread):
    """Post-churn client: fresh engine + recorder must reach parity.

    A fresh recorder re-captures whatever windows are *still*
    uncovered (per-session dedup never re-reports a drained digest),
    so this phase proves the fleet converges even if a shard died
    holding unlearned gaps.
    """

    def __init__(self, benchmark: str, fleet_socket: str) -> None:
        super().__init__(name=f"converge-{benchmark}")
        self.benchmark = benchmark
        self.fleet_socket = fleet_socket
        self.error: str | None = None
        self.generations: list[int] = []
        self.digests: list[str] = []
        self.sync_seconds: list[float] = []
        self.online_coverage = 0.0

    def run(self) -> None:
        try:
            self._drive()
        except Exception as exc:
            self.error = f"{type(exc).__name__}: {exc}"

    def _drive(self) -> None:
        guest, _ = build_learning_pair(self.benchmark)
        client = RuleServiceClient(
            socket_path=self.fleet_socket, retries=6,
            backoff_base=0.05, op_timeouts={"flush": 600.0},
        )
        try:
            engine = DBTEngine(guest, "rules",
                               gap_sink=client.recorder)
            first = engine.run()
            client.report_gaps()
            client.flush()
            begin = time.perf_counter()
            result = client.sync(engine)
            self.sync_seconds.append(time.perf_counter() - begin)
            self.generations.append(result.generation)
            self.digests.extend(result.digests)
            second = engine.run()
            if second.return_value != first.return_value:
                raise AssertionError(
                    f"hot-install changed the result: "
                    f"{second.return_value} != {first.return_value}"
                )
            self.online_coverage = engine.last_run.dynamic_coverage
        finally:
            client.close()


def offline_coverage(name: str) -> float:
    guest, host = build_learning_pair(name)
    rules = learn_rules(guest, host, benchmark=name).rules
    engine = DBTEngine(guest, "rules", RuleStore.from_rules(rules))
    engine.run()
    return engine.last_run.dynamic_coverage


def wait_for_socket(path: Path, proc: subprocess.Popen,
                    what: str) -> None:
    deadline = time.monotonic() + STARTUP_SECONDS
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(f"{what} exited early with status {proc.returncode}")
        if path.exists():
            return
        time.sleep(0.1)
    fail(f"{what} socket {path} never appeared")


def wait_for_fleet_ready(socket_path: str, want_shards: int,
                         timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    last = {}
    while time.monotonic() < deadline:
        try:
            with RuleServiceClient(socket_path=socket_path,
                                   retries=2) as client:
                last = client.health()
        except (ConnectionError, OSError):
            time.sleep(0.2)
            continue
        if last.get("ready_shards", 0) >= want_shards:
            return last
        time.sleep(0.2)
    fail(f"fleet never reached {want_shards} ready shard(s); "
         f"last health: {last}")
    raise AssertionError  # pragma: no cover


def main() -> None:
    artifact_dir = os.environ.get("REPRO_GATE_ARTIFACT_DIR")
    if artifact_dir:
        tmp = Path(artifact_dir)
        tmp.mkdir(parents=True, exist_ok=True)
    else:
        tmp = Path(tempfile.mkdtemp(prefix="fleet-gate-"))

    shards = {sid: ShardProc(tmp, sid) for sid in SHARD_IDS}
    for shard in shards.values():
        shard.spawn()
    fleet_socket = tmp / "fleet.sock"
    fleet_trace = tmp / "fleet.jsonl"
    clients_trace = tmp / "clients.jsonl"
    coordinator = None
    chaos = ChaosThread(shards, KILL_SCHEDULE)
    try:
        for shard in shards.values():
            wait_for_socket(shard.socket_path, shard.proc,
                            f"shard {shard.shard_id}")
        coordinator = subprocess.Popen([
            sys.executable, "-m", "repro.service.fleet",
            "--dir", str(tmp / "journal"),
            "--socket", str(fleet_socket),
            "--reconnect-interval", "0.2",
            "--trace", str(fleet_trace),
            *(part
              for shard in shards.values()
              for part in ("--shard",
                           f"{shard.shard_id}={shard.socket_path}")),
        ])
        wait_for_socket(fleet_socket, coordinator, "coordinator")
        wait_for_fleet_ready(str(fleet_socket), len(SHARD_IDS))

        # -- churn phase: concurrent clients + scheduled kills --------
        churn_begin = time.monotonic()
        with tracing(str(clients_trace)):
            runs = [
                ClientRun(i, GATE_BENCHMARKS[i % len(GATE_BENCHMARKS)],
                          str(fleet_socket))
                for i in range(CLIENTS)
            ]
            chaos.start()
            for run in runs:
                run.start()
            for run in runs:
                run.join(timeout=PHASE_TIMEOUT)
                if run.is_alive():
                    fail(f"{run.name} timed out")
                if run.error:
                    fail(f"{run.name}: {run.error}")
            chaos.join(timeout=60)
            if chaos.is_alive():
                chaos.abort.set()
                chaos.join(timeout=10)
            churn_seconds = time.monotonic() - churn_begin

            # -- convergence phase: all shards back, parity required --
            wait_for_fleet_ready(str(fleet_socket), len(SHARD_IDS))
            converged = [
                ConvergedRun(name, str(fleet_socket))
                for name in GATE_BENCHMARKS
            ]
            for run in converged:
                run.start()
            for run in converged:
                run.join(timeout=PHASE_TIMEOUT)
                if run.is_alive():
                    fail(f"{run.name} timed out")
                if run.error:
                    fail(f"{run.name}: {run.error}")

            with RuleServiceClient(socket_path=str(fleet_socket),
                                   retries=2) as probe:
                health = probe.health()
                stats = probe.stats()

        # -- assertions -----------------------------------------------
        if len(chaos.kills) < 2:
            fail(f"only {len(chaos.kills)} shard kill(s) fired; "
                 f"need >= 2")
        if sorted(chaos.restarts) != sorted(chaos.kills):
            fail(f"kills {chaos.kills} vs restarts {chaos.restarts}")
        observed = sum(
            link.get("kills_observed", 0)
            for link in health.get("shards", {}).values()
        )
        if observed < len(chaos.kills):
            fail(f"coordinator observed {observed} kill(s), "
                 f"chaos fired {len(chaos.kills)}")
        if health.get("ready_shards") != len(SHARD_IDS):
            fail(f"fleet ended with {health.get('ready_shards')} "
                 f"ready shard(s)")

        everyone = list(runs) + list(converged)
        for run in everyone:
            if run.generations != sorted(run.generations):
                fail(f"{run.name}: synced generations not monotone: "
                     f"{run.generations}")
            if len(run.digests) != len(set(run.digests)):
                fail(f"{run.name}: duplicate hot-install digests")
        degraded_runs = sum(1 for run in runs if run.was_degraded)

        coverage = {}
        for run in converged:
            offline = offline_coverage(run.benchmark)
            delta = abs(run.online_coverage - offline)
            coverage[run.benchmark] = {
                "online": run.online_coverage,
                "offline": offline,
                "delta": delta,
            }
            print(f"fleet_gate: {run.benchmark}: online "
                  f"{run.online_coverage:.4f} vs offline "
                  f"{offline:.4f} (|delta| {delta:.4f})")
            if delta > COVERAGE_TOLERANCE:
                fail(f"{run.benchmark}: online coverage "
                     f"{run.online_coverage:.4f} not within "
                     f"{COVERAGE_TOLERANCE:.0%} of offline "
                     f"{offline:.4f}")

        client_records = read_trace(str(clients_trace))
        problems = reconcile(aggregate(client_records))
        if problems:
            fail("trace reconciliation: " + "; ".join(problems))

        # -- stitched latency + throughput ----------------------------
        for shard in shards.values():
            shard.stop()
        if coordinator.poll() is None:
            coordinator.send_signal(signal.SIGINT)
            try:
                coordinator.wait(timeout=15)
            except subprocess.TimeoutExpired:
                coordinator.kill()
                coordinator.wait()

        sources = [(str(clients_trace), client_records)]
        for shard in shards.values():
            for path in shard.trace_paths:
                records = read_trace_tolerant(path)
                if records:
                    sources.append((str(path), records))
        fleet_records = read_trace_tolerant(fleet_trace)
        if fleet_records:
            sources.append((str(fleet_trace), fleet_records))
        try:
            stitched = stitch(sources)
        except TraceError as exc:
            fail(f"stitch: {exc}")
        install_summary = stitched.latency_summary()
        if install_summary["count"] < 1:
            fail("stitch: no gap completed the capture -> settled -> "
                 "hot-install journey under churn")

        gaps_accepted = (stats.get("fleet", {}).get("gaps_routed", 0)
                         + stats.get("fleet", {})
                               .get("gaps_queued_total", 0))
        gaps_per_second = gaps_accepted / max(churn_seconds, 1e-9)
        sync_seconds = [
            s for run in everyone for s in run.sync_seconds
        ]
        sync_p99_ms = percentile(sync_seconds, 0.99) * 1000.0
        print(f"fleet_gate: {len(chaos.kills)} kill(s), "
              f"{degraded_runs}/{len(runs)} client(s) degraded, "
              f"{gaps_accepted} gaps in {churn_seconds:.1f}s "
              f"({gaps_per_second:.1f}/s), sync p99 "
              f"{sync_p99_ms:.1f}ms, install p99 "
              f"{install_summary['p99']:.1f}ms "
              f"(count {install_summary['count']})")

        report = {
            "shards": len(SHARD_IDS),
            "clients": CLIENTS,
            "kills": len(chaos.kills),
            "restarts": chaos.restarts,
            "fresh_restarts": sorted(FRESH_RESTART_SHARDS),
            "degraded_clients": degraded_runs,
            "churn_seconds": round(churn_seconds, 3),
            "gaps_accepted": gaps_accepted,
            "gaps_per_second": round(gaps_per_second, 3),
            "sync_p99_ms": round(sync_p99_ms, 3),
            "install_latency_ms": install_summary,
            "coverage": coverage,
            "generation": health.get("generation"),
            "catchups": stats.get("fleet", {}).get("catchups"),
            "health": health,
        }
        (tmp / "fleet_report.json").write_text(
            json.dumps(report, indent=1, default=str)
        )
        bench = {
            "bench": "fleet_gate",
            "shards": len(SHARD_IDS),
            "clients": CLIENTS,
            "kills": len(chaos.kills),
            "gaps_accepted": gaps_accepted,
            "gaps_per_second": round(gaps_per_second, 3),
            "sync_p99_ms": round(sync_p99_ms, 3),
            "install_p99_ms": round(install_summary["p99"], 3),
            "stitched_installs": install_summary["count"],
        }
        (tmp / "BENCH_fleet.json").write_text(
            json.dumps(bench, indent=1)
        )
        print(f"fleet_gate: artifacts in {tmp}")
    finally:
        chaos.abort.set()
        for shard in shards.values():
            shard.stop()
            shard.kill()
        if coordinator is not None and coordinator.poll() is None:
            coordinator.send_signal(signal.SIGINT)
            try:
                coordinator.wait(timeout=10)
            except subprocess.TimeoutExpired:
                coordinator.kill()
                coordinator.wait()

    print("fleet_gate: PASS")


if __name__ == "__main__":
    main()
