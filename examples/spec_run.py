"""Run one synthetic SPEC benchmark under all three DBT backends.

Mirrors the paper's evaluation protocol for a single benchmark: rules
are learned from the *other* eleven programs (leave-one-out), then the
ARM build runs under plain QEMU-style TCG, the rule-enhanced
translator, and the LLVM-JIT-style backend.

Run with::

    python examples/spec_run.py [benchmark] [test|ref]

e.g. ``python examples/spec_run.py mcf ref``.
"""

import sys

from repro.benchsuite import BENCHMARK_NAMES
from repro.dbt.engine import DBTEngine
from repro.dbt.perf import speedup
from repro.experiments.common import ExperimentContext


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    workload = sys.argv[2] if len(sys.argv) > 2 else "test"
    if name not in BENCHMARK_NAMES:
        raise SystemExit(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        )

    context = ExperimentContext()
    print(f"learning rules from the other {len(BENCHMARK_NAMES) - 1} "
          f"benchmarks (leave-one-out)...")
    store = context.rule_store_excluding(name)
    print(f"installed {len(store)} rules")

    guest = context.build(name, "arm", workload=workload)
    print(f"\nrunning {name}/{workload} "
          f"({len(guest.code)} guest instructions)...")
    runs = {}
    for mode in ("qemu", "rules", "llvmjit"):
        engine = DBTEngine(
            guest, mode, store if mode == "rules" else None
        )
        runs[mode] = engine.run()
        stats = runs[mode].stats
        print(f"  {mode:8s} ret={runs[mode].return_value:12d} "
              f"host-instrs={stats.dynamic_host_instructions:10d} "
              f"cycles={stats.perf.total_cycles:12.0f}")

    assert len({r.return_value for r in runs.values()}) == 1, \
        "backends disagree!"
    base = runs["qemu"].stats.perf
    print(f"\nspeedup over QEMU: "
          f"rules {speedup(base, runs['rules'].stats.perf):.2f}x, "
          f"LLVM JIT {speedup(base, runs['llvmjit'].stats.perf):.2f}x")
    stats = runs["rules"].stats
    print(f"rule coverage: static {stats.static_coverage:.0%}, "
          f"dynamic {stats.dynamic_coverage:.0%}")
    print(f"hit-rule lengths: {dict(sorted(stats.hit_rule_lengths.items()))}")


if __name__ == "__main__":
    main()
