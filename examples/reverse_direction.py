"""Reverse-direction learning: x86 as guest, ARM as host.

Paper Section 3.2 notes the Figure 4(b) immediate mapping "could be
concluded even if x86 is the guest ISA and ARM is the host ISA", and
Section 5 warns that assembling ARM host instructions must respect the
limited ranges ARM immediates can encode.  This example learns reverse
rules from a program and then demonstrates the Section 5 constraint:
the same rule assembles fine for an encodable immediate and is refused
for an unencodable one.

Run with::

    python examples/reverse_direction.py
"""

from repro.host_x86 import parse_instruction as parse_x86
from repro.learning import (
    X86_TO_ARM,
    HostConstraintError,
    instantiate_host,
    learn_rules,
    match_rule,
)
from repro.minic import compile_source

SOURCE = """
int table[32];
int main(void) {
  int s = 0;
  int i = 0;
  while (i < 32) {
    table[i] = i * 4 + 200;
    s = s + table[i] - 1;
    i += 1;
  }
  return s;
}
"""


def main() -> None:
    print("=== learning x86 -> ARM rules ===")
    x86_guest = compile_source(SOURCE, "x86", 2, "llvm")
    arm_host = compile_source(SOURCE, "arm", 2, "llvm")
    outcome = learn_rules(x86_guest, arm_host, benchmark="reverse",
                          direction=X86_TO_ARM)
    print(f"{outcome.report.rules} reverse rules "
          f"(yield {outcome.report.yield_fraction:.0%}):")
    for rule in outcome.rules:
        print(f"  {rule}")

    print("\n=== Section 5: ARM host-immediate constraints ===")
    # Learn the snippet pair directly (paper-style worked example).
    from repro.guest_arm import parse_instruction as parse_arm
    from repro.learning.extract import SnippetPair
    from repro.learning.paramize import analyze_pair, generate_mappings
    from repro.learning.verify import verify_candidate

    pair = SnippetPair(
        "demo", 1,
        [parse_x86("addl $12, %eax")],
        [parse_arm("add r0, r0, #12")],
    )
    context = analyze_pair(pair, X86_TO_ARM)
    mappings, _ = generate_mappings(context)
    rule = None
    for mapping in mappings:
        result = verify_candidate(context, mapping)
        if result.rule is not None:
            rule = result.rule
            break
    assert rule is not None
    print(f"rule: {rule}")
    for value, label in ((200, "encodable"), (0x12345678, "NOT encodable")):
        mnemonic = rule.guest[0].mnemonic
        concrete = parse_x86(f"{mnemonic} ${value}, %eax")
        binding = match_rule(rule, [concrete])
        if binding is None:
            print(f"  #{value:#x}: does not match")
            continue
        try:
            instrs = instantiate_host(rule, binding, {
                param: f"r{4 + i}" for i, param in enumerate(
                    rule.params + rule.temps
                )
            })
        except HostConstraintError as exc:
            print(f"  #{value:#x} ({label}): REJECTED - {exc}")
        else:
            print(f"  #{value:#x} ({label}): assembles to "
                  + "; ".join(str(i) for i in instrs))


if __name__ == "__main__":
    main()
