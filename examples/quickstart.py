"""Quickstart: learn translation rules from a program and use them.

Walks the full pipeline on a small C program:

1. compile it for the ARM guest and the x86 host (dual compilation),
2. learn verified translation rules from the two binaries,
3. run the ARM binary under the QEMU-like DBT with and without the
   rules and compare the translated code quality.

Run with::

    python examples/quickstart.py
"""

from repro.dbt.engine import DBTEngine
from repro.dbt.perf import speedup
from repro.learning import learn_rules
from repro.learning.store import RuleStore
from repro.minic import compile_source

SOURCE = """
int values[64];

int checksum(int *data, int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + data[i] - 1;
    acc = acc ^ (acc >> 3);
    i += 1;
  }
  return acc;
}

int main(void) {
  int i = 0;
  while (i < 64) {
    values[i] = i * 7 + 3;
    i += 1;
  }
  int total = 0;
  int round = 0;
  while (round < 50) {
    total += checksum(values, 64);
    round += 1;
  }
  return total & 0xffffff;
}
"""


def main() -> None:
    print("=== 1. dual compilation ===")
    guest = compile_source(SOURCE, target="arm", opt_level=2, style="llvm")
    host = compile_source(SOURCE, target="x86", opt_level=2, style="llvm")
    print(f"ARM guest: {len(guest.code)} instructions, "
          f"x86 host: {len(host.code)} instructions")

    print("\n=== 2. rule learning ===")
    outcome = learn_rules(guest, host, benchmark="quickstart")
    report = outcome.report
    print(f"{report.total_sequences} source-line snippet pairs, "
          f"{report.rules} verified rules "
          f"(yield {report.yield_fraction:.0%}, "
          f"{report.learn_seconds:.2f}s)")
    for rule in outcome.rules:
        print(f"  {rule}")

    print("\n=== 3. translate and run ===")
    store = RuleStore.from_rules(outcome.rules)
    baseline = DBTEngine(guest, "qemu").run()
    enhanced = DBTEngine(guest, "rules", store).run()
    assert baseline.return_value == enhanced.return_value
    print(f"guest result: {baseline.return_value}")
    print(f"QEMU baseline: {baseline.stats.dynamic_host_instructions} "
          f"dynamic host instructions")
    print(f"with rules:    {enhanced.stats.dynamic_host_instructions} "
          f"dynamic host instructions "
          f"({enhanced.stats.dynamic_coverage:.0%} dynamic coverage)")
    print(f"modeled speedup: "
          f"{speedup(baseline.stats.perf, enhanced.stats.perf):.2f}x")


if __name__ == "__main__":
    main()
