"""Inspect the translation rules learned from one benchmark.

Prints every verified rule with its parameterization, condition-code
compatibility, and the Table-1-style failure breakdown of the learning
run — useful for understanding what the learner can and cannot harvest
from a program.

Run with::

    python examples/inspect_rules.py [benchmark]
"""

import sys

from repro.benchsuite import BENCHMARK_NAMES, build_learning_pair
from repro.learning import learn_rules


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bzip2"
    if name not in BENCHMARK_NAMES:
        raise SystemExit(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        )
    guest, host = build_learning_pair(name)
    outcome = learn_rules(guest, host, benchmark=name)
    report = outcome.report

    print(f"=== learning report for {name} ===")
    print(f"sequence pairs:        {report.total_sequences}")
    print(f"preparation failures:  CI={report.prep_ci} PI={report.prep_pi} "
          f"MB={report.prep_mb}")
    print(f"parameterization:      Num={report.param_num} "
          f"Name={report.param_name} FailG={report.param_failg}")
    print(f"verification:          Rg={report.verify_rg} "
          f"Mm={report.verify_mm} Br={report.verify_br} "
          f"Other={report.verify_other}")
    print(f"rules learned:         {report.rules} "
          f"(yield {report.yield_fraction:.0%}, "
          f"{report.learn_seconds:.2f}s, "
          f"verification {report.verify_seconds:.2f}s)")

    print(f"\n=== {len(outcome.rules)} rules ===")
    for rule in sorted(outcome.rules, key=lambda r: -r.length):
        print(f"\nlength {rule.length}, from line {rule.line}:")
        print(f"  guest: {'; '.join(str(i) for i in rule.guest)}")
        print(f"  host:  {'; '.join(str(i) for i in rule.host)}")
        if rule.params:
            print(f"  register params: {', '.join(rule.params)}"
                  + (f"  (host temps: {', '.join(rule.temps)})"
                     if rule.temps else ""))
        if rule.guest_flags_written:
            emulated = ", ".join(
                f"{flag}:{how}" for flag, how in rule.cc_info.items()
            ) or "none"
            print(f"  guest flags written: "
                  f"{', '.join(rule.guest_flags_written)}; "
                  f"emulated by host flags: {emulated}")
        if rule.has_branch:
            print("  ends in equivalent conditional branches")


if __name__ == "__main__":
    main()
