"""Replay the paper's worked examples (Figures 1-5 and 7).

Each figure's exact guest/host instruction sequences are pushed through
the learner's machinery (operand parameterization + symbolic
verification) to show that the pipeline reproduces the paper's
reasoning on its own examples.

Run with::

    python examples/paper_figures.py
"""

from repro import ir
from repro.guest_arm import execute as execute_arm
from repro.guest_arm import parse_instruction as parse_arm
from repro.host_x86 import execute as execute_x86
from repro.host_x86 import parse_instruction as parse_x86
from repro.learning.extract import SnippetPair
from repro.learning.paramize import analyze_pair, generate_mappings
from repro.learning.verify import verify_candidate
from repro.minic import compile_source
from repro.solver import check_equal
from repro.symexec import SharedSymbolicMemory, SymbolicState, run_snippet


def learn_pair(title: str, guest_asm: list[str], host_asm: list[str]) -> None:
    print(f"--- {title} ---")
    pair = SnippetPair(
        "example", 0,
        [parse_arm(text) for text in guest_asm],
        [parse_x86(text) for text in host_asm],
    )
    context = analyze_pair(pair)
    mappings, failure = generate_mappings(context)
    if failure is not None:
        print(f"  parameterization failed: {failure.value}")
        return
    for mapping in mappings:
        result = verify_candidate(context, mapping)
        if result.rule is not None:
            print(f"  initial mapping: {mapping.reg_map}")
            print(f"  learned rule:    {result.rule}")
            if result.rule.cc_info:
                print(f"  condition codes: {result.rule.cc_info}")
            return
    print(f"  verification failed: {result.failure.value} ({result.detail})")


def figure_1() -> None:
    """add+sub -> lea: the paper's motivating many-to-one rule."""
    learn_pair(
        "Figure 1: add r1,r1,r0; sub r1,r1,#1  =>  leal -1(rX,rY), rX",
        ["add r1, r1, r0", "sub r1, r1, #1"],
        ["leal -1(%edx,%eax), %edx"],
    )


def figure_2() -> None:
    """Live-in register mapping via normalized memory addresses."""
    learn_pair(
        "Figure 2(a): scaled-index address normalization",
        ["add r0, r1, r0, lsl #2", "ldr r0, [r0, #-4]"],
        ["movl -0x4(%ecx,%eax,4), %eax"],
    )
    learn_pair(
        "Figure 2(b): base-register mapping through a load",
        ["ldr r1, [r5]", "ldr r4, [r1]"],
        ["movl (%edi), %eax", "movl (%eax), %esi"],
    )


def figure_3() -> None:
    """Live-in register mapping by operations (3a) and the movzbl
    special case (3b: the 255 immediate must NOT be parameterized)."""
    learn_pair(
        "Figure 3(a): operation-based mapping",
        ["sub r0, r8, r4", "add r0, r1, r0"],
        ["movl %ebp, %ecx", "subl %esi, %ecx", "addl %eax, %ecx"],
    )
    learn_pair(
        "Figure 3(b): movzbl vs and #255 + additive-inverse immediate",
        ["and r0, r0, #255", "sub r2, r1, #14"],
        ["movzbl %al, %eax", "movl %ebx, %esi",
         "addl $-14, %esi"],
    )


def figure_4() -> None:
    """Immediate operand mapping with arithmetic/logical relations."""
    learn_pair(
        "Figure 4(a): zero guest offset vs 0x34 host offset",
        ["str r1, [r6]"],
        ["movl %eax, 0x34(%esi)"],
    )
    learn_pair(
        "Figure 4(b): two guest immediates OR-combined into one",
        ["mov r1, #983040", "orr r1, r1, #117440512"],
        ["movl $0x70f0000, %ecx"],  # NB: 983040|117440512 == 0x70f0000
    )


def figure_5() -> None:
    """Condition-code rule: cmp+beq <=> cmpl+je."""
    learn_pair(
        "Figure 5(a): compare-and-branch with condition codes",
        ["cmp r2, r3", "beq .L1"],
        ["cmpl %ecx, %edx", "je .L1"],
    )
    # The subtraction carry-polarity subtlety, checked symbolically.
    memory = SharedSymbolicMemory()
    p0, p1 = ir.sym(32, "p0"), ir.sym(32, "p1")
    guest = SymbolicState("g", {"r2": p0, "r3": p1}, memory)
    host = SymbolicState("h", {"edx": p0, "ecx": p1}, memory)
    run_snippet([parse_arm("cmp r2, r3")], execute_arm, guest)
    run_snippet([parse_x86("cmpl %ecx, %edx")], execute_x86, host)
    carry = check_equal(guest.flag_value("C"), host.flag_value("CF"))
    inverted = check_equal(
        guest.flag_value("C"),
        ir.xor(host.flag_value("CF"), ir.bv(1, 1)),
    )
    print("  ARM C == x86 CF after compare?     ", carry.verdict.value)
    print("  ARM C == NOT x86 CF after compare? ", inverted.verdict.value)


def figure_7() -> None:
    """-O0 vs -O2: the same source line is learnable only when
    optimized (locals promoted to registers)."""
    print("--- Figure 7: optimization level changes learnability ---")
    source = """
int f(int a, int b) {
  int c = a + b - 1;
  return c;
}
int main(void) { return f(3, 4); }
"""
    from repro.learning import learn_rules

    for level in (0, 2):
        guest = compile_source(source, "arm", level, "llvm")
        host = compile_source(source, "x86", level, "llvm")
        outcome = learn_rules(guest, host)
        interesting = [r for r in outcome.rules if r.length >= 2]
        print(f"  -O{level}: {outcome.report.rules} rules, "
              f"{len(interesting)} with >= 2 guest instructions")
        for rule in interesting:
            print(f"    {rule}")


def main() -> None:
    figure_1()
    figure_2()
    figure_3()
    figure_4()
    figure_5()
    figure_7()


if __name__ == "__main__":
    main()
